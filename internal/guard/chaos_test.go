package guard

// Chaos harness for guarded applies, extending the apply-engine harness
// (internal/apply/chaos_test.go): every trial runs a health-gated apply with
// randomized unhealthiness injections — and sometimes a process crash mid-
// canary or mid-auto-rollback — then asserts the S24 invariant: the run
// either fully converged or fully reverted, and after journal recovery the
// cloud and state agree exactly (zero orphans, zero duplicates).

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

func chaosTrials(t *testing.T, def int) int {
	if v := os.Getenv("CLOUDLESS_CHAOS_TRIALS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CLOUDLESS_CHAOS_TRIALS=%q: not a positive integer", v)
		}
		return n
	}
	if testing.Short() {
		return def / 2
	}
	return def
}

func nonNoopCount(t *testing.T, src string, st *state.State) int {
	t.Helper()
	p := planFor(t, src, st)
	n := 0
	for _, ch := range p.Changes {
		if ch.Action != plan.ActionNoop {
			n++
		}
	}
	return n
}

// assertNoOrphans checks cloud and state agree exactly.
func assertNoOrphans(t *testing.T, sim *cloud.Sim, st *state.State) {
	t.Helper()
	ctx := context.Background()
	for _, addr := range st.Addrs() {
		rs := st.Get(addr)
		if _, err := sim.Get(ctx, rs.Type, rs.ID); err != nil {
			t.Errorf("state entry %s (%s) missing from cloud: %s", addr, rs.ID, err)
		}
	}
	if got := sim.TotalResources(); got != st.Len() {
		t.Errorf("cloud holds %d resources, state holds %d (orphans or losses)", got, st.Len())
	}
}

func assertConverged(t *testing.T, sim *cloud.Sim, src string, st *state.State) {
	t.Helper()
	if n := nonNoopCount(t, src, st); n != 0 {
		t.Errorf("re-plan has %d pending changes, want 0", n)
	}
	assertNoOrphans(t, sim, st)
}

// TestChaosGuardedConvergeOrRevert sweeps randomized unhealthiness over
// guarded applies: every trial must end fully converged (no injection bit)
// or fully reverted (the webConfig graph is one connected slice, so a revert
// empties the cloud) — never half-applied.
func TestChaosGuardedConvergeOrRevert(t *testing.T) {
	trials := chaosTrials(t, 16)
	types := []string{"aws_vpc", "aws_subnet", "aws_network_interface", "aws_virtual_machine"}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(strconv.Itoa(trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(4000 + trial)))
			sim := newSim()
			journalPath := filepath.Join(t.TempDir(), "apply.journal")

			poisoned := rng.Intn(4) > 0 // 3 in 4 trials inject a fault
			if poisoned {
				sim.InjectUnhealthy(cloud.UnhealthySpec{
					Count: 1 + rng.Intn(2),
					Type:  types[rng.Intn(len(types))],
				})
			}
			canary := 0.0
			if rng.Intn(2) == 0 {
				canary = 0.2 + 0.3*rng.Float64()
			}

			j, err := apply.NewJournal(journalPath, apply.Meta{Kind: "apply", Principal: "cloudless"})
			if err != nil {
				t.Fatal(err)
			}
			p := planFor(t, webConfig, state.New())
			res := Run(context.Background(), sim, p, apply.Options{
				ContinueOnError: true, Journal: j,
			}, Options{Canary: canary})
			j.Close()

			switch {
			case res.Err() == nil:
				assertConverged(t, sim, webConfig, res.State)
			case res.Reverted:
				if got := sim.TotalResources(); got != 0 {
					t.Errorf("reverted run left %d resources in the cloud", got)
				}
				assertNoOrphans(t, sim, res.State)
			default:
				t.Errorf("run neither converged nor reverted: err=%v reverted=%v rolledback=%v",
					res.Err(), res.Reverted, res.RolledBack)
			}
			// Converged or cleanly reverted: the journal would be discarded by
			// the facade; nothing in doubt may remain.
			if res.Err() == nil || res.Reverted {
				js, err := apply.ReadJournal(journalPath)
				if err != nil {
					t.Fatal(err)
				}
				if js != nil {
					if doubt := js.InDoubt(); len(doubt) != 0 {
						t.Errorf("in-doubt ops after a clean outcome: %v", doubt)
					}
				}
			}
		})
	}
}

// TestChaosGuardedCrashMidCanary kills the process while the canary wave is
// mid-flight, then restarts: journal recovery plus a fresh guarded apply must
// converge with zero orphans.
func TestChaosGuardedCrashMidCanary(t *testing.T) {
	trials := chaosTrials(t, 8)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(strconv.Itoa(trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(5000 + trial)))
			sim := newSim()
			journalPath := filepath.Join(t.TempDir(), "apply.journal")

			j, err := apply.NewJournal(journalPath, apply.Meta{Kind: "apply", Principal: "cloudless"})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			point := cloud.CrashBeforeOp
			if rng.Intn(2) == 0 {
				point = cloud.CrashAfterOp
			}
			fired := false
			// The 0.4 canary of webConfig is 2 ops: a countdown of 1-2 dies
			// inside the canary wave.
			sim.InjectCrash(point, 1+rng.Intn(2), func() {
				fired = true
				j.Kill()
				cancel()
			})
			p := planFor(t, webConfig, state.New())
			res := Run(ctx, sim, p, apply.Options{ContinueOnError: true, Journal: j},
				Options{Canary: 0.4})
			cancel()
			j.Close()
			if !fired {
				t.Fatal("crash never fired inside the canary")
			}
			if res.Err() == nil {
				t.Fatal("guarded run reported success despite the crash")
			}
			sim.ClearInjections()

			// --- restart ---
			js, err := apply.ReadJournal(journalPath)
			if err != nil || js == nil {
				t.Fatalf("read journal: %v, %v", js, err)
			}
			st, rep, err := apply.Recover(context.Background(), sim, js, state.New(), apply.Options{})
			if err != nil || rep.Err() != nil {
				t.Fatalf("recover: %v / %v", err, rep.Err())
			}
			if err := os.Remove(journalPath); err != nil {
				t.Fatal(err)
			}
			p = planFor(t, webConfig, st)
			final := Run(context.Background(), sim, p, apply.Options{ContinueOnError: true},
				Options{Canary: 0.4})
			if err := final.Err(); err != nil {
				t.Fatalf("continuation apply: %s", err)
			}
			assertConverged(t, sim, webConfig, final.State)
		})
	}
}

// TestChaosGuardedCrashMidAutoRollback poisons the nic so the guarded apply
// builds the slice and then auto-reverts — and kills the process while the
// rollback's deletes are mid-flight. Restart must reconcile the journal
// (begin-supersedes-done across the create-then-delete per address) and a
// fresh apply converges with zero orphans.
func TestChaosGuardedCrashMidAutoRollback(t *testing.T) {
	trials := chaosTrials(t, 8)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(strconv.Itoa(trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(6000 + trial)))
			sim := newSim()
			journalPath := filepath.Join(t.TempDir(), "apply.journal")
			sim.InjectUnhealthy(cloud.UnhealthySpec{Type: "aws_network_interface"})

			j, err := apply.NewJournal(journalPath, apply.Meta{Kind: "apply", Principal: "cloudless"})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			point := cloud.CrashBeforeOp
			if rng.Intn(2) == 0 {
				point = cloud.CrashAfterOp
			}
			fired := false
			// The apply phase issues 4 creates (vm is cut off by the nic's
			// gate failure); the rollback then deletes those 4. A countdown of
			// 5-8 lands inside the rollback.
			sim.InjectCrash(point, 5+rng.Intn(4), func() {
				fired = true
				j.Kill()
				cancel()
			})
			p := planFor(t, webConfig, state.New())
			res := Run(ctx, sim, p, apply.Options{ContinueOnError: true, Journal: j}, Options{})
			cancel()
			j.Close()
			if !fired {
				t.Fatal("crash never fired inside the auto-rollback")
			}
			if res.Reverted {
				t.Fatal("rollback claims completion despite dying mid-flight")
			}
			sim.ClearInjections()
			if !sim.Injections().Empty() {
				t.Fatal("injections survived ClearInjections")
			}

			// --- restart ---
			js, err := apply.ReadJournal(journalPath)
			if err != nil || js == nil {
				t.Fatalf("read journal: %v, %v", js, err)
			}
			st, rep, err := apply.Recover(context.Background(), sim, js, state.New(), apply.Options{})
			if err != nil || rep.Err() != nil {
				t.Fatalf("recover: %v / %v", err, rep.Err())
			}
			if err := os.Remove(journalPath); err != nil {
				t.Fatal(err)
			}
			assertNoOrphans(t, sim, st)
			p = planFor(t, webConfig, st)
			final := Run(context.Background(), sim, p, apply.Options{ContinueOnError: true}, Options{})
			if err := final.Err(); err != nil {
				t.Fatalf("continuation apply: %s", err)
			}
			assertConverged(t, sim, webConfig, final.State)
		})
	}
}
