package workload

import (
	"context"
	"testing"

	"cloudless/internal/config"
	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/validate"
)

// expandFiles loads, expands, and validates a generated workload.
func expandFiles(t *testing.T, files map[string]string) *config.Expansion {
	t.Helper()
	m, diags := config.Load(files)
	if diags.HasErrors() {
		t.Fatalf("load: %s", diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatalf("expand: %s", diags.Error())
	}
	if res := validate.Validate(ex, nil); res.HasErrors() {
		t.Fatalf("generated workload fails validation: %+v", res.Errors())
	}
	return ex
}

func planFor(t *testing.T, ex *config.Expansion) *plan.Plan {
	t.Helper()
	p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatalf("plan: %s", diags.Error())
	}
	return p
}

func TestWebTier(t *testing.T) {
	ex := expandFiles(t, WebTier("shop", 3, 10))
	// 1 vpc + 3 subnets + 1 sg + 10 nics + 10 vms + 1 lb = 26 instances.
	if len(ex.Instances) != 26 {
		t.Fatalf("instances = %d", len(ex.Instances))
	}
	p := planFor(t, ex)
	if p.Creates != 26 {
		t.Errorf("creates = %d", p.Creates)
	}
	// The LB depends on the VMs, which depend on NICs, etc.
	if p.Graph.Len() != 26 {
		t.Errorf("graph nodes = %d", p.Graph.Len())
	}
	if deps := p.Graph.Dependencies("aws_load_balancer.shop"); len(deps) == 0 {
		t.Error("lb has no dependencies")
	}
}

func TestMicroservicesIndependence(t *testing.T) {
	ex := expandFiles(t, Microservices(4, 2))
	p := planFor(t, ex)
	// Services must be mutually independent: svc0's VM does not reach svc1.
	scope := p.Graph.ImpactScope("aws_virtual_machine.svc0[0]")
	for addr := range scope {
		if len(addr) > 4 && addr[:4] == "aws_" {
			if containsStr(addr, "svc1") || containsStr(addr, "svc2") {
				t.Errorf("independence violated: %s in svc0's impact scope", addr)
			}
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSkewedLatency(t *testing.T) {
	ex := expandFiles(t, SkewedLatency(12))
	p := planFor(t, ex)
	costs := p.Costs()
	// The chain's bottom level dominates the fan's.
	levels, longest, err := p.Graph.CriticalPath(costs)
	if err != nil {
		t.Fatal(err)
	}
	if levels["aws_vpn_gateway.slow"] <= levels["aws_subnet.aa_fan[0]"] {
		t.Errorf("chain level %v <= fan level %v",
			levels["aws_vpn_gateway.slow"], levels["aws_subnet.aa_fan[0]"])
	}
	if longest == 0 {
		t.Error("zero critical path")
	}
}

func TestRandomDAGDeterministic(t *testing.T) {
	a := RandomDAG(30, 42)
	b := RandomDAG(30, 42)
	if a["rand.ccl"] != b["rand.ccl"] {
		t.Error("same seed produced different workloads")
	}
	c := RandomDAG(30, 43)
	if a["rand.ccl"] == c["rand.ccl"] {
		t.Error("different seeds produced identical workloads")
	}
	ex := expandFiles(t, a)
	if len(ex.Instances) < 30 {
		t.Errorf("instances = %d", len(ex.Instances))
	}
}

func TestTeamGenerators(t *testing.T) {
	updates, files := DisjointTeams(4, 3)
	ex := expandFiles(t, files)
	if len(ex.Instances) != 12 {
		t.Fatalf("instances = %d", len(ex.Instances))
	}
	seen := map[string]bool{}
	for _, u := range updates {
		if len(u.Addrs) != 3 {
			t.Errorf("team %s addrs = %v", u.Team, u.Addrs)
		}
		for _, a := range u.Addrs {
			if seen[a] {
				t.Errorf("address %s shared between teams", a)
			}
			seen[a] = true
			if ex.ByAddr[a] == nil {
				t.Errorf("address %s not in config", a)
			}
		}
	}

	over, files2 := OverlappingTeams(3, 2)
	expandFiles(t, files2)
	for _, u := range over {
		found := false
		for _, a := range u.Addrs {
			if a == "aws_storage_bucket.shared" {
				found = true
			}
		}
		if !found {
			t.Errorf("team %s missing the shared resource", u.Team)
		}
	}
}
