// Package workload generates synthetic infrastructure configurations and
// update streams for the experiments: layered web topologies, microservice
// meshes, skewed-latency deployments, random DAGs, and concurrent team
// update sets. Generators are deterministic under a seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// WebTier generates a classic web topology: 1 VPC, `subnets` subnets,
// a security group, `vms` NIC+VM pairs spread across subnets, and a load
// balancer — roughly 3 + 2*vms + subnets resources.
func WebTier(name string, subnets, vms int) map[string]string {
	var b strings.Builder
	fmt.Fprintf(&b, `
resource "aws_vpc" "%[1]s" {
  name       = "%[1]s"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "%[1]s" {
  count      = %[2]d
  name       = "%[1]s-sub-${count.index}"
  vpc_id     = aws_vpc.%[1]s.id
  cidr_block = cidrsubnet(aws_vpc.%[1]s.cidr_block, 8, count.index)
}

resource "aws_security_group" "%[1]s" {
  name          = "%[1]s-sg"
  vpc_id        = aws_vpc.%[1]s.id
  ingress_ports = [80, 443]
}

resource "aws_network_interface" "%[1]s" {
  count              = %[3]d
  name               = "%[1]s-nic-${count.index}"
  subnet_id          = aws_subnet.%[1]s[count.index %% %[2]d].id
  security_group_ids = [aws_security_group.%[1]s.id]
}

resource "aws_virtual_machine" "%[1]s" {
  count   = %[3]d
  name    = "%[1]s-web-${count.index}"
  nic_ids = [aws_network_interface.%[1]s[count.index].id]
}

resource "aws_load_balancer" "%[1]s" {
  name       = "%[1]s-lb"
  subnet_ids = aws_subnet.%[1]s[*].id
  target_ids = aws_virtual_machine.%[1]s[*].id
}
`, name, subnets, vms)
	return map[string]string{name + ".ccl": b.String()}
}

// Microservices generates `services` independent service stacks, each with
// its own NICs/VMs/DNS record inside a shared VPC. Services are mutually
// independent, giving the graph width for parallelism experiments.
func Microservices(services, instancesPer int) map[string]string {
	var b strings.Builder
	b.WriteString(`
resource "aws_vpc" "mesh" {
  name       = "mesh"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "mesh" {
  name       = "mesh-sub"
  vpc_id     = aws_vpc.mesh.id
  cidr_block = "10.0.0.0/18"
}
`)
	for s := 0; s < services; s++ {
		fmt.Fprintf(&b, `
resource "aws_network_interface" "svc%[1]d" {
  count     = %[2]d
  name      = "svc%[1]d-nic-${count.index}"
  subnet_id = aws_subnet.mesh.id
}

resource "aws_virtual_machine" "svc%[1]d" {
  count   = %[2]d
  name    = "svc%[1]d-vm-${count.index}"
  nic_ids = [aws_network_interface.svc%[1]d[count.index].id]
}

resource "aws_dns_record" "svc%[1]d" {
  name  = "svc%[1]d.mesh.internal"
  value = aws_virtual_machine.svc%[1]d[0].private_ip
}
`, s, instancesPer)
	}
	return map[string]string{"mesh.ccl": b.String()}
}

// SkewedLatency generates the adversarial E2 shape: one long chain of slow
// resources (VPN gateway + database + tunnels) plus `fan` wide cheap
// resources, all within one VPC. FIFO walks start the cheap fan first and
// delay the chain; critical-path-first does not.
func SkewedLatency(fan int) map[string]string {
	var b strings.Builder
	b.WriteString(`
resource "aws_vpc" "core" {
  name       = "core"
  cidr_block = "10.0.0.0/16"
}

# The long pole: gateway -> tunnel chain.
resource "aws_vpn_gateway" "slow" {
  vpc_id = aws_vpc.core.id
}

resource "aws_vpn_tunnel" "slow" {
  vpn_gateway_id = aws_vpn_gateway.slow.id
  peer_ip        = "198.51.100.1"
}
`)
	fmt.Fprintf(&b, `
# Wide cheap fan-out.
resource "aws_subnet" "aa_fan" {
  count      = %d
  name       = "fan-${count.index}"
  vpc_id     = aws_vpc.core.id
  cidr_block = cidrsubnet(aws_vpc.core.cidr_block, 8, count.index)
}
`, fan)
	return map[string]string{"skew.ccl": b.String()}
}

// RandomDAG generates a random layered topology: a VPC, `n` subnets in a
// random dependency structure through route tables, and NIC/VM pairs
// attached at random. Deterministic under seed.
func RandomDAG(n int, seed int64) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(`
resource "aws_vpc" "r" {
  name       = "rand"
  cidr_block = "10.0.0.0/16"
}
`)
	subnets := n / 2
	if subnets < 1 {
		subnets = 1
	}
	// cidrsubnet needs enough new bits for the subnet count; 8 keeps the
	// historical layout for small graphs, wider bits unlock scale runs.
	bits := 8
	for (1 << bits) < subnets {
		bits++
	}
	fmt.Fprintf(&b, `
resource "aws_subnet" "r" {
  count      = %d
  name       = "r-sub-${count.index}"
  vpc_id     = aws_vpc.r.id
  cidr_block = cidrsubnet(aws_vpc.r.cidr_block, %d, count.index)
}
`, subnets, bits)
	vms := n - subnets
	for i := 0; i < vms; i++ {
		sub := rng.Intn(subnets)
		fmt.Fprintf(&b, `
resource "aws_network_interface" "r%[1]d" {
  name      = "r-nic-%[1]d"
  subnet_id = aws_subnet.r[%[2]d].id
}

resource "aws_virtual_machine" "r%[1]d" {
  name    = "r-vm-%[1]d"
  nic_ids = [aws_network_interface.r%[1]d.id]
}
`, i, sub)
	}
	return map[string]string{"rand.ccl": b.String()}
}

// TeamUpdate describes one team's concurrent update: the addresses it
// touches and the attribute value it writes.
type TeamUpdate struct {
	Team  string
	Addrs []string
}

// DisjointTeams generates `teams` update sets over a fleet of `perTeam`
// buckets each, with no overlap — the case per-resource locking
// parallelizes and a global lock needlessly serializes.
func DisjointTeams(teams, perTeam int) ([]TeamUpdate, map[string]string) {
	var b strings.Builder
	var updates []TeamUpdate
	for t := 0; t < teams; t++ {
		u := TeamUpdate{Team: fmt.Sprintf("team-%d", t)}
		for i := 0; i < perTeam; i++ {
			name := fmt.Sprintf("t%dres%d", t, i)
			fmt.Fprintf(&b, `
resource "aws_storage_bucket" "%s" {
  name = "%s"
}
`, name, name)
			u.Addrs = append(u.Addrs, "aws_storage_bucket."+name)
		}
		updates = append(updates, u)
	}
	return updates, map[string]string{"teams.ccl": b.String()}
}

// OverlappingTeams is DisjointTeams plus a shared hot resource every team
// also touches, to measure behaviour under genuine conflict.
func OverlappingTeams(teams, perTeam int) ([]TeamUpdate, map[string]string) {
	updates, files := DisjointTeams(teams, perTeam)
	files["shared.ccl"] = `
resource "aws_storage_bucket" "shared" {
  name = "shared-config"
}
`
	for i := range updates {
		updates[i].Addrs = append(updates[i].Addrs, "aws_storage_bucket.shared")
	}
	return updates, files
}

// Merge combines source maps (for composing workloads).
func Merge(files ...map[string]string) map[string]string {
	out := map[string]string{}
	for _, m := range files {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}
