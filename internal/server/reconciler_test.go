package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
	"cloudless/internal/workspace"
)

// newSimServer is newTestServer with the simulated cloud handed back, so
// tests can mutate resources out-of-band (foreign drift).
func newSimServer(t *testing.T, tokens map[string]string) (*cloud.Sim, func(token string) *server.Client) {
	t.Helper()
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	mgr := workspace.NewManager(workspace.ManagerOptions{Cloud: sim})
	queue := jobs.New(jobs.Options{Workers: 4})
	srv := server.New(server.Options{Manager: mgr, Queue: queue, Tokens: tokens})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return sim, func(token string) *server.Client {
		return server.NewClient(ts.URL, token, nil)
	}
}

// foreignRename mutates the workspace's VPC under a foreign principal and
// returns the resource ID.
func foreignRename(t *testing.T, sim *cloud.Sim, tenant, newName string) string {
	t.Helper()
	ctx := context.Background()
	vpcs, err := sim.List(ctx, "aws_vpc", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vpcs {
		if strings.Contains(v.Attrs["name"].AsString(), tenant) {
			if _, err := sim.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: v.ID,
				Attrs: map[string]eval.Value{"name": eval.String(newName)},
				Principal: "rogue"}); err != nil {
				t.Fatal(err)
			}
			return v.ID
		}
	}
	t.Fatalf("no aws_vpc for tenant %s", tenant)
	return ""
}

// TestReconcileJobStaleDriftArtifact (satellite: stale-artifact regression):
// a one-shot reconcile job whose drift artifact predates the current state
// serial must fail with the typed stale error instead of applying a repair
// computed against a baseline that no longer exists.
func TestReconcileJobStaleDriftArtifact(t *testing.T) {
	sim, client := newSimServer(t, map[string]string{"tok-a": "alice"})
	ctx := context.Background()
	alice := client("tok-a")

	if _, err := alice.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "a1", Sources: tenantSource("a1"),
	}); err != nil {
		t.Fatal(err)
	}
	mustJob(t, alice, "a1", server.JobRequest{Kind: "apply"})

	// Foreign drift, then a scan that pins the report to the current serial.
	foreignRename(t, sim, "a1", "rogue-1")
	scan := mustJob(t, alice, "a1", server.JobRequest{Kind: "scan"})

	// Reverting through that artifact works while the baseline holds...
	mustJob(t, alice, "a1", server.JobRequest{Kind: "reconcile", Action: "revert", DriftJob: scan.ID})

	// ...but the revert advanced the state serial, so replaying the same
	// artifact must be refused as stale, not applied twice.
	foreignRename(t, sim, "a1", "rogue-2")
	st, err := alice.SubmitJob(ctx, "a1", server.JobRequest{Kind: "reconcile", Action: "revert", DriftJob: scan.ID})
	if err != nil {
		t.Fatal(err)
	}
	st, err = alice.WaitJob(ctx, "a1", st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != jobs.StatusFailed {
		t.Fatalf("stale reconcile job finished %s, want failed", st.Status)
	}
	if !strings.Contains(st.Err, "stale report") || !strings.Contains(st.Err, "re-detect") {
		t.Fatalf("stale reconcile error %q lacks the typed stale-report text", st.Err)
	}
}

// TestReconcilerEndpointLifecycle: the POST /reconciler surface — enable
// repairs real foreign drift end to end, double-enable conflicts, status
// reports per-address state, disable is idempotent, and foreign tenants are
// locked out.
func TestReconcilerEndpointLifecycle(t *testing.T) {
	sim, client := newSimServer(t, map[string]string{"tok-a": "alice", "tok-b": "bob"})
	ctx := context.Background()
	alice, bob := client("tok-a"), client("tok-b")

	if _, err := alice.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "a1", Sources: tenantSource("a1"),
	}); err != nil {
		t.Fatal(err)
	}
	mustJob(t, alice, "a1", server.JobRequest{Kind: "apply"})

	// Status before enable: present, disabled — no 404s to special-case.
	st, err := alice.ReconcilerStatus(ctx, "a1")
	if err != nil || st.Enabled {
		t.Fatalf("pre-enable status = %+v, %v", st, err)
	}

	// Bob cannot see or flip alice's reconciler.
	var apiErr *server.APIError
	if _, err := bob.ReconcilerStatus(ctx, "a1"); !errors.As(err, &apiErr) || apiErr.Code != 403 {
		t.Fatalf("bob status: got %v, want 403", err)
	}
	if _, err := bob.SetReconciler(ctx, "a1", server.ReconcilerRequest{Enabled: true}); !errors.As(err, &apiErr) || apiErr.Code != 403 {
		t.Fatalf("bob enable: got %v, want 403", err)
	}

	st, err = alice.SetReconciler(ctx, "a1", server.ReconcilerRequest{
		Enabled: true, Mode: "repair",
		DebounceMs: 1, PollWaitMs: 200, FullScanEveryMs: -1, BackoffBaseMs: 20,
	})
	if err != nil || !st.Enabled || st.Mode != "repair" {
		t.Fatalf("enable = %+v, %v", st, err)
	}
	if _, err := alice.SetReconciler(ctx, "a1", server.ReconcilerRequest{Enabled: true}); !errors.As(err, &apiErr) || apiErr.Code != 409 {
		t.Fatalf("double enable: got %v, want 409", err)
	}

	// Real foreign drift is detected via the activity tail and repaired.
	id := foreignRename(t, sim, "a1", "rogue-live")
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err = alice.ReconcilerStatus(ctx, "a1")
		if err != nil {
			t.Fatal(err)
		}
		if st.Repaired >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reconciler never repaired: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err := sim.Get(ctx, "aws_vpc", id)
	if err != nil {
		t.Fatal(err)
	}
	if name := res.Attrs["name"].AsString(); name == "rogue-live" {
		t.Fatalf("drift not actually reverted in the cloud: name=%s", name)
	}
	if st.Watermark == 0 || st.Detected < 1 {
		t.Fatalf("status after repair: %+v", st)
	}

	// Disable, twice: the second is a no-op, not an error.
	for i := 0; i < 2; i++ {
		if st, err = alice.SetReconciler(ctx, "a1", server.ReconcilerRequest{Enabled: false}); err != nil || st.Enabled {
			t.Fatalf("disable #%d = %+v, %v", i+1, st, err)
		}
	}
	if st, err = alice.ReconcilerStatus(ctx, "a1"); err != nil || st.Enabled {
		t.Fatalf("post-disable status = %+v, %v", st, err)
	}
}
