package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
	"cloudless/internal/workspace"
)

func tenantSource(tenant string) map[string]string {
	return map[string]string{"main.ccl": fmt.Sprintf(`
resource "aws_vpc" "net" {
  name       = "net-%[1]s"
  cidr_block = "10.0.0.0/16"
}
resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.net.id
  cidr_block = cidrsubnet(aws_vpc.net.cidr_block, 8, 1)
}
resource "aws_network_interface" "web" {
  count     = 2
  name      = "web-nic-%[1]s-${count.index}"
  subnet_id = aws_subnet.app.id
}
output "vpc_id" { value = aws_vpc.net.id }
`, tenant)}
}

// newTestServer wires a full server (manager + queue + sim cloud) behind an
// httptest listener and returns per-token clients.
func newTestServer(t *testing.T, tokens map[string]string, admins []string) (*server.Server, func(token string) *server.Client) {
	t.Helper()
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	mgr := workspace.NewManager(workspace.ManagerOptions{Cloud: cloud.NewSim(opts)})
	queue := jobs.New(jobs.Options{Workers: 4})
	srv := server.New(server.Options{Manager: mgr, Queue: queue, Tokens: tokens, Admins: admins})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, func(token string) *server.Client {
		return server.NewClient(ts.URL, token, nil)
	}
}

func mustJob(t *testing.T, cl *server.Client, ws string, req server.JobRequest) server.JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := cl.SubmitJob(ctx, ws, req)
	if err != nil {
		t.Fatalf("%s submit %s: %v", ws, req.Kind, err)
	}
	st, err = cl.WaitJob(ctx, ws, st.ID)
	if err != nil {
		t.Fatalf("%s wait %s: %v", ws, req.Kind, err)
	}
	if st.Status != jobs.StatusSucceeded {
		t.Fatalf("%s %s job %s: %s (%s)", ws, req.Kind, st.ID, st.Status, st.Err)
	}
	return st
}

// TestServerAuthAndTenantIsolation: bearer tokens resolve principals,
// non-members are refused with 401/403, tenants cannot see each other's
// workspaces, jobs, or state, and admins can see everything.
func TestServerAuthAndTenantIsolation(t *testing.T) {
	_, client := newTestServer(t,
		map[string]string{"tok-a": "alice", "tok-b": "bob", "tok-r": "root"},
		[]string{"root"})
	ctx := context.Background()
	alice, bob, admin := client("tok-a"), client("tok-b"), client("tok-r")

	// Unauthenticated and wrong-token requests bounce.
	var apiErr *server.APIError
	if _, err := client("").ListWorkspaces(ctx); !errors.As(err, &apiErr) || apiErr.Code != 401 {
		t.Fatalf("no token: got %v, want 401", err)
	}
	if _, err := client("tok-x").ListWorkspaces(ctx); !errors.As(err, &apiErr) || apiErr.Code != 401 {
		t.Fatalf("bad token: got %v, want 401", err)
	}

	if _, err := alice.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "a1", Sources: tenantSource("a1"),
	}); err != nil {
		t.Fatal(err)
	}

	// Bob can't see, read, or operate on alice's workspace.
	if names, err := bob.ListWorkspaces(ctx); err != nil || len(names) != 0 {
		t.Fatalf("bob sees %v (err %v), want none", names, err)
	}
	if _, err := bob.GetWorkspace(ctx, "a1"); !errors.As(err, &apiErr) || apiErr.Code != 403 {
		t.Fatalf("bob GetWorkspace(a1): got %v, want 403", err)
	}
	if _, err := bob.SubmitJob(ctx, "a1", server.JobRequest{Kind: "plan"}); !errors.As(err, &apiErr) || apiErr.Code != 403 {
		t.Fatalf("bob SubmitJob(a1): got %v, want 403", err)
	}
	if _, err := bob.State(ctx, "a1"); !errors.As(err, &apiErr) || apiErr.Code != 403 {
		t.Fatalf("bob State(a1): got %v, want 403", err)
	}

	// Job IDs are global, but reads are scoped: bob can't read alice's job
	// even through a workspace he owns.
	planJob := mustJob(t, alice, "a1", server.JobRequest{Kind: "plan"})
	if _, err := bob.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "b1", Sources: tenantSource("b1"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.GetJob(ctx, "b1", planJob.ID, 0); !errors.As(err, &apiErr) || apiErr.Code != 404 {
		t.Fatalf("bob read of alice's job: got %v, want 404", err)
	}

	// The admin principal sees both tenants.
	names, err := admin.ListWorkspaces(ctx)
	if err != nil || len(names) != 2 {
		t.Fatalf("admin sees %v (err %v), want [a1 b1]", names, err)
	}
	if _, err := admin.GetWorkspace(ctx, "a1"); err != nil {
		t.Fatal(err)
	}
}

// TestServerEventsWatermark: the per-workspace long-poll stream pages
// without duplication or loss when resumed from the returned watermark.
func TestServerEventsWatermark(t *testing.T) {
	_, client := newTestServer(t, nil, nil)
	ctx := context.Background()
	cl := client("")
	if _, err := cl.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "w", Sources: tenantSource("w"),
	}); err != nil {
		t.Fatal(err)
	}
	mustJob(t, cl, "w", server.JobRequest{Kind: "apply"})

	page, err := cl.Events(ctx, "w", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Events) == 0 || page.Next == 0 {
		t.Fatalf("empty event backlog after an apply: %+v", page)
	}
	for i := 1; i < len(page.Events); i++ {
		if page.Events[i].Seq <= page.Events[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", page.Events[i-1].Seq, page.Events[i].Seq)
		}
	}

	// Resuming from the middle returns exactly the tail, no overlap.
	mid := page.Events[len(page.Events)/2].Seq
	tail, err := cl.Events(ctx, "w", mid, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, e := range page.Events {
		if e.Seq > mid {
			want++
		}
	}
	if len(tail.Events) != want {
		t.Fatalf("resume from %d returned %d events, want %d", mid, len(tail.Events), want)
	}
	for _, e := range tail.Events {
		if e.Seq <= mid {
			t.Fatalf("resume returned already-seen seq %d", e.Seq)
		}
	}

	// Resuming from the head finds nothing; a bounded long-poll returns the
	// unchanged watermark instead of hanging.
	start := time.Now()
	empty, err := cl.Events(ctx, "w", page.Next, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Events) != 0 || empty.Next != page.Next {
		t.Fatalf("poll past head returned %+v", empty)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("bounded long-poll overshot its wait")
	}
}

// TestServerSmoke is the two-tenant end-to-end: both tenants drive
// plan -> guarded apply (by plan artifact reference) -> drift over HTTP
// concurrently, converge to their own four resources with no cross-tenant
// drift, and the server shuts down cleanly (the t.Cleanup asserts that).
func TestServerSmoke(t *testing.T) {
	_, client := newTestServer(t,
		map[string]string{"tok-a": "alice", "tok-b": "bob"}, nil)
	ctx := context.Background()

	done := make(chan error, 2)
	for _, tc := range []struct{ token, ws string }{
		{"tok-a", "team-a"}, {"tok-b", "team-b"},
	} {
		go func(token, ws string) {
			done <- func() error {
				cl := client(token)
				if _, err := cl.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
					Name: ws, Sources: tenantSource(ws), GuardApplies: true,
				}); err != nil {
					return fmt.Errorf("%s create: %w", ws, err)
				}
				pst, err := cl.SubmitJob(ctx, ws, server.JobRequest{Kind: "plan"})
				if err != nil {
					return fmt.Errorf("%s plan: %w", ws, err)
				}
				if pst, err = cl.WaitJob(ctx, ws, pst.ID); err != nil || pst.Status != jobs.StatusSucceeded {
					return fmt.Errorf("%s plan job: %v %s %s", ws, err, pst.Status, pst.Err)
				}
				p, err := cl.PlanArtifact(ctx, ws, pst.ID)
				if err != nil {
					return fmt.Errorf("%s plan artifact: %w", ws, err)
				}
				if p.Creates != 4 {
					return fmt.Errorf("%s plan creates = %d, want 4", ws, p.Creates)
				}
				ast, err := cl.SubmitJob(ctx, ws, server.JobRequest{Kind: "apply", PlanJob: pst.ID})
				if err != nil {
					return fmt.Errorf("%s apply: %w", ws, err)
				}
				if ast, err = cl.WaitJob(ctx, ws, ast.ID); err != nil || ast.Status != jobs.StatusSucceeded {
					return fmt.Errorf("%s apply job: %v %s %s", ws, err, ast.Status, ast.Err)
				}
				res, err := server.ResultAs[server.ApplySummary](ast)
				if err != nil {
					return err
				}
				if res.Applied != 4 || res.Failed != 0 {
					return fmt.Errorf("%s applied %d/failed %d, want 4/0", ws, res.Applied, res.Failed)
				}
				dst, err := cl.SubmitJob(ctx, ws, server.JobRequest{Kind: "scan"})
				if err != nil {
					return fmt.Errorf("%s scan: %w", ws, err)
				}
				if dst, err = cl.WaitJob(ctx, ws, dst.ID); err != nil || dst.Status != jobs.StatusSucceeded {
					return fmt.Errorf("%s scan job: %v %s %s", ws, err, dst.Status, dst.Err)
				}
				rep, err := server.ResultAs[server.DriftSummary](dst)
				if err != nil {
					return err
				}
				// The shared simulated account contains the other tenant's
				// resources (reported as unmanaged, correctly) — but nothing
				// this tenant manages may read modified or deleted.
				for _, it := range rep.Items {
					if it.Kind == "modified" || it.Kind == "deleted" {
						return fmt.Errorf("%s sees %s drift on own resource %s", ws, it.Kind, it.Addr)
					}
				}
				st, err := cl.State(ctx, ws)
				if err != nil {
					return fmt.Errorf("%s state: %w", ws, err)
				}
				if got := len(st.Addrs()); got != 4 {
					return fmt.Errorf("%s state holds %d resources, want 4", ws, got)
				}
				return nil
			}()
		}(tc.token, tc.ws)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestServerArtifactTenantScoping: artifacts are keyed by workspace, so a
// tenant referencing another tenant's (sequential, guessable) job ID in
// plan_job or drift_job gets "not found" instead of that tenant's plan or
// drift report, while same-workspace references keep working.
func TestServerArtifactTenantScoping(t *testing.T) {
	_, client := newTestServer(t,
		map[string]string{"tok-a": "alice", "tok-b": "bob"}, nil)
	ctx := context.Background()
	alice, bob := client("tok-a"), client("tok-b")

	if _, err := alice.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "a1", Sources: tenantSource("a1"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "b1", Sources: tenantSource("b1"),
	}); err != nil {
		t.Fatal(err)
	}
	planJob := mustJob(t, alice, "a1", server.JobRequest{Kind: "plan"})
	scanJob := mustJob(t, alice, "a1", server.JobRequest{Kind: "scan"})

	// Bob cannot apply alice's plan artifact through his own workspace.
	st, err := bob.SubmitJob(ctx, "b1", server.JobRequest{Kind: "apply", PlanJob: planJob.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = bob.WaitJob(ctx, "b1", st.ID); err != nil {
		t.Fatal(err)
	}
	if st.Status != jobs.StatusFailed || !strings.Contains(st.Err, "not found") {
		t.Fatalf("cross-tenant plan_job apply: %s (%s), want failed not-found", st.Status, st.Err)
	}

	// Nor reconcile against alice's drift report.
	st, err = bob.SubmitJob(ctx, "b1", server.JobRequest{Kind: "reconcile", Action: "adopt", DriftJob: scanJob.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = bob.WaitJob(ctx, "b1", st.ID); err != nil {
		t.Fatal(err)
	}
	if st.Status != jobs.StatusFailed || !strings.Contains(st.Err, "not found") {
		t.Fatalf("cross-tenant drift_job reconcile: %s (%s), want failed not-found", st.Status, st.Err)
	}

	// Alice's own apply-by-reference still resolves her artifact.
	mustJob(t, alice, "a1", server.JobRequest{Kind: "apply", PlanJob: planJob.ID})
}

// TestServerDeleteWorkspaceClearsACL: deleting a workspace drops its ACL,
// so a new workspace reusing the name doesn't inherit the old principals.
func TestServerDeleteWorkspaceClearsACL(t *testing.T) {
	_, client := newTestServer(t,
		map[string]string{"tok-a": "alice", "tok-b": "bob"}, nil)
	ctx := context.Background()
	alice, bob := client("tok-a"), client("tok-b")

	if _, err := alice.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "shared", Sources: tenantSource("v1"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := alice.DeleteWorkspace(ctx, "shared"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "shared", Sources: tenantSource("v2"),
	}); err != nil {
		t.Fatal(err)
	}

	var apiErr *server.APIError
	if _, err := alice.GetWorkspace(ctx, "shared"); !errors.As(err, &apiErr) || apiErr.Code != 403 {
		t.Fatalf("alice kept access to recreated workspace: got %v, want 403", err)
	}
	if _, err := bob.GetWorkspace(ctx, "shared"); err != nil {
		t.Fatalf("new owner lost access: %v", err)
	}
}

// TestServerMetricsAuthAndScoping: /metrics requires a bearer token when
// auth is configured, and each principal's scrape contains only the
// workspaces it can access (admins see all of them).
func TestServerMetricsAuthAndScoping(t *testing.T) {
	_, client := newTestServer(t,
		map[string]string{"tok-a": "alice", "tok-b": "bob", "tok-r": "root"},
		[]string{"root"})
	ctx := context.Background()
	alice, bob, admin := client("tok-a"), client("tok-b"), client("tok-r")

	if _, err := alice.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "a1", Sources: tenantSource("a1"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "b1", Sources: tenantSource("b1"),
	}); err != nil {
		t.Fatal(err)
	}
	mustJob(t, alice, "a1", server.JobRequest{Kind: "plan"})
	mustJob(t, bob, "b1", server.JobRequest{Kind: "plan"})

	var apiErr *server.APIError
	if _, err := client("").Metrics(ctx); !errors.As(err, &apiErr) || apiErr.Code != 401 {
		t.Fatalf("unauthenticated /metrics: got %v, want 401", err)
	}

	scrape, err := alice.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape, `workspace="a1"`) {
		t.Error("alice's scrape is missing her own workspace series")
	}
	if strings.Contains(scrape, "b1") {
		t.Error("alice's scrape leaks bob's workspace")
	}

	scrape, err = admin.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape, `workspace="a1"`) || !strings.Contains(scrape, `workspace="b1"`) {
		t.Error("admin scrape is missing tenant series")
	}
}

// TestServerApplyByExpiredArtifact: referencing a job that never stored a
// plan fails the apply job rather than replanning silently.
func TestServerApplyByExpiredArtifact(t *testing.T) {
	_, client := newTestServer(t, nil, nil)
	ctx := context.Background()
	cl := client("")
	if _, err := cl.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "w", Sources: tenantSource("w"),
	}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.SubmitJob(ctx, "w", server.JobRequest{Kind: "apply", PlanJob: "j-999999"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.WaitJob(ctx, "w", st.ID); err != nil {
		t.Fatal(err)
	}
	if st.Status != jobs.StatusFailed {
		t.Fatalf("apply with missing artifact: %s, want failed", st.Status)
	}
}
