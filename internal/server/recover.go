package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"cloudless/internal/jobs"
	"cloudless/internal/workspace"
)

// This file is the server half of daemon crash recovery (DESIGN.md S28).
// The durable pieces live below it — the workspace manager persists
// manifests and the job queue journals transitions — but only the server
// can rebuild a replayed job's work function, because the function closes
// over the workspace and the artifact store. RecoverJobs runs once at
// startup, after workspace.Manager.Recover and before the HTTP listener
// admits traffic.

// JobRecoveryReport summarizes a RecoverJobs pass.
type JobRecoveryReport struct {
	// Tenants is how many job journals were replayed.
	Tenants int
	// Restored counts every job rebuilt into the queue (all statuses).
	Restored int
	// Requeued counts jobs that were queued at the crash and will run.
	Requeued int
	// Resumed counts jobs that were mid-flight at the crash and were
	// re-enqueued through the workspace recovery path.
	Resumed int
	// Orphaned counts non-terminal jobs that could not be resumed (their
	// workspace is gone or their params no longer parse); they are restored
	// as failed so their IDs still resolve.
	Orphaned int
}

// RecoverJobs replays every tenant's job journal and rebuilds the queue:
// terminal jobs become history (a client re-polling a pre-crash job ID
// sees the real outcome, never a 404), queued jobs are re-enqueued, and
// jobs that were mid-flight are re-enqueued behind the workspace's apply
// recovery — the crashed run's journal is recovered first (in-doubt ops
// complete or revert under their original idempotency keys), then the
// job's own operation runs to a correct terminal state.
func (s *Server) RecoverJobs(ctx context.Context) (*JobRecoveryReport, error) {
	rep := &JobRecoveryReport{}
	store := s.queue.Store()
	if store == nil {
		return rep, nil
	}
	tenants, err := store.Tenants()
	if err != nil {
		return nil, fmt.Errorf("server: recover jobs: %w", err)
	}
	for _, tenant := range tenants {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		recs, err := store.Replay(tenant)
		if err != nil {
			s.log.Warn("job journal replay failed", "workspace", tenant, "err", err)
			continue
		}
		rep.Tenants++
		ws, wsErr := s.mgr.Get(tenant)
		for _, rec := range recs {
			restored, err := s.restoreJob(tenant, ws, wsErr, rec, rep)
			if err != nil {
				s.log.Warn("job restore failed", "workspace", tenant, "job", rec.ID, "err", err)
				continue
			}
			rep.Restored++
			if restored != nil {
				s.log.Info("job restored", "workspace", tenant, "job", rec.ID,
					"was", string(rec.Status), "now", string(restored.Snapshot().Status))
			}
		}
	}
	return rep, nil
}

// restoreJob rebuilds one replayed record in the queue.
func (s *Server) restoreJob(tenant string, ws *workspace.Workspace, wsErr error, rec jobs.StoredJob, rep *JobRecoveryReport) (*jobs.Job, error) {
	if rec.Status.Terminal() {
		return s.queue.Restore(rec, nil, "")
	}
	if wsErr != nil {
		rep.Orphaned++
		return s.queue.Restore(rec, nil, "workspace "+tenant+" no longer exists after daemon restart")
	}
	var req JobRequest
	if err := json.Unmarshal(rec.Params, &req); err != nil || req.Kind == "" {
		rep.Orphaned++
		return s.queue.Restore(rec, nil, "job parameters unreadable after daemon restart")
	}
	// Artifact references don't survive a restart (the artifact store is
	// in-memory): an apply pinned to a plan artifact replans instead. A
	// reconcile pinned to a drift artifact keeps the reference and fails
	// cleanly at run time — reconciling against a vanished report silently
	// re-scanned would act on data the user never saw.
	if req.PlanJob != "" {
		req.PlanJob = ""
	}
	fn, _, err := s.jobFn(tenant, ws, req)
	if err != nil {
		rep.Orphaned++
		return s.queue.Restore(rec, nil, "job parameters invalid after daemon restart: "+err.Error())
	}
	wasRunning := rec.Status == jobs.StatusRunning
	if req.Kind == "apply" || req.Kind == "destroy" {
		// Mutating kinds ride through apply-level recovery: if the daemon
		// died mid-apply the workspace has a stale run journal; recover it
		// first (completing or reverting in-doubt ops under the original
		// run's idempotency keys) so the re-driven operation starts from
		// reconciled state instead of failing with ErrJournalRecovered.
		inner := fn
		fn = func(ctx context.Context) (any, error) {
			if ws.HasStaleJournal() {
				if _, err := ws.Recover(ctx); err != nil {
					return nil, fmt.Errorf("recover crashed run before %s: %w", req.Kind, err)
				}
			}
			return inner(ctx)
		}
	}
	if wasRunning {
		rep.Resumed++
	} else {
		rep.Requeued++
	}
	return s.queue.Restore(rec, fn, "")
}

// ---- ACL persistence ----

// loadACLs restores workspace ACLs from ACLPath (missing file = fresh
// server). Without this, a daemon restart would orphan every workspace
// from the principals that created them.
func (s *Server) loadACLs() {
	if s.aclPath == "" {
		return
	}
	raw, err := os.ReadFile(s.aclPath)
	if err != nil {
		if !os.IsNotExist(err) {
			s.log.Warn("load acls", "err", err)
		}
		return
	}
	var acls map[string]map[string]bool
	if err := json.Unmarshal(raw, &acls); err != nil {
		s.log.Warn("load acls", "err", err)
		return
	}
	s.mu.Lock()
	s.acls = acls
	s.mu.Unlock()
}

// saveACLs persists the ACL map atomically. Best-effort: an ACL that fails
// to persist still works until the next restart, and the daemon logs it.
func (s *Server) saveACLs() {
	if s.aclPath == "" {
		return
	}
	s.mu.Lock()
	raw, err := json.MarshalIndent(s.acls, "", "  ")
	s.mu.Unlock()
	if err != nil {
		s.log.Warn("save acls", "err", err)
		return
	}
	tmp := s.aclPath + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o600); err != nil {
		s.log.Warn("save acls", "err", err)
		return
	}
	if err := os.Rename(tmp, s.aclPath); err != nil {
		os.Remove(tmp)
		s.log.Warn("save acls", "err", err)
	}
}
