// Package server is cloudlessd's HTTP/JSON control plane (DESIGN.md S27):
// an authenticated multi-tenant API over a workspace.Manager and a
// jobs.Queue. Bearer tokens map to principals; each workspace carries an
// ACL (creator + configured admins); every lifecycle operation runs as an
// async job with per-tenant fair scheduling; events stream per workspace
// via long-poll with watermark resume; and /metrics aggregates every
// workspace's registry under a `workspace` label.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudless/internal/drift"
	"cloudless/internal/events"
	"cloudless/internal/jobs"
	"cloudless/internal/plan"
	"cloudless/internal/telemetry"
	"cloudless/internal/workspace"
)

const (
	// maxBody bounds request bodies (sources included).
	maxBody = 4 << 20
	// maxEventWait / defaultEventWait bound the events long-poll, matching
	// the cloud sim's wire behaviour.
	maxEventWait = 60 * time.Second
	// artifactKeep bounds retained plan/drift artifacts per server.
	artifactKeep = 256
)

// Options configure New.
type Options struct {
	// Manager hosts the workspaces. Required.
	Manager *workspace.Manager
	// Queue runs the jobs. Required.
	Queue *jobs.Queue
	// Tokens maps bearer token -> principal. Empty disables auth entirely
	// (every request runs as principal "anonymous" with full access) —
	// meant for local development only.
	Tokens map[string]string
	// Admins lists principals that can access every workspace.
	Admins []string
	// Logger receives request-level logs (nil = slog default).
	Logger *slog.Logger
	// ACLPath persists workspace ACLs across restarts ("" keeps them
	// in-memory). cloudlessd points this at <data-dir>/acl.json.
	ACLPath string
}

// artifacts is a bounded store of job outputs that later jobs or GETs
// reference (plans for apply-by-reference, drift reports for reconcile).
// Entries are keyed by (workspace, job ID): job IDs are guessable sequence
// numbers, so a bare-ID lookup would let one tenant apply or reconcile
// another tenant's artifact.
type artifacts struct {
	mu    sync.Mutex
	plans map[string]*plan.Plan
	drift map[string]*drift.Report
	order []string
}

// artifactKey is unambiguous: workspace names can't contain "/"
// (workspace.ValidName) and job IDs are fixed-format.
func artifactKey(ws, jobID string) string { return ws + "/" + jobID }

func (a *artifacts) put(ws, jobID string, p *plan.Plan, d *drift.Report) {
	key := artifactKey(ws, jobID)
	a.mu.Lock()
	defer a.mu.Unlock()
	if p != nil {
		a.plans[key] = p
	}
	if d != nil {
		a.drift[key] = d
	}
	a.order = append(a.order, key)
	for len(a.order) > artifactKeep {
		old := a.order[0]
		a.order = a.order[1:]
		delete(a.plans, old)
		delete(a.drift, old)
	}
}

func (a *artifacts) getPlan(ws, jobID string) *plan.Plan {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.plans[artifactKey(ws, jobID)]
}

func (a *artifacts) getDrift(ws, jobID string) *drift.Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.drift[artifactKey(ws, jobID)]
}

// drop discards a deleted workspace's artifacts.
func (a *artifacts) drop(ws string) {
	prefix := artifactKey(ws, "")
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.order[:0]
	for _, key := range a.order {
		if strings.HasPrefix(key, prefix) {
			delete(a.plans, key)
			delete(a.drift, key)
			continue
		}
		kept = append(kept, key)
	}
	a.order = kept
}

// Server is the cloudlessd API.
type Server struct {
	mgr     *workspace.Manager
	queue   *jobs.Queue
	tokens  map[string]string
	admins  map[string]bool
	log     *slog.Logger
	art     *artifacts
	aclPath string

	mu   sync.Mutex
	acls map[string]map[string]bool // workspace -> allowed principals

	mux  *http.ServeMux
	http *http.Server
}

// New builds the API server.
func New(opts Options) *Server {
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	s := &Server{
		mgr:     opts.Manager,
		queue:   opts.Queue,
		tokens:  opts.Tokens,
		admins:  map[string]bool{},
		log:     opts.Logger,
		art:     &artifacts{plans: map[string]*plan.Plan{}, drift: map[string]*drift.Report{}},
		acls:    map[string]map[string]bool{},
		aclPath: opts.ACLPath,
	}
	for _, a := range opts.Admins {
		s.admins[a] = true
	}
	s.loadACLs()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.auth(s.handleMetrics))
	mux.HandleFunc("GET /v1/workspaces", s.auth(s.handleListWorkspaces))
	mux.HandleFunc("POST /v1/workspaces", s.auth(s.handleCreateWorkspace))
	mux.HandleFunc("GET /v1/workspaces/{name}", s.auth(s.workspaceHandler(s.handleGetWorkspace)))
	mux.HandleFunc("DELETE /v1/workspaces/{name}", s.auth(s.workspaceHandler(s.handleDeleteWorkspace)))
	mux.HandleFunc("POST /v1/workspaces/{name}/jobs", s.auth(s.workspaceHandler(s.handleSubmitJob)))
	mux.HandleFunc("GET /v1/workspaces/{name}/jobs", s.auth(s.workspaceHandler(s.handleListJobs)))
	mux.HandleFunc("GET /v1/workspaces/{name}/jobs/{id}", s.auth(s.workspaceHandler(s.handleGetJob)))
	mux.HandleFunc("POST /v1/workspaces/{name}/jobs/{id}/cancel", s.auth(s.workspaceHandler(s.handleCancelJob)))
	mux.HandleFunc("GET /v1/workspaces/{name}/jobs/{id}/plan", s.auth(s.workspaceHandler(s.handlePlanArtifact)))
	mux.HandleFunc("GET /v1/workspaces/{name}/events", s.auth(s.workspaceHandler(s.handleEvents)))
	mux.HandleFunc("GET /v1/workspaces/{name}/state", s.auth(s.workspaceHandler(s.handleState)))
	mux.HandleFunc("POST /v1/workspaces/{name}/reconciler", s.auth(s.workspaceHandler(s.handleSetReconciler)))
	mux.HandleFunc("GET /v1/workspaces/{name}/reconciler", s.auth(s.workspaceHandler(s.handleReconcilerStatus)))
	s.mux = mux
	return s
}

// Handler exposes the routed handler (httptest servers mount this).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.http = &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		// Write timeout must exceed the events long-poll ceiling.
		WriteTimeout: maxEventWait + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	err := s.http.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in flight-first order: stop accepting HTTP, stop the job
// queue (running jobs get ctx's budget), then drain-close every workspace.
func (s *Server) Shutdown(ctx context.Context) error {
	var first error
	if s.http != nil {
		if err := s.http.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	if err := s.queue.Shutdown(ctx); err != nil && first == nil {
		first = err
	}
	if err := s.mgr.CloseAll(ctx); err != nil && first == nil {
		first = err
	}
	return first
}

// ---- auth & ACLs ----

type principalKey struct{}

// auth resolves the bearer token to a principal and stashes it in the
// request context. With no tokens configured every request is admitted as
// "anonymous".
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		principal := "anonymous"
		if len(s.tokens) > 0 {
			h := r.Header.Get("Authorization")
			tok, ok := strings.CutPrefix(h, "Bearer ")
			if !ok || tok == "" {
				writeError(w, http.StatusUnauthorized, "missing bearer token")
				return
			}
			p, ok := s.tokens[tok]
			if !ok {
				writeError(w, http.StatusUnauthorized, "unknown token")
				return
			}
			principal = p
		}
		next(w, r.WithContext(context.WithValue(r.Context(), principalKey{}, principal)))
	}
}

func principalOf(r *http.Request) string {
	p, _ := r.Context().Value(principalKey{}).(string)
	return p
}

// allowed reports whether the principal can touch the workspace.
func (s *Server) allowed(principal, ws string) bool {
	if s.admins[principal] || len(s.tokens) == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acls[ws][principal]
}

// grant adds the principal to a workspace's ACL and persists the map.
func (s *Server) grant(principal, ws string) {
	s.mu.Lock()
	if s.acls[ws] == nil {
		s.acls[ws] = map[string]bool{}
	}
	s.acls[ws][principal] = true
	s.mu.Unlock()
	s.saveACLs()
}

// workspaceHandler resolves {name}, enforces the ACL, and hands the
// workspace to the inner handler.
func (s *Server) workspaceHandler(next func(http.ResponseWriter, *http.Request, string, *workspace.Workspace)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !s.allowed(principalOf(r), name) {
			writeError(w, http.StatusForbidden, "workspace access denied")
			return
		}
		ws, err := s.mgr.Get(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		next(w, r, name, ws)
	}
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "workspaces": s.mgr.Len(), "jobs_queued": s.queue.QueuedLen(),
	})
}

// handleMetrics aggregates workspace registries into one scrape, each
// point labeled with its workspace, plus process-wide queue gauges. The
// scrape is authenticated like every other route (tokens configured =>
// bearer required) and scoped by ACL: a tenant principal sees only its own
// workspaces' series; admins (and open servers) see all of them.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	principal := principalOf(r)
	var all []telemetry.MetricPoint
	for _, name := range s.mgr.List() {
		if !s.allowed(principal, name) {
			continue
		}
		ws, err := s.mgr.Get(name)
		if err != nil {
			continue
		}
		reg := ws.Telemetry().Metrics()
		if reg == nil {
			continue
		}
		all = append(all, telemetry.Relabel(reg.Snapshot(), "workspace", name)...)
	}
	all = append(all,
		telemetry.MetricPoint{Name: "cloudless_jobs_queued", Kind: "gauge", Value: float64(s.queue.QueuedLen())},
		telemetry.MetricPoint{Name: "cloudless_jobs_window", Kind: "gauge", Value: s.queue.Gate().Window()},
		telemetry.MetricPoint{Name: "cloudless_workspaces", Kind: "gauge", Value: float64(s.mgr.Len())},
	)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WritePrometheus(w, all)
}

func (s *Server) handleListWorkspaces(w http.ResponseWriter, r *http.Request) {
	principal := principalOf(r)
	var out []string
	for _, name := range s.mgr.List() {
		if s.allowed(principal, name) {
			out = append(out, name)
		}
	}
	if out == nil {
		out = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"workspaces": out})
}

func (s *Server) handleCreateWorkspace(w http.ResponseWriter, r *http.Request) {
	var req CreateWorkspaceRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !workspace.ValidName(req.Name) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid workspace name %q", req.Name))
		return
	}
	if len(req.Sources) == 0 {
		writeError(w, http.StatusBadRequest, "sources are required")
		return
	}
	principal := principalOf(r)
	cfg := workspace.Config{
		Sources:      req.Sources,
		Vars:         toGoVars(req.Vars),
		Policies:     req.Policies,
		StateBackend: req.StateBackend,
		Principal:    req.Name,
		GuardApplies: req.GuardApplies,
		GuardCanary:  req.GuardCanary,
	}
	ws, err := s.mgr.Open(req.Name, cfg)
	if err != nil {
		var exists *workspace.ErrWorkspaceExists
		if errors.As(err, &exists) {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.grant(principal, req.Name)
	s.log.Info("workspace created", "workspace", req.Name, "principal", principal)
	writeJSON(w, http.StatusCreated, s.info(req.Name, ws, false))
}

func (s *Server) info(name string, ws *workspace.Workspace, verbose bool) WorkspaceInfo {
	snap := ws.DB().Snapshot()
	inf := WorkspaceInfo{Name: name, Serial: snap.Serial, Resources: len(snap.Addrs())}
	if verbose {
		inf.Instances = ws.Instances()
		inf.Outputs = ws.DisplayOutputs()
	}
	return inf
}

func (s *Server) handleGetWorkspace(w http.ResponseWriter, r *http.Request, name string, ws *workspace.Workspace) {
	writeJSON(w, http.StatusOK, s.info(name, ws, true))
}

func (s *Server) handleDeleteWorkspace(w http.ResponseWriter, r *http.Request, name string, _ *workspace.Workspace) {
	// Refuse while jobs are in flight: deletion used to race running
	// applies, yanking the engine out from under them. The typed busy error
	// tells the client to cancel or drain first.
	if active := s.queue.ActiveForTenant(name); active > 0 {
		busy := &workspace.ErrWorkspaceBusy{Name: name, Active: active}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, busy.Error())
		return
	}
	// Delete (not Close): the manifest, journals, and durable state are
	// purged so neither a restart nor a recreated workspace with the same
	// name resurrects the old tenant.
	if err := s.mgr.Delete(r.Context(), name); err != nil {
		var closed *workspace.ErrClosed
		if errors.As(err, &closed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Drop the workspace's job history, ACL, and artifacts with it: a later
	// workspace reusing the name must not inherit the old one's principals,
	// plans, or job journal.
	if err := s.queue.DropTenant(name); err != nil {
		s.log.Warn("drop tenant jobs", "workspace", name, "err", err)
	}
	s.mu.Lock()
	delete(s.acls, name)
	s.mu.Unlock()
	s.saveACLs()
	s.art.drop(name)
	s.log.Info("workspace deleted", "workspace", name)
	writeJSON(w, http.StatusOK, map[string]any{"closed": name})
}

// handleSubmitJob queues one lifecycle operation. The job's tenant is the
// workspace, so the queue's fair scheduler arbitrates between workspaces.
// A request carrying an idempotency key dedups: resubmitting the same key
// (after a timeout, or after a daemon restart replayed the job) returns
// the original job — with its result when already terminal — instead of
// running the work twice.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request, name string, ws *workspace.Workspace) {
	var req JobRequest
	if !readJSON(w, r, &req) {
		return
	}
	fn, cost, err := s.jobFn(name, ws, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Persist the wire request with the job so startup recovery can rebuild
	// this same fn for jobs that never got to run.
	params, _ := json.Marshal(req)
	job, err := s.queue.Submit(jobs.Request{
		Tenant: name, Kind: req.Kind, Cost: cost,
		IdemKey: req.IdemKey, Params: params, Fn: fn,
	})
	if err != nil {
		var full *jobs.ErrQueueFull
		if errors.As(err, &full) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	st := JobStatus{View: job.Snapshot()}
	if res, _ := job.Result(); res != nil {
		st.Result = res // idempotent resubmit of a finished job
	}
	writeJSON(w, http.StatusAccepted, st)
}

// jobFn builds the work function for a job request. Each fn returns the
// kind's wire summary, so job results marshal cleanly.
func (s *Server) jobFn(name string, ws *workspace.Workspace, req JobRequest) (func(ctx context.Context) (any, error), float64, error) {
	switch req.Kind {
	case "plan":
		return func(ctx context.Context) (any, error) {
			p, err := ws.Replan(ctx)
			if err != nil {
				return nil, err
			}
			// The full plan is retained server-side as an artifact: GETtable
			// as a diff, and consumable by a later apply via plan_job.
			s.art.put(name, jobs.JobID(ctx), p, nil)
			return summarizePlan(p), nil
		}, 1, nil
	case "apply":
		cost := float64(len(ws.Instances()))
		if cost < 1 {
			cost = 1
		}
		planJob := req.PlanJob
		return func(ctx context.Context) (any, error) {
			var p *plan.Plan
			if planJob != "" {
				if p = s.art.getPlan(name, planJob); p == nil {
					return nil, fmt.Errorf("plan artifact %s not found (expired or never a plan job)", planJob)
				}
			} else {
				var err error
				if p, err = ws.Replan(ctx); err != nil {
					return nil, err
				}
			}
			res, _, err := ws.Apply(ctx, p, workspace.ApplyOptions{
				Concurrency: req.Concurrency, BatchOps: req.BatchOps,
			})
			if res == nil {
				return nil, err
			}
			sum := summarizeApply(res, ws.DB().Snapshot().Serial, ws.DisplayOutputs())
			return sum, err
		}, cost, nil
	case "destroy":
		cost := float64(len(ws.DB().Snapshot().Addrs()))
		if cost < 1 {
			cost = 1
		}
		return func(ctx context.Context) (any, error) {
			res, err := ws.Destroy(ctx)
			if res == nil {
				return nil, err
			}
			return summarizeApply(res, ws.DB().Snapshot().Serial, nil), err
		}, cost, nil
	case "drift":
		return func(ctx context.Context) (any, error) {
			rep, err := ws.WatchDrift(ctx)
			if err != nil {
				return nil, err
			}
			s.art.put(name, jobs.JobID(ctx), nil, rep)
			return summarizeDrift(rep), nil
		}, 1, nil
	case "scan":
		return func(ctx context.Context) (any, error) {
			rep, err := ws.ScanDrift(ctx)
			if err != nil {
				return nil, err
			}
			s.art.put(name, jobs.JobID(ctx), nil, rep)
			return summarizeDrift(rep), nil
		}, 2, nil
	case "reconcile":
		action, ok := map[string]drift.Action{
			"adopt": drift.Adopt, "revert": drift.Revert, "notify": drift.Notify,
		}[req.Action]
		if !ok {
			return nil, 0, fmt.Errorf("unknown reconcile action %q (adopt|revert|notify)", req.Action)
		}
		driftJob := req.DriftJob
		if driftJob == "" {
			return nil, 0, errors.New("reconcile requires drift_job (a finished drift/scan job id)")
		}
		return func(ctx context.Context) (any, error) {
			rep := s.art.getDrift(name, driftJob)
			if rep == nil {
				return nil, fmt.Errorf("drift artifact %s not found (expired or never a drift job)", driftJob)
			}
			res, err := ws.ReconcileDrift(ctx, rep, action)
			if err != nil {
				return nil, err
			}
			sum := ReconcileSummary{Adopted: res.Adopted, Reverted: res.Reverted, Notified: res.Notified}
			if len(res.Errors) > 0 {
				sum.Errors = map[string]string{}
				for k, e := range res.Errors {
					sum.Errors[k] = e.Error()
				}
			}
			return sum, nil
		}, 1, nil
	case "recover":
		return func(ctx context.Context) (any, error) {
			rep, err := ws.Recover(ctx)
			if err != nil {
				return nil, err
			}
			return summarizeRecover(rep), nil
		}, 1, nil
	default:
		return nil, 0, fmt.Errorf("unknown job kind %q (plan|apply|destroy|drift|scan|reconcile|recover)", req.Kind)
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request, name string, _ *workspace.Workspace) {
	views := s.queue.List(name)
	if views == nil {
		views = []jobs.View{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// jobForWorkspace fetches a job and checks it belongs to the workspace (a
// tenant must not read another tenant's jobs through its own ACL).
func (s *Server) jobForWorkspace(w http.ResponseWriter, name, id string) (*jobs.Job, bool) {
	job, ok := s.queue.Get(id)
	if !ok || job.Snapshot().Tenant != name {
		writeError(w, http.StatusNotFound, fmt.Sprintf("job %s not found in workspace %s", id, name))
		return nil, false
	}
	return job, true
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request, name string, _ *workspace.Workspace) {
	job, ok := s.jobForWorkspace(w, name, r.PathValue("id"))
	if !ok {
		return
	}
	// ?wait_ms long-polls for completion.
	if ms, _ := strconv.Atoi(r.URL.Query().Get("wait_ms")); ms > 0 {
		wait := time.Duration(ms) * time.Millisecond
		if wait > maxEventWait {
			wait = maxEventWait
		}
		wctx, cancel := context.WithTimeout(r.Context(), wait)
		_, _ = job.Wait(wctx)
		cancel()
	}
	st := JobStatus{View: job.Snapshot()}
	if res, _ := job.Result(); res != nil {
		st.Result = res
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request, name string, _ *workspace.Workspace) {
	job, ok := s.jobForWorkspace(w, name, r.PathValue("id"))
	if !ok {
		return
	}
	s.queue.Cancel(job.ID())
	writeJSON(w, http.StatusOK, JobStatus{View: job.Snapshot()})
}

// handlePlanArtifact serves the stored diff artifact of a plan job.
func (s *Server) handlePlanArtifact(w http.ResponseWriter, r *http.Request, name string, _ *workspace.Workspace) {
	job, ok := s.jobForWorkspace(w, name, r.PathValue("id"))
	if !ok {
		return
	}
	p := s.art.getPlan(name, job.ID())
	if p == nil {
		writeError(w, http.StatusNotFound, "no plan artifact for this job (not a plan job, or expired)")
		return
	}
	writeJSON(w, http.StatusOK, summarizePlan(p))
}

// handleEvents long-polls the workspace's event bus with watermark resume:
// ?since=N returns events with Seq > N, waiting up to ?wait_ms for the
// first one. Subscribe-then-replay makes the handoff gapless.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, name string, ws *workspace.Workspace) {
	q := r.URL.Query()
	since, _ := strconv.ParseInt(q.Get("since"), 10, 64)
	wait := time.Duration(0)
	if ms, err := strconv.Atoi(q.Get("wait_ms")); err == nil && ms > 0 {
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxEventWait {
			wait = maxEventWait
		}
	}
	bus := ws.Events()
	// Watermark integrity: the replay ring is in-memory, so a client's
	// watermark can become unresumable in two ways. After a daemon restart
	// sequence numbers start over — a since above the bus's current head
	// would otherwise long-poll forever (every new event is "old"); signal
	// a restart gap and re-anchor at 0. When the ring has overflowed past
	// since, the skipped events are gone; signal an overflow gap and serve
	// what remains. Either way the response says so with a typed marker
	// instead of silently restarting the sequence.
	var gap *ResumeGap
	if last := bus.LastSeq(); since > last {
		gap = &ResumeGap{Reason: "restart", Since: since, Oldest: bus.OldestSeq()}
		since = 0
	} else if oldest := bus.OldestSeq(); since > 0 && oldest > since+1 {
		gap = &ResumeGap{Reason: "overflow", Since: since, Oldest: oldest}
	}
	var evs []events.Event
	if wait > 0 && gap == nil {
		sub := bus.Subscribe(events.Filter{}, 0)
		defer sub.Close()
		evs = bus.Since(since)
		if len(evs) == 0 {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			select {
			case <-sub.C():
				// Small linger so one response batches a burst instead of
				// one round-trip per event.
				time.Sleep(5 * time.Millisecond)
				evs = bus.Since(since)
			case <-timer.C:
			case <-r.Context().Done():
				return
			}
		}
	} else {
		evs = bus.Since(since)
	}
	page := EventsPage{Events: make([]WireEvent, 0, len(evs)), Next: since, Gap: gap}
	for _, e := range evs {
		page.Events = append(page.Events, WireEvent(e))
		if e.Seq > page.Next {
			page.Next = e.Seq
		}
	}
	writeJSON(w, http.StatusOK, page)
}

// handleState serves the workspace's golden state (the state-file JSON).
func (s *Server) handleState(w http.ResponseWriter, _ *http.Request, name string, ws *workspace.Workspace) {
	raw, err := ws.DB().Snapshot().Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg, Code: code})
}

// readJSON decodes a bounded request body, writing a 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "decode body: "+err.Error())
		return false
	}
	return true
}
