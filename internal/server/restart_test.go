package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
	"cloudless/internal/workspace"
)

// durableStack is one daemon "process": manager + durable queue + server
// over a shared data dir and cloud. Building a second stack over the same
// dir and cloud models a restart.
type durableStack struct {
	srv    *server.Server
	ts     *httptest.Server
	client *server.Client
	queue  *jobs.Queue
	mgr    *workspace.Manager
}

func newDurableStack(t *testing.T, dir string, sim *cloud.Sim) *durableStack {
	t.Helper()
	store, err := jobs.OpenStore(dir, jobs.StoreOptions{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	mgr := workspace.NewManager(workspace.ManagerOptions{Root: dir, Cloud: sim, DefaultBackend: "wal"})
	queue := jobs.New(jobs.Options{Workers: 4, Store: store})
	srv := server.New(server.Options{
		Manager: mgr, Queue: queue,
		ACLPath: filepath.Join(dir, "acl.json"),
	})
	ts := httptest.NewServer(srv.Handler())
	return &durableStack{srv: srv, ts: ts, client: server.NewClient(ts.URL, "", nil), queue: queue, mgr: mgr}
}

// stop drain-closes the stack, like a graceful daemon shutdown.
func (d *durableStack) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	d.ts.Close()
}

// recover replays what cloudlessd's startup does before the listener
// admits traffic: workspace recovery then job recovery.
func (d *durableStack) recover(t *testing.T) *server.JobRecoveryReport {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := d.mgr.Recover(ctx); err != nil {
		t.Fatalf("manager recover: %v", err)
	}
	rep, err := d.srv.RecoverJobs(ctx)
	if err != nil {
		t.Fatalf("RecoverJobs: %v", err)
	}
	return rep
}

func newDurableSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

// TestIdempotentResubmitConformance: submitting the same (tenant, key)
// twice returns the original job — same ID, original result — and the
// in-process queue and the HTTP surface agree on that contract, including
// across a daemon restart.
func TestIdempotentResubmitConformance(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sim := newDurableSim()
	d := newDurableStack(t, dir, sim)

	if _, err := d.client.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "conf", Sources: tenantSource("conf"),
	}); err != nil {
		t.Fatal(err)
	}

	// HTTP path: first submit runs the job, the resubmit with the same key
	// returns the same ID and the original (finished) result inline.
	first, err := d.client.SubmitJob(ctx, "conf", server.JobRequest{Kind: "apply", IdemKey: "apply-1"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := d.client.WaitJob(ctx, "conf", first.ID)
	if err != nil || fin.Status != jobs.StatusSucceeded {
		t.Fatalf("first apply: %v %s %s", err, fin.Status, fin.Err)
	}
	again, err := d.client.SubmitJob(ctx, "conf", server.JobRequest{Kind: "apply", IdemKey: "apply-1"})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Fatalf("HTTP resubmit created job %s, want original %s", again.ID, first.ID)
	}
	if again.Status != jobs.StatusSucceeded || again.Result == nil {
		t.Fatalf("HTTP resubmit: status=%s result=%v, want succeeded with original result", again.Status, again.Result)
	}

	// In-process path: the queue's own dedup behaves identically — the
	// HTTP layer adds nothing to the contract.
	j1, err := d.queue.Submit(jobs.Request{Tenant: "conf", Kind: "plan", IdemKey: "sim-1",
		Fn: func(ctx context.Context) (any, error) { return "r1", nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	j2, err := d.queue.Submit(jobs.Request{Tenant: "conf", Kind: "plan", IdemKey: "sim-1",
		Fn: func(ctx context.Context) (any, error) { return "r2", nil }})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() != j1.ID() {
		t.Fatalf("queue resubmit created job %s, want original %s", j2.ID(), j1.ID())
	}
	if res, err := j2.Result(); err != nil || res != "r1" {
		t.Fatalf("queue resubmit result = %v, %v; want original \"r1\"", res, err)
	}

	// Across a restart: the journaled idem key still dedups, and the
	// original job ID still resolves with its result.
	d.stop(t)
	d2 := newDurableStack(t, dir, sim)
	defer d2.stop(t)
	d2.recover(t)

	got, err := d2.client.GetJob(ctx, "conf", first.ID, 0)
	if err != nil {
		t.Fatalf("pre-restart job ID %s: %v, want it to resolve", first.ID, err)
	}
	if got.Status != jobs.StatusSucceeded {
		t.Fatalf("pre-restart job %s: %s, want succeeded", first.ID, got.Status)
	}
	resub, err := d2.client.SubmitJob(ctx, "conf", server.JobRequest{Kind: "apply", IdemKey: "apply-1"})
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID != first.ID {
		t.Fatalf("post-restart resubmit created %s, want original %s", resub.ID, first.ID)
	}
}

// TestEventsGapAcrossRestart documents the watermark contract over a
// daemon restart: the in-memory event ring dies with the process, so a
// client resuming from a pre-restart watermark gets a typed resume-gap
// marker (reason "restart") instead of silently missing events, and the
// page restarts it from the stream's beginning.
func TestEventsGapAcrossRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sim := newDurableSim()
	d := newDurableStack(t, dir, sim)

	if _, err := d.client.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "ev", Sources: tenantSource("ev"),
	}); err != nil {
		t.Fatal(err)
	}
	mustJob(t, d.client, "ev", server.JobRequest{Kind: "apply"})

	// Drain the live stream to its watermark; no gap on a live resume.
	page, err := d.client.Events(ctx, "ev", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Events) == 0 || page.Gap != nil {
		t.Fatalf("live stream: %d events, gap=%v; want events and no gap", len(page.Events), page.Gap)
	}
	watermark := page.Next

	d.stop(t)
	d2 := newDurableStack(t, dir, sim)
	defer d2.stop(t)
	d2.recover(t)

	// Resuming from the old watermark: the fresh bus is behind it, so the
	// page carries the typed gap and restarts from the beginning.
	page2, err := d2.client.Events(ctx, "ev", watermark, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page2.Gap == nil {
		t.Fatalf("resume from pre-restart watermark %d: no gap marker", watermark)
	}
	if page2.Gap.Reason != "restart" || page2.Gap.Since != watermark {
		t.Fatalf("gap = %+v, want reason=restart since=%d", page2.Gap, watermark)
	}

	// The marker is one-shot: acting on it (resume from the page's Next)
	// continues gap-free, and post-restart events flow normally.
	mustJob(t, d2.client, "ev", server.JobRequest{Kind: "apply"})
	page3, err := d2.client.Events(ctx, "ev", page2.Next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page3.Gap != nil {
		t.Fatalf("post-recovery resume: unexpected gap %+v", page3.Gap)
	}
	if len(page3.Events) == 0 {
		t.Fatal("post-recovery resume: no events from the new process")
	}
}

// TestDeleteWorkspaceBusy: DELETE on a workspace with in-flight jobs is
// refused with 409 + Retry-After instead of racing the job; once the job
// finishes the delete proceeds and the tenant's job history goes with it.
func TestDeleteWorkspaceBusy(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sim := newDurableSim()
	d := newDurableStack(t, dir, sim)
	defer d.stop(t)

	if _, err := d.client.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: "busy", Sources: tenantSource("busy"),
	}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	j, err := d.queue.Submit(jobs.Request{Tenant: "busy", Kind: "plan",
		Fn: func(ctx context.Context) (any, error) { <-release; return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}

	// The delete client must not paper over the 409 by retrying it away.
	var apiErr *server.APIError
	err = server.NewClient(d.ts.URL, "", nil).WithRetries(0, 0).DeleteWorkspace(ctx, "busy")
	if !errors.As(err, &apiErr) || apiErr.Code != 409 {
		t.Fatalf("delete with in-flight job: %v, want 409", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("busy delete carries no Retry-After: %+v", apiErr)
	}

	close(release)
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.client.DeleteWorkspace(ctx, "busy"); err != nil {
		t.Fatalf("delete after drain: %v", err)
	}
	if _, err := d.client.GetJob(ctx, "busy", j.ID(), 0); !errors.As(err, &apiErr) || apiErr.Code != 404 {
		t.Fatalf("job of deleted workspace: %v, want 404", err)
	}
}
