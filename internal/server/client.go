package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"cloudless/internal/jobs"
	"cloudless/internal/state"
)

// Client is the Go client for the cloudlessd API (cloudlessctl's remote
// mode and the test/bench harnesses ride on it).
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8445"). token may be empty when the server runs
// without auth.
func NewClient(base, token string, hc *http.Client) *Client {
	if hc == nil {
		// Timeout must exceed the long-poll ceiling.
		hc = &http.Client{Timeout: maxEventWait + 30*time.Second}
	}
	return &Client{base: base, token: token, http: hc}
}

// APIError is a non-2xx response.
type APIError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("cloudlessd: %s (HTTP %d)", e.Message, e.Code)
}

// do runs one request, decoding a JSON response into out (nil discards).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return &APIError{Code: resp.StatusCode, Message: ae.Error}
		}
		return &APIError{Code: resp.StatusCode, Message: string(raw)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// ListWorkspaces returns the workspace names this principal can access.
func (c *Client) ListWorkspaces(ctx context.Context) ([]string, error) {
	var out struct {
		Workspaces []string `json:"workspaces"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workspaces", nil, &out)
	return out.Workspaces, err
}

// CreateWorkspace opens a workspace on the server.
func (c *Client) CreateWorkspace(ctx context.Context, req CreateWorkspaceRequest) (WorkspaceInfo, error) {
	var out WorkspaceInfo
	err := c.do(ctx, http.MethodPost, "/v1/workspaces", req, &out)
	return out, err
}

// GetWorkspace describes a workspace.
func (c *Client) GetWorkspace(ctx context.Context, name string) (WorkspaceInfo, error) {
	var out WorkspaceInfo
	err := c.do(ctx, http.MethodGet, "/v1/workspaces/"+url.PathEscape(name), nil, &out)
	return out, err
}

// DeleteWorkspace drain-closes a workspace.
func (c *Client) DeleteWorkspace(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/workspaces/"+url.PathEscape(name), nil, nil)
}

// SubmitJob queues a lifecycle job and returns its initial status.
func (c *Client) SubmitJob(ctx context.Context, ws string, req JobRequest) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs", req, &out)
	return out, err
}

// GetJob fetches a job's status; waitMS > 0 long-polls for completion.
func (c *Client) GetJob(ctx context.Context, ws, id string, waitMS int) (JobStatus, error) {
	path := "/v1/workspaces/" + url.PathEscape(ws) + "/jobs/" + url.PathEscape(id)
	if waitMS > 0 {
		path += "?wait_ms=" + strconv.Itoa(waitMS)
	}
	var out JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// WaitJob polls until the job is terminal or ctx is done.
func (c *Client) WaitJob(ctx context.Context, ws, id string) (JobStatus, error) {
	for {
		st, err := c.GetJob(ctx, ws, id, 10_000)
		if err != nil {
			return st, err
		}
		if st.Status.Terminal() {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// ListJobs lists the workspace's jobs, newest first.
func (c *Client) ListJobs(ctx context.Context, ws string) ([]jobs.View, error) {
	var out struct {
		Jobs []jobs.View `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs", nil, &out)
	return out.Jobs, err
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, ws, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs/"+url.PathEscape(id)+"/cancel", struct{}{}, &out)
	return out, err
}

// PlanArtifact fetches the diff artifact a plan job stored.
func (c *Client) PlanArtifact(ctx context.Context, ws, id string) (PlanSummary, error) {
	var out PlanSummary
	err := c.do(ctx, http.MethodGet, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs/"+url.PathEscape(id)+"/plan", nil, &out)
	return out, err
}

// Events long-polls the workspace event stream from a watermark. Resume by
// passing the returned page's Next as the next call's since.
func (c *Client) Events(ctx context.Context, ws string, since int64, wait time.Duration) (EventsPage, error) {
	path := fmt.Sprintf("/v1/workspaces/%s/events?since=%d", url.PathEscape(ws), since)
	if wait > 0 {
		path += "&wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10)
	}
	var out EventsPage
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Metrics fetches the aggregated Prometheus scrape. Like every other
// route it is authenticated when the server has tokens configured, and the
// scrape only contains workspaces this principal can access.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", &APIError{Code: resp.StatusCode, Message: string(raw)}
	}
	return string(raw), nil
}

// State fetches the workspace's golden state.
func (c *Client) State(ctx context.Context, ws string) (*state.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/workspaces/"+url.PathEscape(ws)+"/state", nil)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, &APIError{Code: resp.StatusCode, Message: string(raw)}
	}
	return state.Decode(raw)
}

// ResultAs decodes a JobStatus result (a map after JSON round-tripping)
// into the kind's typed summary.
func ResultAs[T any](st JobStatus) (T, error) {
	var out T
	raw, err := json.Marshal(st.Result)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(raw, &out)
	return out, err
}
