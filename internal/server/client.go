package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"cloudless/internal/jobs"
	"cloudless/internal/state"
)

// Client retry defaults: enough cumulative backoff (~10s) to ride through
// a daemon restart plus its startup recovery pass.
const (
	defaultRetries   = 8
	defaultRetryBase = 100 * time.Millisecond
	maxRetryDelay    = 3 * time.Second
)

// Client is the Go client for the cloudlessd API (cloudlessctl's remote
// mode and the test/bench harnesses ride on it). Requests retry with
// exponential backoff — honoring Retry-After on 429/503 — so callers ride
// through a daemon restart; POSTs are made retry-safe by idempotency keys
// (SubmitJob generates one when the caller didn't).
type Client struct {
	base    string
	token   string
	http    *http.Client
	retries int
	base0   time.Duration
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8445"). token may be empty when the server runs
// without auth.
func NewClient(base, token string, hc *http.Client) *Client {
	if hc == nil {
		// Timeout must exceed the long-poll ceiling.
		hc = &http.Client{Timeout: maxEventWait + 30*time.Second}
	}
	return &Client{base: base, token: token, http: hc, retries: defaultRetries, base0: defaultRetryBase}
}

// WithRetries tunes the retry budget (n = extra attempts after the first;
// 0 disables retrying) and the backoff base. Returns the client.
func (c *Client) WithRetries(n int, base time.Duration) *Client {
	c.retries = n
	if base > 0 {
		c.base0 = base
	}
	return c
}

// APIError is a non-2xx response.
type APIError struct {
	Code    int
	Message string
	// RetryAfter carries the response's Retry-After header (0 = absent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("cloudlessd: %s (HTTP %d)", e.Message, e.Code)
}

// do runs one request with retries, decoding a JSON response into out
// (nil discards). Transport errors (connection refused mid-restart) are
// retried for every method: GETs and DELETEs are idempotent by nature and
// the POST bodies this client sends are idempotent by key (job submit,
// cancel) or by name conflict (workspace create).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var raw []byte
	if in != nil {
		var err error
		if raw, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.once(ctx, method, path, raw, in != nil, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil || attempt >= c.retries {
			return lastErr
		}
		delay := c.base0 << attempt
		if delay > maxRetryDelay {
			delay = maxRetryDelay
		}
		if ae, ok := lastErr.(*APIError); ok {
			switch ae.Code {
			case http.StatusTooManyRequests, http.StatusBadGateway,
				http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				if ae.RetryAfter > 0 {
					delay = ae.RetryAfter
				}
			default:
				return lastErr // semantic error; retrying won't change it
			}
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return lastErr
		}
	}
}

// once runs a single request attempt.
func (c *Client) once(ctx context.Context, method, path string, raw []byte, hasBody bool, out any) error {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	respRaw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		apiErr := &APIError{Code: resp.StatusCode, Message: string(respRaw)}
		var ae apiError
		if json.Unmarshal(respRaw, &ae) == nil && ae.Error != "" {
			apiErr.Message = ae.Error
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(respRaw, out)
}

// newIdemKey generates a random idempotency key for a submit.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-based key; uniqueness, not secrecy, is the goal.
		return fmt.Sprintf("idem-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// ListWorkspaces returns the workspace names this principal can access.
func (c *Client) ListWorkspaces(ctx context.Context) ([]string, error) {
	var out struct {
		Workspaces []string `json:"workspaces"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workspaces", nil, &out)
	return out.Workspaces, err
}

// CreateWorkspace opens a workspace on the server.
func (c *Client) CreateWorkspace(ctx context.Context, req CreateWorkspaceRequest) (WorkspaceInfo, error) {
	var out WorkspaceInfo
	err := c.do(ctx, http.MethodPost, "/v1/workspaces", req, &out)
	return out, err
}

// GetWorkspace describes a workspace.
func (c *Client) GetWorkspace(ctx context.Context, name string) (WorkspaceInfo, error) {
	var out WorkspaceInfo
	err := c.do(ctx, http.MethodGet, "/v1/workspaces/"+url.PathEscape(name), nil, &out)
	return out, err
}

// DeleteWorkspace drain-closes a workspace.
func (c *Client) DeleteWorkspace(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/workspaces/"+url.PathEscape(name), nil, nil)
}

// SubmitJob queues a lifecycle job and returns its initial status. When
// the request has no idempotency key the client generates one, so a retry
// (transport error, 429 backpressure, daemon restart) dedups to the
// original job instead of submitting the work twice.
func (c *Client) SubmitJob(ctx context.Context, ws string, req JobRequest) (JobStatus, error) {
	if req.IdemKey == "" {
		req.IdemKey = newIdemKey()
	}
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs", req, &out)
	return out, err
}

// GetJob fetches a job's status; waitMS > 0 long-polls for completion.
func (c *Client) GetJob(ctx context.Context, ws, id string, waitMS int) (JobStatus, error) {
	path := "/v1/workspaces/" + url.PathEscape(ws) + "/jobs/" + url.PathEscape(id)
	if waitMS > 0 {
		path += "?wait_ms=" + strconv.Itoa(waitMS)
	}
	var out JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// WaitJob polls until the job is terminal or ctx is done.
func (c *Client) WaitJob(ctx context.Context, ws, id string) (JobStatus, error) {
	for {
		st, err := c.GetJob(ctx, ws, id, 10_000)
		if err != nil {
			return st, err
		}
		if st.Status.Terminal() {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// ListJobs lists the workspace's jobs, newest first.
func (c *Client) ListJobs(ctx context.Context, ws string) ([]jobs.View, error) {
	var out struct {
		Jobs []jobs.View `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs", nil, &out)
	return out.Jobs, err
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, ws, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs/"+url.PathEscape(id)+"/cancel", struct{}{}, &out)
	return out, err
}

// PlanArtifact fetches the diff artifact a plan job stored.
func (c *Client) PlanArtifact(ctx context.Context, ws, id string) (PlanSummary, error) {
	var out PlanSummary
	err := c.do(ctx, http.MethodGet, "/v1/workspaces/"+url.PathEscape(ws)+"/jobs/"+url.PathEscape(id)+"/plan", nil, &out)
	return out, err
}

// Events long-polls the workspace event stream from a watermark. Resume by
// passing the returned page's Next as the next call's since.
func (c *Client) Events(ctx context.Context, ws string, since int64, wait time.Duration) (EventsPage, error) {
	path := fmt.Sprintf("/v1/workspaces/%s/events?since=%d", url.PathEscape(ws), since)
	if wait > 0 {
		path += "&wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10)
	}
	var out EventsPage
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Metrics fetches the aggregated Prometheus scrape. Like every other
// route it is authenticated when the server has tokens configured, and the
// scrape only contains workspaces this principal can access.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", &APIError{Code: resp.StatusCode, Message: string(raw)}
	}
	return string(raw), nil
}

// State fetches the workspace's golden state.
func (c *Client) State(ctx context.Context, ws string) (*state.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/workspaces/"+url.PathEscape(ws)+"/state", nil)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, &APIError{Code: resp.StatusCode, Message: string(raw)}
	}
	return state.Decode(raw)
}

// ResultAs decodes a JobStatus result (a map after JSON round-tripping)
// into the kind's typed summary.
func ResultAs[T any](st JobStatus) (T, error) {
	var out T
	raw, err := json.Marshal(st.Result)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(raw, &out)
	return out, err
}
