package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"time"

	"cloudless/internal/reconcile"
	"cloudless/internal/workspace"
)

// This file is the control-plane surface of continuous reconciliation
// (DESIGN.md S29): enable/disable + status endpoints per workspace, the
// checkpoint plumbing that journals the controller's watermark in the jobs
// store, and the startup pass that restarts enabled controllers after a
// daemon restart so they resume from the journaled watermark instead of
// rescanning.

// ReconcilerRequest enables or disables a workspace's reconciler. All knob
// overrides are optional (0 = controller default); FullScanEveryMs < 0
// disables the periodic safety-net scan.
type ReconcilerRequest struct {
	Enabled bool `json:"enabled"`
	// Mode is "repair" (default) or "detect".
	Mode             string `json:"mode,omitempty"`
	DebounceMs       int    `json:"debounce_ms,omitempty"`
	PollWaitMs       int    `json:"poll_wait_ms,omitempty"`
	FullScanEveryMs  int    `json:"full_scan_every_ms,omitempty"`
	BackoffBaseMs    int    `json:"backoff_base_ms,omitempty"`
	BackoffMaxMs     int    `json:"backoff_max_ms,omitempty"`
	FlapWindowMs     int    `json:"flap_window_ms,omitempty"`
	FlapThreshold    int    `json:"flap_threshold,omitempty"`
	BreakerThreshold int    `json:"breaker_threshold,omitempty"`
	BreakerCooloffMs int    `json:"breaker_cooloff_ms,omitempty"`
}

// tuning converts the wire overrides into controller tuning.
func (r ReconcilerRequest) tuning() reconcile.Tuning {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	t := reconcile.Tuning{
		Debounce:         ms(r.DebounceMs),
		PollWait:         ms(r.PollWaitMs),
		BackoffBase:      ms(r.BackoffBaseMs),
		BackoffMax:       ms(r.BackoffMaxMs),
		FlapWindow:       ms(r.FlapWindowMs),
		FlapThreshold:    r.FlapThreshold,
		BreakerThreshold: r.BreakerThreshold,
		BreakerCooloff:   ms(r.BreakerCooloffMs),
	}
	if r.FullScanEveryMs < 0 {
		t.FullScanEvery = -1
	} else {
		t.FullScanEvery = ms(r.FullScanEveryMs)
	}
	return t
}

// ReconcilerStatus is the wire form of a controller snapshot.
type ReconcilerStatus struct {
	Workspace string `json:"workspace"`
	reconcile.Status
}

// handleSetReconciler enables or disables the workspace's reconciler. The
// decision is durable: it rides the jobs journal, so a restarted daemon
// restarts enabled controllers (RecoverReconcilers) at their journaled
// watermark.
func (s *Server) handleSetReconciler(w http.ResponseWriter, r *http.Request, name string, ws *workspace.Workspace) {
	var req ReconcilerRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !req.Enabled {
		c := ws.Reconciler()
		var wm int64
		if c != nil {
			wm = c.Watermark()
		}
		if err := ws.StopReconciler(r.Context()); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.saveReconcilerCheckpoint(name, reconcile.Checkpoint{Enabled: false, Watermark: wm})
		s.log.Info("reconciler disabled", "workspace", name)
		writeJSON(w, http.StatusOK, ReconcilerStatus{Workspace: name})
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = reconcile.ModeRepair
	}
	// A fresh enable anchors at the activity-log tail: history before the
	// operator turned reconciliation on is not missed drift. Resuming from
	// a journaled watermark is the restart path (RecoverReconcilers).
	c, err := s.startReconciler(name, ws, mode, -1, req.tuning())
	if err != nil {
		if ws.Reconciler() != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.log.Info("reconciler enabled", "workspace", name, "mode", mode)
	writeJSON(w, http.StatusOK, ReconcilerStatus{Workspace: name, Status: c.Status()})
}

// handleReconcilerStatus reports the controller's state, including the
// per-address state machine. A workspace with no controller reports
// enabled=false rather than a 404, so status polls are unconditional.
func (s *Server) handleReconcilerStatus(w http.ResponseWriter, _ *http.Request, name string, ws *workspace.Workspace) {
	out := ReconcilerStatus{Workspace: name}
	if c := ws.Reconciler(); c != nil {
		out.Status = c.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// startReconciler starts a controller whose checkpoints persist through the
// jobs journal under this workspace's tenant.
func (s *Server) startReconciler(name string, ws *workspace.Workspace, mode string, watermark int64, tun reconcile.Tuning) (*reconcile.Controller, error) {
	tunCopy := tun
	return ws.StartReconciler(workspace.ReconcilerOptions{
		Mode:      mode,
		Watermark: watermark,
		Tuning:    tun,
		OnCheckpoint: func(wm int64) {
			s.saveReconcilerCheckpoint(name, reconcile.Checkpoint{
				Enabled: true, Mode: mode, Watermark: wm, Tuning: &tunCopy,
			})
		},
	})
}

// saveReconcilerCheckpoint persists one checkpoint; with no durable store
// (no -data-dir) reconciliation still works, it just doesn't survive
// restarts.
func (s *Server) saveReconcilerCheckpoint(name string, cp reconcile.Checkpoint) {
	store := s.queue.Store()
	if store == nil {
		return
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		return
	}
	if err := store.SaveReconciler(name, raw); err != nil {
		s.log.Warn("save reconciler checkpoint", "workspace", name, "err", err)
	}
}

// ReconcilerRecoveryReport summarizes a RecoverReconcilers pass.
type ReconcilerRecoveryReport struct {
	// Resumed counts controllers restarted at their journaled watermark.
	Resumed int
	// Orphaned counts enabled checkpoints whose workspace no longer exists.
	Orphaned int
}

// RecoverReconcilers restarts every workspace reconciler whose journaled
// checkpoint says it was enabled, resuming each from its acknowledged
// watermark — no rescan, no replay of work the previous life completed, and
// drift that happened while the daemon was down is picked up by the
// activity tail past the watermark. Runs at startup after RecoverJobs.
func (s *Server) RecoverReconcilers(ctx context.Context) (*ReconcilerRecoveryReport, error) {
	rep := &ReconcilerRecoveryReport{}
	store := s.queue.Store()
	if store == nil {
		return rep, nil
	}
	tenants, err := store.Tenants()
	if err != nil {
		return nil, err
	}
	for _, tenant := range tenants {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		raw, err := store.LoadReconciler(tenant)
		if err != nil || raw == nil {
			continue
		}
		var cp reconcile.Checkpoint
		if json.Unmarshal(raw, &cp) != nil || !cp.Enabled {
			continue
		}
		ws, err := s.mgr.Get(tenant)
		if err != nil {
			rep.Orphaned++
			s.log.Warn("reconciler checkpoint orphaned", "workspace", tenant, "err", err)
			continue
		}
		var tun reconcile.Tuning
		if cp.Tuning != nil {
			tun = *cp.Tuning
		}
		if _, err := s.startReconciler(tenant, ws, cp.Mode, cp.Watermark, tun); err != nil {
			s.log.Warn("reconciler restart failed", "workspace", tenant, "err", err)
			continue
		}
		rep.Resumed++
		s.log.Info("reconciler resumed", "workspace", tenant,
			"mode", cp.Mode, "watermark", cp.Watermark)
	}
	return rep, nil
}

// ---- client ----

// SetReconciler enables or disables a workspace's reconciler.
func (c *Client) SetReconciler(ctx context.Context, ws string, req ReconcilerRequest) (ReconcilerStatus, error) {
	var out ReconcilerStatus
	err := c.do(ctx, http.MethodPost, "/v1/workspaces/"+url.PathEscape(ws)+"/reconciler", req, &out)
	return out, err
}

// ReconcilerStatus fetches a workspace's reconciler state.
func (c *Client) ReconcilerStatus(ctx context.Context, ws string) (ReconcilerStatus, error) {
	var out ReconcilerStatus
	err := c.do(ctx, http.MethodGet, "/v1/workspaces/"+url.PathEscape(ws)+"/reconciler", nil, &out)
	return out, err
}
