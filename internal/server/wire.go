package server

import (
	"sort"

	"cloudless/internal/apply"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/jobs"
	"cloudless/internal/plan"
)

// Wire types shared by the server and its Go client. Lifecycle results
// carry eval.Value attribute maps internally, so each job kind renders a
// JSON-stable summary instead of marshaling internals directly.

// CreateWorkspaceRequest opens a workspace on the server.
type CreateWorkspaceRequest struct {
	Name string `json:"name"`
	// Sources maps filename to CCL source.
	Sources map[string]string `json:"sources"`
	// Vars supplies input variable values.
	Vars map[string]any `json:"vars,omitempty"`
	// Policies is CCL policy source enforced across the lifecycle.
	Policies string `json:"policies,omitempty"`
	// StateBackend picks the golden-state engine ("" = server default).
	StateBackend string `json:"state_backend,omitempty"`
	// GuardApplies turns health-gated applies on for this workspace.
	GuardApplies bool    `json:"guard_applies,omitempty"`
	GuardCanary  float64 `json:"guard_canary,omitempty"`
}

// WorkspaceInfo describes a hosted workspace.
type WorkspaceInfo struct {
	Name      string         `json:"name"`
	Serial    int            `json:"serial"`
	Resources int            `json:"resources"`
	Instances []string       `json:"instances,omitempty"`
	Outputs   map[string]any `json:"outputs,omitempty"`
}

// JobRequest submits one lifecycle job.
type JobRequest struct {
	// Kind is one of "plan", "apply", "destroy", "drift", "scan",
	// "reconcile", "recover".
	Kind string `json:"kind"`
	// PlanJob applies the stored plan artifact from an earlier plan job
	// instead of replanning inside the apply ("" replans).
	PlanJob string `json:"plan_job,omitempty"`
	// Concurrency bounds apply parallelism (0 = default).
	Concurrency int `json:"concurrency,omitempty"`
	// BatchOps coalesces apply cloud calls into bulk operations.
	BatchOps bool `json:"batch_ops,omitempty"`
	// Action picks the reconcile action ("adopt", "revert", "notify") for
	// kind "reconcile"; the drift report is the result of DriftJob.
	Action string `json:"action,omitempty"`
	// DriftJob names the drift/scan job whose report a reconcile consumes.
	DriftJob string `json:"drift_job,omitempty"`
	// IdemKey is a client-chosen idempotency key: resubmitting with the
	// same key (e.g. retrying after a timeout or a daemon restart) returns
	// the original job instead of creating a new one. The Go client fills
	// one in automatically when left empty.
	IdemKey string `json:"idem_key,omitempty"`
}

// JobStatus is a job snapshot plus its rendered result once terminal.
type JobStatus struct {
	jobs.View
	// Result holds the kind-specific summary (PlanSummary, ApplySummary,
	// DriftSummary, RecoverSummary) once the job succeeded. It decodes as
	// map[string]any on the client; use the typed helpers on Client.
	Result any `json:"result,omitempty"`
}

// PlanChange is one planned action.
type PlanChange struct {
	Addr         string   `json:"addr"`
	Action       string   `json:"action"`
	Type         string   `json:"type,omitempty"`
	Region       string   `json:"region,omitempty"`
	ChangedAttrs []string `json:"changed_attrs,omitempty"`
}

// PlanSummary is the wire form of a plan (the diff artifact).
type PlanSummary struct {
	BaseSerial int          `json:"base_serial"`
	Creates    int          `json:"creates"`
	Updates    int          `json:"updates"`
	Replaces   int          `json:"replaces"`
	Deletes    int          `json:"deletes"`
	Noops      int          `json:"noops"`
	Changes    []PlanChange `json:"changes,omitempty"`
}

// Pending counts the non-noop actions.
func (p PlanSummary) Pending() int { return p.Creates + p.Updates + p.Replaces + p.Deletes }

// ApplySummary is the wire form of an apply/destroy result.
type ApplySummary struct {
	Applied    int               `json:"applied"`
	Failed     int               `json:"failed"`
	Retries    int               `json:"retries"`
	ElapsedMs  float64           `json:"elapsed_ms"`
	Reverted   bool              `json:"reverted,omitempty"`
	RolledBack []string          `json:"rolled_back,omitempty"`
	Errors     map[string]string `json:"errors,omitempty"`
	Outputs    map[string]any    `json:"outputs,omitempty"`
	Serial     int               `json:"serial"`
}

// DriftItem is one detected divergence.
type DriftItem struct {
	Kind         string   `json:"kind"`
	Addr         string   `json:"addr,omitempty"`
	Type         string   `json:"type,omitempty"`
	ID           string   `json:"id,omitempty"`
	Actor        string   `json:"actor,omitempty"`
	ChangedAttrs []string `json:"changed_attrs,omitempty"`
}

// DriftSummary is the wire form of a drift report.
type DriftSummary struct {
	Method   string      `json:"method"`
	Items    []DriftItem `json:"items,omitempty"`
	APICalls int         `json:"api_calls"`
	LogReads int         `json:"log_reads"`
}

// ReconcileSummary is the wire form of a drift reconciliation.
type ReconcileSummary struct {
	Adopted  []string          `json:"adopted,omitempty"`
	Reverted []string          `json:"reverted,omitempty"`
	Notified []string          `json:"notified,omitempty"`
	Errors   map[string]string `json:"errors,omitempty"`
}

// RecoverSummary is the wire form of a journal recovery.
type RecoverSummary struct {
	Recovered      bool     `json:"recovered"`
	Kind           string   `json:"kind,omitempty"`
	Confirmed      int      `json:"confirmed"`
	Resumed        int      `json:"resumed"`
	OrphansAdopted []string `json:"orphans_adopted,omitempty"`
	OrphansDeleted []string `json:"orphans_deleted,omitempty"`
}

// ResumeGap is the typed marker for a broken event-stream watermark: the
// client's ?since= can no longer be resumed gaplessly, either because the
// in-memory replay ring dropped events past its capacity ("overflow") or
// because the daemon restarted and sequence numbers started over
// ("restart" — the ring is not persisted across restarts). Consumers
// should surface the gap and re-anchor at Next instead of assuming a
// contiguous stream.
type ResumeGap struct {
	// Reason is "restart" or "overflow".
	Reason string `json:"reason"`
	// Since echoes the watermark that could not be resumed.
	Since int64 `json:"since"`
	// Oldest is the oldest sequence still replayable (0 when none).
	Oldest int64 `json:"oldest"`
}

// EventsPage is one long-poll result: events after the watermark, plus the
// next watermark to resume from.
type EventsPage struct {
	Events []WireEvent `json:"events"`
	// Next is the highest sequence seen (pass back as ?since=). Equal to
	// the request watermark when the poll timed out empty.
	Next int64 `json:"next"`
	// Gap, when set, signals that the requested watermark could not be
	// resumed without loss (see ResumeGap). Events (if any) start at the
	// oldest the server still has.
	Gap *ResumeGap `json:"gap,omitempty"`
}

// WireEvent mirrors events.Event (kept as an alias-free copy so the wire
// format is explicit and stable).
type WireEvent struct {
	Seq       int64   `json:"seq"`
	Time      int64   `json:"time"`
	Kind      string  `json:"kind"`
	Run       string  `json:"run,omitempty"`
	Addr      string  `json:"addr,omitempty"`
	Type      string  `json:"type,omitempty"`
	ID        string  `json:"id,omitempty"`
	Region    string  `json:"region,omitempty"`
	Action    string  `json:"action,omitempty"`
	Wave      string  `json:"wave,omitempty"`
	Domain    string  `json:"domain,omitempty"`
	Provider  string  `json:"provider,omitempty"`
	Principal string  `json:"principal,omitempty"`
	Err       string  `json:"err,omitempty"`
	N         int64   `json:"n,omitempty"`
	Retries   int64   `json:"retries,omitempty"`
	Ms        float64 `json:"ms,omitempty"`
	Window    float64 `json:"window,omitempty"`
	CloudSeq  int64   `json:"cloud_seq,omitempty"`
}

// apiError is the wire error body.
type apiError struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// summarizePlan renders a plan into its wire artifact.
func summarizePlan(p *plan.Plan) PlanSummary {
	s := PlanSummary{
		BaseSerial: p.BaseSerial,
		Creates:    p.Creates, Updates: p.Updates,
		Replaces: p.Replaces, Deletes: p.Deletes, Noops: p.Noops,
	}
	for addr, ch := range p.Changes {
		if ch.Action == plan.ActionNoop {
			continue
		}
		s.Changes = append(s.Changes, PlanChange{
			Addr: addr, Action: ch.Action.String(),
			Type: ch.Type, Region: ch.Region, ChangedAttrs: ch.ChangedAttrs,
		})
	}
	sort.Slice(s.Changes, func(i, j int) bool { return s.Changes[i].Addr < s.Changes[j].Addr })
	return s
}

// summarizeApply renders an apply/destroy result; serial is the post-commit
// golden-state serial, outputs the redacted display outputs.
func summarizeApply(res *apply.Result, serial int, outputs map[string]any) ApplySummary {
	s := ApplySummary{
		Applied: res.Applied, Failed: len(res.Errors), Retries: res.Retries,
		ElapsedMs: float64(res.Elapsed.Milliseconds()),
		Reverted:  res.Reverted, RolledBack: res.RolledBack,
		Outputs: outputs, Serial: serial,
	}
	if len(res.Errors) > 0 {
		s.Errors = map[string]string{}
		for addr, err := range res.Errors {
			s.Errors[addr] = err.Error()
		}
	}
	return s
}

// summarizeDrift renders a drift report.
func summarizeDrift(rep *drift.Report) DriftSummary {
	s := DriftSummary{Method: rep.Method, APICalls: rep.APICalls, LogReads: rep.LogReads}
	for _, it := range rep.Items {
		s.Items = append(s.Items, DriftItem{
			Kind: it.Kind.String(), Addr: it.Addr, Type: it.Type, ID: it.ID,
			Actor: it.Actor, ChangedAttrs: it.ChangedAttrs,
		})
	}
	return s
}

// summarizeRecover renders a journal recovery (nil report = nothing to do).
func summarizeRecover(rep *apply.RecoverReport) RecoverSummary {
	if rep == nil {
		return RecoverSummary{}
	}
	return RecoverSummary{
		Recovered: true, Kind: rep.Kind,
		Confirmed: rep.Confirmed, Resumed: rep.Resumed,
		OrphansAdopted: rep.OrphansAdopted, OrphansDeleted: rep.OrphansDeleted,
	}
}

// toGoVars converts request vars into plain Go values (JSON decoding
// already yields plain values; this keeps eval out of the wire layer).
func toGoVars(in map[string]any) map[string]any {
	if in == nil {
		return nil
	}
	out := make(map[string]any, len(in))
	for k, v := range in {
		out[k] = eval.ToGo(eval.FromGo(v))
	}
	return out
}
