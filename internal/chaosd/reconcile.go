package chaosd

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
	"cloudless/internal/workload"
)

// This file is the continuous-reconciliation chaos drill (DESIGN.md S29):
// the same subprocess SIGKILL harness as the DR drill, but aimed at the
// converge loop. Each trial injects foreign drift into the external sim and
// kills the daemon either mid-poll (after the repair completed and its
// watermark was journaled) or mid-repair (drift still outstanding), then
// injects more drift while the daemon is down. The restarted daemon must:
//
//   - auto-resume the reconciler from its journaled checkpoint (no client
//     re-enable);
//   - resume the activity cursor at the journaled watermark — drift that
//     happened while it was down is caught by the event tail alone (the
//     periodic FullScan is disabled to prove it), so nothing is missed;
//   - not repeat repairs the previous life already completed — an acked
//     watermark means at most a cheap re-verify, never a second apply;
//   - converge: every injected mutation is reverted and the controller
//     quiesces with its ack caught up to the ingest cursor.

// ReconcileOptions tune RunReconcile.
type ReconcileOptions struct {
	// Trials is the kill/restart budget (required > 0).
	Trials int
	// Seed feeds the deterministic trial schedule (default 1).
	Seed int64
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// ReconcileResult is the drill outcome. Any non-zero invariant counter means
// the self-healing contract broke.
type ReconcileResult struct {
	Trials         int `json:"trials"`
	Kills          int `json:"kills"`
	MidRepairKills int `json:"mid_repair_kills"` // drift was outstanding at SIGKILL
	DriftInjected  int `json:"drift_injected"`
	Repaired       int `json:"repaired"` // repairs reported by the final daemon life

	NotResumed         int `json:"not_resumed"`         // restarts where the reconciler did not auto-enable
	WatermarkRegressed int `json:"watermark_regressed"` // resumed cursor never re-reached the pre-kill ack
	MissedDrift        int `json:"missed_drift"`        // injected drift never repaired
	DuplicateRepairs   int `json:"duplicate_repairs"`   // post-restart mutation of an already-repaired target
	FullScans          int `json:"full_scans"`          // must stay 0: the event path alone carries the drill

	failures []string
}

// Failures returns human-readable invariant violations (empty = clean).
func (r *ReconcileResult) Failures() []string { return r.failures }

// rcTenant is the drill's single workspace.
const rcTenant = "rc-0"

// rcTarget is one driftable resource: its type, cloud ID, and declared name
// (what every repair must restore).
type rcTarget struct {
	typ, id, declared string
}

// RunReconcile executes the reconciliation chaos drill.
func RunReconcile(dir string, opts ReconcileOptions) (*ReconcileResult, error) {
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("chaosd: Trials must be positive")
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	h, err := NewHarness(dir, opts.Seed, opts.Logf)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	logf := h.logf
	if opts.Logf != nil {
		logf = opts.Logf
	}

	ctx := context.Background()
	if _, err := h.Start(ctx); err != nil {
		return nil, err
	}
	res := &ReconcileResult{Trials: opts.Trials}

	// One web tier, deployed and then watched by the reconciler.
	if _, err := h.Client.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: rcTenant, Sources: workload.WebTier(rcTenant, 2, 2),
	}); err != nil {
		return nil, fmt.Errorf("chaosd: create %s: %w", rcTenant, err)
	}
	if err := h.runJob(ctx, rcTenant, "apply"); err != nil {
		return nil, err
	}

	// Fast knobs, periodic FullScan off: every catch must come from the
	// activity tail resuming at the journaled watermark.
	if _, err := h.Client.SetReconciler(ctx, rcTenant, server.ReconcilerRequest{
		Enabled: true, Mode: "repair",
		DebounceMs: 5, PollWaitMs: 250, FullScanEveryMs: -1,
		BackoffBaseMs: 50, BackoffMaxMs: 500,
		// Trials re-drift the same two targets on purpose; keep flap
		// damping from suppressing late-trial repairs at high budgets.
		FlapThreshold: 1000,
	}); err != nil {
		return nil, fmt.Errorf("chaosd: enable reconciler: %w", err)
	}

	targets, err := h.findTargets(ctx)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	seq := 0
	for trial := 0; trial < opts.Trials; trial++ {
		midRepair := rng.Intn(2) == 1
		tgt := targets[rng.Intn(len(targets))]
		seq++
		if err := h.injectDrift(ctx, tgt, fmt.Sprintf("intruder-%d", seq)); err != nil {
			return nil, fmt.Errorf("chaosd trial %d: inject: %w", trial, err)
		}
		res.DriftInjected++

		var preKillAck int64
		if midRepair {
			// Kill inside the detect/repair window: give the controller just
			// enough time to have seen the event, not necessarily to have
			// finished (and acked) the repair.
			time.Sleep(time.Duration(5+rng.Intn(40)) * time.Millisecond)
			res.MidRepairKills++
		} else {
			// Kill mid-poll: wait until the repair completed AND its watermark
			// was acknowledged, so the next life owes this drift nothing.
			st, err := h.waitRepaired(ctx, tgt, 60*time.Second)
			if err != nil {
				return nil, fmt.Errorf("chaosd trial %d: %w", trial, err)
			}
			preKillAck = st.Watermark
		}
		if err := h.Kill(); err != nil {
			return nil, fmt.Errorf("chaosd trial %d: kill: %w", trial, err)
		}
		res.Kills++

		// While the daemon is dead, the world keeps moving: drift a second
		// target. Only the journaled watermark can catch this.
		downTgt := targets[rng.Intn(len(targets))]
		seq++
		if err := h.injectDrift(ctx, downTgt, fmt.Sprintf("downtime-%d", seq)); err != nil {
			return nil, fmt.Errorf("chaosd trial %d: downtime inject: %w", trial, err)
		}
		res.DriftInjected++
		markSeq := h.sim.LastSeq() // everything past this happens after restart

		if _, err := h.Start(ctx); err != nil {
			return nil, fmt.Errorf("chaosd trial %d: restart: %w", trial, err)
		}

		// The reconciler must come back on its own (RecoverReconcilers).
		st, err := h.waitReconcilerEnabled(ctx, 15*time.Second)
		if err != nil {
			res.NotResumed++
			res.failures = append(res.failures, fmt.Sprintf("trial %d: reconciler not auto-resumed: %v", trial, err))
			continue
		}
		if preKillAck > 0 && st.Watermark < preKillAck {
			// A lagging first status read is fine; staying behind is not —
			// the resumed tail must re-reach the pre-kill ack promptly.
			if st2, err := h.waitWatermark(ctx, preKillAck, 30*time.Second); err != nil {
				res.WatermarkRegressed++
				res.failures = append(res.failures, fmt.Sprintf(
					"trial %d: watermark resumed at %d, never re-reached pre-kill ack %d",
					trial, st2.Watermark, preKillAck))
			}
		}

		// Every injected drift — pre-kill and downtime — ends up repaired.
		if _, err := h.waitRepaired(ctx, tgt, 60*time.Second); err != nil {
			res.MissedDrift++
			res.failures = append(res.failures, fmt.Sprintf("trial %d: pre-kill drift on %s missed: %v", trial, tgt.typ, err))
		}
		if _, err := h.waitRepaired(ctx, downTgt, 60*time.Second); err != nil {
			res.MissedDrift++
			res.failures = append(res.failures, fmt.Sprintf("trial %d: downtime drift on %s missed: %v", trial, downTgt.typ, err))
		}
		if err := h.waitQuiescent(ctx, 30*time.Second); err != nil {
			res.failures = append(res.failures, fmt.Sprintf("trial %d: %v", trial, err))
		}

		// No duplicate repairs: in a mid-poll trial whose downtime drift hit a
		// DIFFERENT resource, the restarted life has no business mutating the
		// pre-kill target again — its repair was acked before the kill. Any
		// post-restart mutation of it by a non-intruder principal is a replay.
		if !midRepair && downTgt.id != tgt.id {
			evs, err := h.sim.Activity(ctx, markSeq)
			if err == nil {
				for _, ev := range evs {
					if ev.ID == tgt.id && ev.Principal != "chaos-intruder" {
						res.DuplicateRepairs++
						res.failures = append(res.failures, fmt.Sprintf(
							"trial %d: duplicate repair: %s %s re-mutated by %q after its acked repair",
							trial, ev.Op, ev.ID, ev.Principal))
						break
					}
				}
			}
		}

		if st, err := h.Client.ReconcilerStatus(ctx, rcTenant); err == nil {
			res.Repaired = int(st.Repaired)
			res.FullScans += int(st.FullScans)
			if st.FullScans > 0 {
				res.failures = append(res.failures, fmt.Sprintf(
					"trial %d: %d full scan(s) ran; the drill must be carried by the event path alone",
					trial, st.FullScans))
			}
		}
		if (trial+1)%5 == 0 || trial == opts.Trials-1 {
			logf("chaosd reconcile: trial %d/%d: kills=%d mid-repair=%d missed=%d dup=%d regressed=%d",
				trial+1, opts.Trials, res.Kills, res.MidRepairKills, res.MissedDrift, res.DuplicateRepairs, res.WatermarkRegressed)
		}
	}
	return res, nil
}

// findTargets resolves the driftable resources' cloud IDs and declared names
// (the web tier's VPC and security group — resources whose rename the
// reconciler must always revert).
func (h *Harness) findTargets(ctx context.Context) ([]rcTarget, error) {
	var targets []rcTarget
	for _, typ := range []string{"aws_vpc", "aws_security_group"} {
		rs, err := h.sim.List(ctx, typ, "")
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			targets = append(targets, rcTarget{typ: typ, id: r.ID, declared: r.Attrs["name"].AsString()})
		}
	}
	if len(targets) < 2 {
		return nil, fmt.Errorf("chaosd: found %d drift targets, want >= 2", len(targets))
	}
	return targets, nil
}

// injectDrift renames the target under a foreign principal.
func (h *Harness) injectDrift(ctx context.Context, tgt rcTarget, name string) error {
	_, err := h.sim.Update(ctx, cloud.UpdateRequest{
		Type: tgt.typ, ID: tgt.id,
		Attrs:     map[string]eval.Value{"name": eval.String(name)},
		Principal: "chaos-intruder",
	})
	return err
}

// waitRepaired polls until the target's cloud name matches its declared
// intent again AND the controller acked through its ingest cursor (so the
// repair is journaled, not merely applied), then returns that status.
func (h *Harness) waitRepaired(ctx context.Context, tgt rcTarget, timeout time.Duration) (server.ReconcilerStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		r, err := h.sim.Get(ctx, tgt.typ, tgt.id)
		if err == nil && r.Attrs["name"].AsString() == tgt.declared {
			return h.waitSettled(ctx, deadline)
		}
		if time.Now().After(deadline) {
			return server.ReconcilerStatus{}, fmt.Errorf("drift on %s/%s not repaired within %s", tgt.typ, tgt.id, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitSettled waits for the acknowledged watermark to catch the ingest
// cursor — i.e. outstanding work is not just applied but fully acked (and
// therefore checkpointed in the jobs journal).
func (h *Harness) waitSettled(ctx context.Context, deadline time.Time) (server.ReconcilerStatus, error) {
	var st server.ReconcilerStatus
	var err error
	for {
		st, err = h.Client.ReconcilerStatus(ctx, rcTenant)
		if err == nil && st.Enabled && st.Watermark > 0 && st.Watermark == st.IngestSeq {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("watermark never settled (ack %d, ingest %d, err %v)", st.Watermark, st.IngestSeq, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitReconcilerEnabled polls until the restarted daemon reports a running
// reconciler (RecoverReconcilers resumed it — the drill never re-enables).
func (h *Harness) waitReconcilerEnabled(ctx context.Context, timeout time.Duration) (server.ReconcilerStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := h.Client.ReconcilerStatus(ctx, rcTenant)
		if err == nil && st.Enabled {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("reconciler not enabled after restart (err %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitWatermark polls until the acked watermark reaches at least want.
func (h *Harness) waitWatermark(ctx context.Context, want int64, timeout time.Duration) (server.ReconcilerStatus, error) {
	deadline := time.Now().Add(timeout)
	var st server.ReconcilerStatus
	var err error
	for {
		st, err = h.Client.ReconcilerStatus(ctx, rcTenant)
		if err == nil && st.Watermark >= want {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("watermark stuck at %d, want >= %d", st.Watermark, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitQuiescent waits until the controller has nothing left to do: every
// address back to "ok" and the ack caught up with the ingest cursor.
func (h *Harness) waitQuiescent(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var st server.ReconcilerStatus
	var err error
	for {
		st, err = h.Client.ReconcilerStatus(ctx, rcTenant)
		if err == nil && st.Enabled && st.Watermark == st.IngestSeq {
			busy := false
			for _, a := range st.Addrs {
				if a.State != "ok" {
					busy = true
					break
				}
			}
			if !busy {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("controller never quiesced: ack=%d ingest=%d addrs=%+v", st.Watermark, st.IngestSeq, st.Addrs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runJob submits kind and waits for success.
func (h *Harness) runJob(ctx context.Context, tenant, kind string) error {
	st, err := h.Client.SubmitJob(ctx, tenant, server.JobRequest{Kind: kind})
	if err != nil {
		return fmt.Errorf("chaosd: submit %s %s: %w", tenant, kind, err)
	}
	wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	fin, err := h.Client.WaitJob(wctx, tenant, st.ID)
	if err != nil {
		return fmt.Errorf("chaosd: wait %s %s: %w", tenant, kind, err)
	}
	if fin.Status != jobs.StatusSucceeded {
		return fmt.Errorf("chaosd: %s %s: %s (%s)", tenant, kind, fin.Status, fin.Err)
	}
	return nil
}
