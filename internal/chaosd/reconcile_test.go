package chaosd

import (
	"os"
	"strconv"
	"testing"
)

// TestReconcileChaos is the CI face of the reconciliation drill: SIGKILL the
// daemon mid-poll and mid-repair, inject foreign drift while it is down, and
// assert the self-healing contract — the reconciler auto-resumes from its
// journaled watermark, misses nothing, repeats nothing, and never needs a
// full rescan. CLOUDLESS_CHAOS_TRIALS scales the budget.
func TestReconcileChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos drill; skipped in -short")
	}
	trials := 4
	if v := os.Getenv("CLOUDLESS_CHAOS_TRIALS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			trials = n
		}
	}
	res, err := RunReconcile(t.TempDir(), ReconcileOptions{
		Trials: trials,
		Seed:   11,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("reconcile chaos drill: %v", err)
	}
	for _, f := range res.Failures() {
		t.Errorf("invariant violated: %s", f)
	}
	if res.Kills != trials {
		t.Errorf("kills = %d, want %d", res.Kills, trials)
	}
	if res.NotResumed != 0 || res.WatermarkRegressed != 0 || res.MissedDrift != 0 ||
		res.DuplicateRepairs != 0 || res.FullScans != 0 {
		t.Errorf("contract broken: not-resumed=%d regressed=%d missed=%d dup=%d fullscans=%d",
			res.NotResumed, res.WatermarkRegressed, res.MissedDrift, res.DuplicateRepairs, res.FullScans)
	}
	if trials >= 4 && res.MidRepairKills == 0 {
		t.Errorf("no kill landed mid-repair across %d trials; drill timing is off", trials)
	}
	t.Logf("reconcile chaos: %d kills (%d mid-repair), %d drift injected, %d repaired (final life)",
		res.Kills, res.MidRepairKills, res.DriftInjected, res.Repaired)
}
