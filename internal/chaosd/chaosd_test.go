package chaosd

import (
	"os"
	"strconv"
	"testing"
)

// TestDaemonChaosSmoke is the CI face of the DR drill: a handful of real
// SIGKILL/restart rounds against a subprocess cloudlessd, asserting the
// full crash-safety contract (no lost jobs, no duplicate creates, no
// orphans, convergence). CLOUDLESS_CHAOS_TRIALS scales the budget; the
// benchharness DR experiment runs the same harness at full depth.
func TestDaemonChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos drill; skipped in -short")
	}
	trials := 4
	if v := os.Getenv("CLOUDLESS_CHAOS_TRIALS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			trials = n
		}
	}
	res, err := Run(t.TempDir(), Options{
		Trials:  trials,
		Tenants: 3,
		Seed:    7,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos drill: %v", err)
	}
	for _, f := range res.Failures() {
		t.Errorf("invariant violated: %s", f)
	}
	if res.Kills != trials {
		t.Errorf("kills = %d, want %d", res.Kills, trials)
	}
	if res.LostJobs != 0 || res.StuckJobs != 0 || res.DuplicateCreates != 0 || res.Orphans != 0 || res.Diverged != 0 {
		t.Errorf("contract broken: lost=%d stuck=%d dupes=%d orphans=%d diverged=%d",
			res.LostJobs, res.StuckJobs, res.DuplicateCreates, res.Orphans, res.Diverged)
	}
	if trials >= 3 && res.MidFlightKills == 0 {
		t.Errorf("no kill landed on an in-flight job across %d trials; harness timing is off", trials)
	}
	t.Logf("chaosd smoke: %d kills (%d mid-flight), %d jobs submitted, %d recovered, resume p50=%.0fms max=%.0fms",
		res.Kills, res.MidFlightKills, res.JobsSubmitted, res.JobsRecovered, res.ResumeP50Ms, res.ResumeMaxMs)
}
