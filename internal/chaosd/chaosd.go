// Package chaosd is the daemon-level chaos harness (DESIGN.md S28): it
// builds the real cloudlessd binary, runs it as a subprocess against an
// external (in-process HTTP) cloud simulator, and SIGKILLs the whole
// daemon mid-plan/mid-apply across many tenants — then restarts it on the
// same data dir and checks the crash-safety contract end to end:
//
//   - zero lost jobs: every job ID ever acknowledged resolves over HTTP
//     after the restart (never a 404);
//   - every job that was queued or running at the kill reaches a correct
//     terminal state after restart (mid-apply jobs resume through the
//     workspace's journal recovery under their original idempotency keys);
//   - zero duplicate creates and zero orphans: the simulated cloud holds
//     exactly the union of the workspaces' golden states;
//   - convergence: once the dust settles, every tenant's plan is a no-op.
//
// The kill is a real SIGKILL of a real process — no goroutine stand-ins —
// so abandoned work cannot keep mutating the cloud behind the harness's
// back: the cloud outlives the daemon precisely because it is a separate
// (in-process HTTP) server. Both the benchharness DR experiment and the
// daemon-chaos CI smoke test drive this harness; CLOUDLESS_CHAOS_TRIALS
// scales the trial budget in both.
package chaosd

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
	"cloudless/internal/workload"
)

// Options tune Run.
type Options struct {
	// Trials is the kill/restart budget (required > 0).
	Trials int
	// Tenants is how many workspaces share the daemon (default 3).
	Tenants int
	// Seed feeds the deterministic trial schedule (default 1).
	Seed int64
	// Workers is the daemon's job worker ceiling (default 4).
	Workers int
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Result is the harness outcome. Any non-zero invariant counter means the
// crash-safety contract broke; Err summarizes the first violation.
type Result struct {
	Trials        int `json:"trials"`
	Kills         int `json:"kills"`
	MidFlightKills int `json:"mid_flight_kills"` // a submitted job was queued/running at SIGKILL
	JobsSubmitted int `json:"jobs_submitted"`
	JobsRecovered int `json:"jobs_recovered"` // pre-kill job IDs that resolved after restart

	LostJobs         int `json:"lost_jobs"`         // pre-kill IDs that 404ed after restart
	StuckJobs        int `json:"stuck_jobs"`        // in-flight jobs that never reached terminal
	DuplicateCreates int `json:"duplicate_creates"` // state entries the cloud cannot back
	Orphans          int `json:"orphans"`           // cloud resources no state knows about
	Diverged         int `json:"diverged"`          // tenants whose final plan was not a no-op

	ResumeP50Ms float64 `json:"time_to_resume_p50_ms"` // SIGKILL -> healthy daemon (incl. recovery)
	ResumeP95Ms float64 `json:"time_to_resume_p95_ms"`
	ResumeMaxMs float64 `json:"time_to_resume_max_ms"`
	resumes     []float64

	failures []string
}

// Failures returns human-readable invariant violations (empty = clean).
func (r *Result) Failures() []string { return r.failures }

// Harness runs one daemon lifecycle: build once, then spawn / kill /
// respawn against a stable data dir and cloud endpoint.
type Harness struct {
	bin     string
	dataDir string
	addr    string
	logPath string

	sim    *cloud.Sim
	simSrv *httptest.Server

	proc   *exec.Cmd
	Client *server.Client

	logf func(string, ...any)
}

// NewHarness builds cloudlessd into dir and stands up the external cloud
// sim. Call Close when done.
func NewHarness(dir string, seed int64, logf func(string, ...any)) (*Harness, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	bin := filepath.Join(dir, "cloudlessd")
	build := exec.Command("go", "build", "-o", bin, "cloudless/cmd/cloudlessd")
	if out, err := build.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("chaosd: build cloudlessd: %v\n%s", err, out)
	}
	// The cloud must outlive every daemon kill, so it runs in this process
	// as a real HTTP server; the daemon dials it like any remote cloud.
	simOpts := cloud.DefaultOptions()
	simOpts.DisableRateLimit = true
	simOpts.TimeScale = 0.001 // VMs provision in ~95ms: long enough for kills to land mid-apply
	simOpts.Seed = seed
	sim := cloud.NewSim(simOpts)
	simSrv := httptest.NewServer(cloud.NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil))))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		simSrv.Close()
		return nil, err
	}
	addr := ln.Addr().String()
	ln.Close()

	h := &Harness{
		bin:     bin,
		dataDir: filepath.Join(dir, "data"),
		addr:    addr,
		logPath: filepath.Join(dir, "daemon.log"),
		sim:     sim,
		simSrv:  simSrv,
		Client:  server.NewClient("http://"+addr, "", nil),
		logf:    logf,
	}
	return h, nil
}

// Sim exposes the external cloud for invariant checks.
func (h *Harness) Sim() *cloud.Sim { return h.sim }

// Start spawns the daemon on the harness's stable address and data dir and
// waits for /healthz (which only answers after startup recovery finished).
// Returns the time from spawn to healthy.
func (h *Harness) Start(ctx context.Context) (time.Duration, error) {
	logFile, err := os.OpenFile(h.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	cmd := exec.Command(h.bin,
		"-addr", h.addr,
		"-cloud", h.simSrv.URL,
		"-data-dir", h.dataDir,
		"-state-backend", "wal",
		"-workers", "4",
		"-drain-timeout", "10s",
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	start := time.Now()
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return 0, fmt.Errorf("chaosd: start cloudlessd: %w", err)
	}
	logFile.Close() // the child holds its own descriptor
	h.proc = cmd
	hctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	for {
		if err := h.Client.Healthz(hctx); err == nil {
			return time.Since(start), nil
		}
		if hctx.Err() != nil {
			tail, _ := os.ReadFile(h.logPath)
			if len(tail) > 4096 {
				tail = tail[len(tail)-4096:]
			}
			return 0, fmt.Errorf("chaosd: daemon never became healthy; log tail:\n%s", tail)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Kill SIGKILLs the daemon — no drain, no checkpoint, exactly what a
// machine crash looks like to the process — and reaps it.
func (h *Harness) Kill() error {
	if h.proc == nil || h.proc.Process == nil {
		return fmt.Errorf("chaosd: no daemon to kill")
	}
	if err := h.proc.Process.Kill(); err != nil {
		return err
	}
	_ = h.proc.Wait()
	h.proc = nil
	return nil
}

// Close tears down the daemon (gracefully if possible) and the sim.
func (h *Harness) Close() {
	if h.proc != nil && h.proc.Process != nil {
		_ = h.proc.Process.Kill()
		_ = h.proc.Wait()
		h.proc = nil
	}
	h.simSrv.Close()
}

// tenantName names the i-th chaos workspace.
func tenantName(i int) string { return fmt.Sprintf("chaos-%d", i) }

// Run executes the full drill: deploy tenants, then Trials rounds of
// submit -> SIGKILL -> restart -> verify.
func Run(dir string, opts Options) (*Result, error) {
	if opts.Trials <= 0 {
		return nil, fmt.Errorf("chaosd: Trials must be positive")
	}
	if opts.Tenants <= 0 {
		opts.Tenants = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	h, err := NewHarness(dir, opts.Seed, opts.Logf)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	logf := h.logf
	if opts.Logf != nil {
		logf = opts.Logf
	}

	ctx := context.Background()
	if _, err := h.Start(ctx); err != nil {
		return nil, err
	}

	// Tenants: a small web tier each (vpc + subnets + sg + nics + vms),
	// deployed once up front so kills land on mutations of real estates.
	res := &Result{Trials: opts.Trials}
	deployed := map[string]bool{}
	var submitted []submittedJob // every job ID ever acknowledged, per tenant
	for i := 0; i < opts.Tenants; i++ {
		name := tenantName(i)
		if _, err := h.Client.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
			Name: name, Sources: workload.WebTier(name, 2, 2),
		}); err != nil {
			return nil, fmt.Errorf("chaosd: create %s: %w", name, err)
		}
		st, err := h.submitAndRecord(ctx, res, &submitted, name, "apply")
		if err != nil {
			return nil, err
		}
		if fin, err := h.Client.WaitJob(ctx, name, st.ID); err != nil || fin.Status != jobs.StatusSucceeded {
			return nil, fmt.Errorf("chaosd: %s initial apply: %v (%s %s)", name, err, fin.Status, fin.Err)
		}
		deployed[name] = true
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	for trial := 0; trial < opts.Trials; trial++ {
		// Pick 1-2 distinct tenants and fire one mutating job each: applies
		// converge the tier, destroys tear it down, so kills land mid-create
		// and mid-delete across trials.
		n := 1 + rng.Intn(2)
		perm := rng.Perm(opts.Tenants)[:n]
		var inflight []server.JobStatus
		var tenants []string
		for _, ti := range perm {
			name := tenantName(ti)
			kind := "apply"
			if deployed[name] && rng.Intn(3) == 0 {
				kind = "destroy"
			}
			st, err := h.submitAndRecord(ctx, res, &submitted, name, kind)
			if err != nil {
				return nil, fmt.Errorf("chaosd trial %d: submit %s %s: %w", trial, name, kind, err)
			}
			inflight = append(inflight, st)
			tenants = append(tenants, name)
			// Deployment state after the dust settles is re-derived below;
			// mark the intent so later trials pick sensible kinds.
			deployed[name] = kind == "apply"
		}

		// Let the first job get claimed, then kill at a random point inside
		// the mutation window (VM provisioning takes ~95ms of sim time).
		first := inflight[0]
		killWasMidFlight := false
		pollCtx, cancelPoll := context.WithTimeout(ctx, 5*time.Second)
		for {
			st, err := h.Client.GetJob(pollCtx, tenants[0], first.ID, 0)
			if err == nil && (st.Status == jobs.StatusRunning || st.Status.Terminal()) {
				killWasMidFlight = st.Status == jobs.StatusRunning
				break
			}
			if pollCtx.Err() != nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		cancelPoll()
		time.Sleep(time.Duration(rng.Intn(120)) * time.Millisecond)

		if err := h.Kill(); err != nil {
			return nil, fmt.Errorf("chaosd trial %d: kill: %w", trial, err)
		}
		res.Kills++
		if killWasMidFlight {
			res.MidFlightKills++
		}

		resumeStart := time.Now()
		if _, err := h.Start(ctx); err != nil {
			return nil, fmt.Errorf("chaosd trial %d: restart: %w", trial, err)
		}
		res.resumes = append(res.resumes, float64(time.Since(resumeStart))/float64(time.Millisecond))

		// Invariant: zero lost jobs. Every ID ever acknowledged — from this
		// trial or any before it — must still resolve over HTTP. (The queue
		// retains the last 256 terminal jobs per tenant; these runs stay far
		// below that.)
		recovered := 0
		for _, sj := range submitted {
			if _, err := h.Client.GetJob(ctx, sj.tenant, sj.id, 0); err != nil {
				res.LostJobs++
				res.failures = append(res.failures, fmt.Sprintf(
					"trial %d: job %s/%s lost after restart: %v", trial, sj.tenant, sj.id, err))
			} else {
				recovered++
			}
		}
		res.JobsRecovered = recovered

		// Invariant: in-flight jobs reach a correct terminal state — the
		// resumed mid-apply/mid-destroy job completes under its original ID.
		for i, st := range inflight {
			wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
			fin, err := h.Client.WaitJob(wctx, tenants[i], st.ID)
			cancel()
			if err != nil || !fin.Status.Terminal() {
				res.StuckJobs++
				res.failures = append(res.failures, fmt.Sprintf(
					"trial %d: job %s/%s stuck after restart: status=%s err=%v",
					trial, tenants[i], st.ID, fin.Status, err))
				continue
			}
			if fin.Status == jobs.StatusFailed {
				res.failures = append(res.failures, fmt.Sprintf(
					"trial %d: resumed job %s/%s failed: %s", trial, tenants[i], st.ID, fin.Err))
			}
		}

		// Converge the touched tenants, then check the cloud-vs-state
		// invariants across ALL tenants.
		for _, name := range tenants {
			st, err := h.submitAndRecord(ctx, res, &submitted, name, "apply")
			if err != nil {
				return nil, fmt.Errorf("chaosd trial %d: converge %s: %w", trial, name, err)
			}
			wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
			fin, err := h.Client.WaitJob(wctx, name, st.ID)
			cancel()
			if err != nil || fin.Status != jobs.StatusSucceeded {
				return nil, fmt.Errorf("chaosd trial %d: converge %s: %v (%s %s)", trial, name, err, fin.Status, fin.Err)
			}
			deployed[name] = true
		}
		if msgs := h.checkInvariants(ctx, opts.Tenants, res); len(msgs) > 0 {
			for _, m := range msgs {
				res.failures = append(res.failures, fmt.Sprintf("trial %d: %s", trial, m))
			}
		}
		if (trial+1)%10 == 0 || trial == opts.Trials-1 {
			logf("chaosd: trial %d/%d: kills=%d mid-flight=%d lost=%d orphans=%d dupes=%d",
				trial+1, opts.Trials, res.Kills, res.MidFlightKills, res.LostJobs, res.Orphans, res.DuplicateCreates)
		}
	}

	if n := len(res.resumes); n > 0 {
		s := append([]float64(nil), res.resumes...)
		for i := 1; i < len(s); i++ { // insertion sort; n is small
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		res.ResumeP50Ms = s[n/2]
		res.ResumeP95Ms = s[n*95/100]
		res.ResumeMaxMs = s[n-1]
	}
	return res, nil
}

type submittedJob struct{ tenant, id string }

// submitAndRecord submits a job and records its acknowledged ID for the
// zero-lost-jobs sweep.
func (h *Harness) submitAndRecord(ctx context.Context, res *Result, submitted *[]submittedJob, tenant, kind string) (server.JobStatus, error) {
	st, err := h.Client.SubmitJob(ctx, tenant, server.JobRequest{Kind: kind})
	if err != nil {
		return st, err
	}
	res.JobsSubmitted++
	*submitted = append(*submitted, submittedJob{tenant: tenant, id: st.ID})
	return st, nil
}

// checkInvariants compares the simulated cloud against the union of every
// tenant's golden state: orphans, duplicate creates, missing resources,
// and plan convergence.
func (h *Harness) checkInvariants(ctx context.Context, tenants int, res *Result) []string {
	var msgs []string
	total := 0
	for i := 0; i < tenants; i++ {
		name := tenantName(i)
		st, err := h.Client.State(ctx, name)
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("%s: fetch state: %v", name, err))
			continue
		}
		total += st.Len()
		for _, addr := range st.Addrs() {
			rs := st.Get(addr)
			if _, err := h.sim.Get(ctx, rs.Type, rs.ID); err != nil {
				res.DuplicateCreates++
				msgs = append(msgs, fmt.Sprintf("%s: state entry %s (%s %s) has no cloud resource",
					name, addr, rs.Type, rs.ID))
			}
		}
		// Convergence: a fresh plan over the converged tenant is a no-op.
		pst, err := h.Client.SubmitJob(ctx, name, server.JobRequest{Kind: "plan"})
		if err == nil {
			wctx, cancel := context.WithTimeout(ctx, time.Minute)
			fin, werr := h.Client.WaitJob(wctx, name, pst.ID)
			cancel()
			if werr == nil && fin.Status == jobs.StatusSucceeded {
				if sum, perr := server.ResultAs[server.PlanSummary](fin); perr == nil && sum.Pending() > 0 {
					res.Diverged++
					msgs = append(msgs, fmt.Sprintf("%s: post-recovery plan has %d pending ops", name, sum.Pending()))
				}
			}
		}
	}
	if extra := h.sim.TotalResources() - total; extra > 0 {
		res.Orphans += extra
		msgs = append(msgs, fmt.Sprintf("cloud holds %d resource(s) no workspace state knows about", extra))
	}
	return msgs
}
