package statedb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cloudless/internal/state"
)

func openWALDir(t *testing.T, dir string) *WALEngine {
	t.Helper()
	e, err := OpenWAL(dir, state.New(), EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWALReplayOnReopen: a cleanly closed log replays every commit.
func TestWALReplayOnReopen(t *testing.T) {
	dir := t.TempDir()
	e := openWALDir(t, dir)
	var last int
	for i := 0; i < 5; i++ {
		s, err := e.Commit(put(fmt.Sprintf("aws_vpc.a%d", i), i))
		if err != nil {
			t.Fatal(err)
		}
		last = s
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re := openWALDir(t, dir)
	defer re.Close()
	if re.Serial() != last {
		t.Fatalf("reopened serial = %d, want %d", re.Serial(), last)
	}
	for i := 0; i < 5; i++ {
		got, err := re.Get(fmt.Sprintf("aws_vpc.a%d", i), 0)
		if err != nil || got == nil || got.Attr("n").AsInt() != i {
			t.Errorf("replayed a%d = %+v, %v", i, got, err)
		}
	}
	// The durable dir wins over whatever seed the caller passes on reopen.
	seeded := state.New()
	seeded.Set(rs("aws_vpc.imposter", 1))
	re.Close()
	re2, err := OpenWAL(dir, seeded, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got, _ := re2.Get("aws_vpc.imposter", 0); got != nil {
		t.Error("seed overrode durable state on reopen")
	}
	if re2.Serial() != last {
		t.Errorf("reopen with seed: serial = %d, want %d", re2.Serial(), last)
	}
}

// TestWALCrashRecoveryTornTail simulates a kill mid-commit: the final log
// record is truncated partway through its payload. Reopen must drop the torn
// tail and recover to the last *durable* commit with zero lost commits.
func TestWALCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	e := openWALDir(t, dir)
	var durable int
	for i := 0; i < 4; i++ {
		s, err := e.Commit(put(fmt.Sprintf("aws_vpc.a%d", i), i))
		if err != nil {
			t.Fatal(err)
		}
		durable = s
	}
	// One more commit, which we'll tear.
	if _, err := e.Commit(put("aws_vpc.torn", 99)); err != nil {
		t.Fatal(err)
	}
	preTearSize := e.LogSize()
	e.Close()

	// Simulate the crash: keep the header of the last record but cut its
	// payload short, as if the process died mid-write.
	logPath := filepath.Join(dir, walLogName)
	if err := os.Truncate(logPath, preTearSize-5); err != nil {
		t.Fatal(err)
	}

	re := openWALDir(t, dir)
	defer re.Close()
	if re.Serial() != durable {
		t.Fatalf("recovered serial = %d, want last durable %d", re.Serial(), durable)
	}
	if got, _ := re.Get("aws_vpc.torn", 0); got != nil {
		t.Error("torn commit visible after recovery")
	}
	for i := 0; i < 4; i++ {
		got, err := re.Get(fmt.Sprintf("aws_vpc.a%d", i), 0)
		if err != nil || got == nil || got.Attr("n").AsInt() != i {
			t.Errorf("lost durable commit a%d: %+v, %v", i, got, err)
		}
	}
	// The engine keeps accepting commits after recovery, and the replaced
	// tail replays on the next reopen.
	s, err := re.Commit(put("aws_vpc.post", 1))
	if err != nil {
		t.Fatal(err)
	}
	if s != durable+1 {
		t.Errorf("post-recovery serial = %d, want %d", s, durable+1)
	}
	re.Close()
	re2 := openWALDir(t, dir)
	defer re2.Close()
	if re2.Serial() != durable+1 {
		t.Errorf("second reopen serial = %d, want %d", re2.Serial(), durable+1)
	}
}

// TestWALCrashRecoveryCorruptRecord: a bit-flip inside a record's payload
// fails its CRC; replay stops there, dropping the corrupt record and
// everything after it.
func TestWALCrashRecoveryCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	e := openWALDir(t, dir)
	s1, err := e.Commit(put("aws_vpc.good", 1))
	if err != nil {
		t.Fatal(err)
	}
	goodSize := e.LogSize()
	if _, err := e.Commit(put("aws_vpc.bad", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(put("aws_vpc.after", 3)); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Flip a byte inside the second record's payload (past its 8-byte
	// frame header) so the CRC check fails.
	logPath := filepath.Join(dir, walLogName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[goodSize+8+4] ^= 0xFF
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openWALDir(t, dir)
	defer re.Close()
	if re.Serial() != s1 {
		t.Fatalf("recovered serial = %d, want %d (first intact commit)", re.Serial(), s1)
	}
	if got, _ := re.Get("aws_vpc.good", 0); got == nil {
		t.Error("intact commit lost")
	}
	if got, _ := re.Get("aws_vpc.after", 0); got != nil {
		t.Error("record after the corrupt one survived replay")
	}
}

// TestWALCompaction: compaction folds the log into snapshot.json, resets the
// log, and the compacted state round-trips a reopen.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	e := openWALDir(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := e.Commit(put(fmt.Sprintf("aws_vpc.a%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	serial := e.Serial()
	if e.LogSize() == 0 {
		t.Fatal("log empty before compaction")
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.LogSize() != 0 {
		t.Errorf("log size after compaction = %d, want 0", e.LogSize())
	}
	snap, err := state.LoadFile(filepath.Join(dir, walSnapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Serial != serial || snap.Len() != 5 {
		t.Errorf("snapshot.json serial=%d len=%d, want %d and 5", snap.Serial, snap.Len(), serial)
	}
	e.Close()
	re := openWALDir(t, dir)
	defer re.Close()
	if re.Serial() != serial {
		t.Errorf("reopen after compaction: serial = %d, want %d", re.Serial(), serial)
	}

	// Automatic compaction: with CompactEvery=4, 10 commits must leave
	// fewer than 4 records in the log.
	adir := t.TempDir()
	ae, err := OpenWAL(adir, state.New(), EngineOptions{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Close()
	var sizes []int64
	for i := 0; i < 10; i++ {
		if _, err := ae.Commit(put("aws_vpc.x", i)); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, ae.LogSize())
	}
	shrank := false
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			shrank = true
		}
	}
	if !shrank {
		t.Errorf("log never auto-compacted over 10 commits: sizes %v", sizes)
	}
}
