package statedb

import (
	"fmt"
	"sync"

	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// DefaultShards is the memory engine's default shard count.
const DefaultShards = 16

// memShard holds one hash partition of the address space. Point reads take
// only the shard lock, so disjoint reads and an in-flight commit to other
// shards never contend.
type memShard struct {
	mu        sync.RWMutex
	resources map[string]*state.ResourceState
	// lastMod records the serial that last wrote or deleted each address,
	// for stale-base conflict detection.
	lastMod map[string]int
}

// MemoryEngine is the extracted in-memory backend: the address space sharded
// by FNV hash with per-shard locks, retaining only the latest committed
// version. Commits and full snapshots serialize on a header lock; point
// reads only touch one shard.
type MemoryEngine struct {
	shards []*memShard
	// hdr guards the serial, the root outputs, and commit/snapshot
	// atomicity across shards.
	hdr     sync.RWMutex
	serial  int
	outputs map[string]eval.Value
}

// NewMemoryEngine builds a memory engine over the seed state (taken as-is,
// including its serial). shards <= 0 selects DefaultShards.
func NewMemoryEngine(seed *state.State, shards int) *MemoryEngine {
	if shards <= 0 {
		shards = DefaultShards
	}
	e := &MemoryEngine{shards: make([]*memShard, shards)}
	for i := range e.shards {
		e.shards[i] = &memShard{resources: map[string]*state.ResourceState{}, lastMod: map[string]int{}}
	}
	if seed == nil {
		seed = state.New()
	}
	e.serial = seed.Serial
	e.outputs = cloneOutputs(seed.Outputs)
	for addr, rs := range seed.Resources {
		sh := e.shard(addr)
		sh.resources[addr] = rs.Clone()
		sh.lastMod[addr] = seed.Serial
	}
	return e
}

func (e *MemoryEngine) shard(addr string) *memShard {
	return e.shards[fnv32(addr)%uint32(len(e.shards))]
}

// fnv32 is FNV-1a over the address, the shard hash.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Name returns the backend name.
func (e *MemoryEngine) Name() string { return BackendMemory }

// Serial returns the newest committed serial.
func (e *MemoryEngine) Serial() int {
	e.hdr.RLock()
	defer e.hdr.RUnlock()
	return e.serial
}

// Get reads one resource at the given serial (0 = latest). The memory engine
// retains only the latest version.
func (e *MemoryEngine) Get(addr string, serial int) (*state.ResourceState, error) {
	if serial != 0 {
		e.hdr.RLock()
		cur := e.serial
		e.hdr.RUnlock()
		if serial != cur {
			return nil, fmt.Errorf("memory engine get %q at serial %d (current %d): %w", addr, serial, cur, ErrNoSuchSerial)
		}
	}
	sh := e.shard(addr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if rs, ok := sh.resources[addr]; ok {
		return rs.Clone(), nil
	}
	return nil, nil
}

// Snapshot materializes the latest state. Historical serials are not
// retained by this backend.
func (e *MemoryEngine) Snapshot(serial int) (*state.State, error) {
	e.hdr.RLock()
	defer e.hdr.RUnlock()
	if serial != 0 && serial != e.serial {
		return nil, fmt.Errorf("memory engine snapshot at serial %d (current %d): %w", serial, e.serial, ErrNoSuchSerial)
	}
	s := state.New()
	s.Serial = e.serial
	s.Outputs = cloneOutputs(e.outputs)
	for _, sh := range e.shards {
		sh.mu.RLock()
		for addr, rs := range sh.resources {
			s.Resources[addr] = rs.Clone()
		}
		sh.mu.RUnlock()
	}
	return s, nil
}

// Commit atomically applies a batch at the next serial.
func (e *MemoryEngine) Commit(b *Batch) (int, error) {
	e.hdr.Lock()
	defer e.hdr.Unlock()
	return e.commitLocked(b)
}

// commitLocked applies a batch with the header lock already held; the WAL
// engine uses the split so it can order the durable append between the
// conflict check and the in-memory apply.
func (e *MemoryEngine) commitLocked(b *Batch) (int, error) {
	if err := e.conflictLocked(b); err != nil {
		return 0, err
	}
	serial := e.serial + 1
	for addr, rs := range b.Writes {
		cp := rs.Clone()
		cp.Addr = addr
		sh := e.shard(addr)
		sh.mu.Lock()
		sh.resources[addr] = cp
		sh.lastMod[addr] = serial
		sh.mu.Unlock()
	}
	for addr := range b.Deletes {
		sh := e.shard(addr)
		sh.mu.Lock()
		delete(sh.resources, addr)
		sh.lastMod[addr] = serial
		sh.mu.Unlock()
	}
	if b.SetOutputs {
		e.outputs = cloneOutputs(b.Outputs)
	}
	e.serial = serial
	return serial, nil
}

// conflictLocked rejects batches whose base snapshot predates a commit to
// any touched address. Caller holds hdr.
func (e *MemoryEngine) conflictLocked(b *Batch) error {
	if b.Base < 0 {
		return nil
	}
	for _, addr := range b.addrs() {
		sh := e.shard(addr)
		sh.mu.RLock()
		mod := sh.lastMod[addr]
		sh.mu.RUnlock()
		if mod > b.Base {
			return &StaleBaseError{Addr: addr, Base: b.Base, Committed: mod}
		}
	}
	return nil
}

// Close is a no-op for the memory engine.
func (e *MemoryEngine) Close() error { return nil }

func cloneOutputs(in map[string]eval.Value) map[string]eval.Value {
	out := make(map[string]eval.Value, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
