package statedb

import (
	"context"
	"errors"
	"testing"
	"time"

	"cloudless/internal/telemetry"
)

func recorderCtx() (context.Context, *telemetry.Recorder) {
	rec := telemetry.NewRecorder(telemetry.Config{})
	return telemetry.WithRecorder(context.Background(), rec), rec
}

func TestLockWaitHistogramRecorded(t *testing.T) {
	lm := NewLockManager(ResourceLock)
	ctx, rec := recorderCtx()

	if err := lm.Acquire(ctx, 1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- lm.Acquire(ctx, 2, []string{"a"})
	}()
	time.Sleep(40 * time.Millisecond)
	lm.Release(1, []string{"a"})
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	var hist *telemetry.MetricPoint
	for _, mp := range rec.Metrics().Snapshot() {
		if mp.Name == "statedb.lock_wait_ms{mode=per-resource}" {
			m := mp
			hist = &m
		}
	}
	if hist == nil {
		t.Fatal("lock-wait histogram not recorded")
	}
	if hist.Count != 2 {
		t.Fatalf("lock-wait observations = %d, want 2 (one per Acquire)", hist.Count)
	}
	// The blocked acquire waited tens of milliseconds; the uncontended one
	// did not. Both land in the same distribution.
	if hist.Max < 30 {
		t.Fatalf("max lock wait %.2fms, expected the blocked acquire's ~40ms", hist.Max)
	}
	if got := rec.Metrics().CounterValue("statedb.lock_acquires", "mode", "per-resource"); got != 2 {
		t.Fatalf("statedb.lock_acquires = %d, want 2", got)
	}
}

func TestDeadlockAbortCounter(t *testing.T) {
	lm := NewLockManager(ResourceLock)
	ctx, rec := recorderCtx()

	// txn 1 holds a, txn 2 holds b; txn 1 blocks on b, then txn 2 closing
	// the cycle on a must get ErrDeadlock.
	if err := lm.Acquire(ctx, 1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 2, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- lm.Acquire(ctx, 1, []string{"b"}) }()
	time.Sleep(20 * time.Millisecond) // let txn 1 enter the waiter queue

	err := lm.Acquire(ctx, 2, []string{"a"})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	if got := rec.Metrics().CounterValue("statedb.deadlock_aborts"); got != 1 {
		t.Fatalf("statedb.deadlock_aborts = %d, want 1", got)
	}

	// Unwind: txn 2 releases b, so txn 1's blocked acquire completes.
	lm.Release(2, []string{"b"})
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}
