package statedb

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cloudless/internal/eval"
	"cloudless/internal/state"
)

func rs(addr string, n int) *state.ResourceState {
	return &state.ResourceState{
		Addr: addr, Type: "aws_vpc", ID: "id-" + addr,
		Attrs: map[string]eval.Value{"n": eval.Int(n)},
	}
}

func TestTxnBasicCommit(t *testing.T) {
	db := Open(nil, ResourceLock)
	txn := db.Begin("create")
	if err := txn.Lock(context.Background(), "aws_vpc.a"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Put(rs("aws_vpc.a", 1)); err != nil {
		t.Fatal(err)
	}
	// Not visible before commit.
	if db.Snapshot().Get("aws_vpc.a") != nil {
		t.Error("uncommitted write visible")
	}
	serial, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if serial <= 0 {
		t.Errorf("serial = %d", serial)
	}
	if db.Snapshot().Get("aws_vpc.a") == nil {
		t.Error("committed write not visible")
	}
	if db.History().Len() < 2 {
		t.Error("commit did not snapshot history")
	}
}

func TestTxnAbortDiscards(t *testing.T) {
	db := Open(nil, ResourceLock)
	txn := db.Begin("doomed")
	_ = txn.Lock(context.Background(), "aws_vpc.a")
	_ = txn.Put(rs("aws_vpc.a", 1))
	txn.Abort()
	if db.Snapshot().Get("aws_vpc.a") != nil {
		t.Error("aborted write visible")
	}
	if db.Locks().Holder("aws_vpc.a") != 0 {
		t.Error("abort did not release locks")
	}
	if db.AbortCount() != 1 {
		t.Errorf("aborts = %d", db.AbortCount())
	}
}

func TestAccessWithoutLockRejected(t *testing.T) {
	db := Open(nil, ResourceLock)
	txn := db.Begin("rogue")
	if err := txn.Put(rs("aws_vpc.a", 1)); err == nil {
		t.Error("write without lock accepted")
	}
	if _, err := txn.Get("aws_vpc.a"); err == nil {
		t.Error("read without lock accepted")
	}
	txn.Abort()
}

func TestTxnReadYourWrites(t *testing.T) {
	db := Open(nil, ResourceLock)
	txn := db.Begin("t")
	_ = txn.Lock(context.Background(), "aws_vpc.a")
	_ = txn.Put(rs("aws_vpc.a", 7))
	got, err := txn.Get("aws_vpc.a")
	if err != nil || got == nil || got.Attr("n").AsInt() != 7 {
		t.Fatalf("read-your-writes: %+v, %v", got, err)
	}
	_ = txn.Delete("aws_vpc.a")
	got, _ = txn.Get("aws_vpc.a")
	if got != nil {
		t.Error("delete not visible inside txn")
	}
	txn.Abort()
}

func TestPerResourceLocksAllowDisjointParallelism(t *testing.T) {
	db := Open(nil, ResourceLock)
	t1 := db.Begin("team1")
	t2 := db.Begin("team2")
	if err := t1.Lock(context.Background(), "aws_vpc.a"); err != nil {
		t.Fatal(err)
	}
	// Disjoint address: must not block.
	done := make(chan error, 1)
	go func() { done <- t2.Lock(context.Background(), "aws_vpc.b") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint lock blocked under per-resource mode")
	}
	t1.Abort()
	t2.Abort()
}

func TestGlobalLockSerializesDisjointUpdates(t *testing.T) {
	db := Open(nil, GlobalLock)
	t1 := db.Begin("team1")
	t2 := db.Begin("team2")
	if err := t1.Lock(context.Background(), "aws_vpc.a"); err != nil {
		t.Fatal(err)
	}
	if t2.TryLock("aws_vpc.b") {
		t.Fatal("global lock allowed a second holder on a disjoint address")
	}
	t1.Abort()
	if !t2.TryLock("aws_vpc.b") {
		t.Fatal("lock not released after abort")
	}
	t2.Abort()
}

func TestConflictingLockBlocksThenProceeds(t *testing.T) {
	db := Open(nil, ResourceLock)
	t1 := db.Begin("t1")
	_ = t1.Lock(context.Background(), "aws_vpc.x")
	t2 := db.Begin("t2")
	acquired := make(chan struct{})
	go func() {
		_ = t2.Lock(context.Background(), "aws_vpc.x")
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("conflicting lock acquired while held")
	case <-time.After(50 * time.Millisecond):
	}
	t1.Abort()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woken")
	}
	t2.Abort()
	stats := db.Locks().Stats()
	if stats.Contended == 0 {
		t.Error("contention not recorded")
	}
}

func TestLockContextCancellation(t *testing.T) {
	db := Open(nil, ResourceLock)
	t1 := db.Begin("t1")
	_ = t1.Lock(context.Background(), "aws_vpc.x")
	t2 := db.Begin("t2")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := t2.Lock(ctx, "aws_vpc.x"); err == nil {
		t.Fatal("lock acquired despite timeout")
	}
	t1.Abort()
	// The canceled waiter must not corrupt the queue.
	t3 := db.Begin("t3")
	if err := t3.Lock(context.Background(), "aws_vpc.x"); err != nil {
		t.Fatal(err)
	}
	t3.Abort()
	t2.Abort()
}

func TestOrderedAcquisitionNoDeadlock(t *testing.T) {
	// Two transactions locking the same pair in opposite argument order
	// must not deadlock thanks to sorted acquisition.
	db := Open(nil, ResourceLock)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			txn := db.Begin("fwd")
			if err := txn.Lock(context.Background(), "aws_vpc.a", "aws_vpc.b"); err != nil {
				t.Error(err)
			}
			txn.Abort()
		}()
		go func() {
			defer wg.Done()
			txn := db.Begin("rev")
			if err := txn.Lock(context.Background(), "aws_vpc.b", "aws_vpc.a"); err != nil {
				t.Error(err)
			}
			txn.Abort()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: ordered acquisition failed")
	}
}

// TestNoLostUpdates is the E5 isolation property: N concurrent transactions
// each increment a counter attribute under its lock; the final value must be
// exactly N under both lock modes.
func TestNoLostUpdates(t *testing.T) {
	for _, mode := range []LockMode{GlobalLock, ResourceLock} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			initial := state.New()
			initial.Set(rs("aws_vpc.ctr", 0))
			db := Open(initial, mode)
			const n = 64
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					txn := db.Begin("inc")
					if err := txn.Lock(context.Background(), "aws_vpc.ctr"); err != nil {
						t.Error(err)
						return
					}
					cur, err := txn.Get("aws_vpc.ctr")
					if err != nil {
						t.Error(err)
						txn.Abort()
						return
					}
					cur.Attrs["n"] = eval.Int(cur.Attr("n").AsInt() + 1)
					if err := txn.Put(cur); err != nil {
						t.Error(err)
						txn.Abort()
						return
					}
					if _, err := txn.Commit(); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
			final := db.Snapshot().Get("aws_vpc.ctr").Attr("n").AsInt()
			if final != n {
				t.Errorf("lost updates: final = %d, want %d", final, n)
			}
		})
	}
}

// Property: txn writes never leak before commit, for arbitrary interleaving
// of key sets.
func TestIsolationQuick(t *testing.T) {
	prop := func(keysRaw []uint8) bool {
		if len(keysRaw) == 0 {
			return true
		}
		if len(keysRaw) > 12 {
			keysRaw = keysRaw[:12]
		}
		db := Open(nil, ResourceLock)
		txn := db.Begin("q")
		for _, k := range keysRaw {
			addr := fmt.Sprintf("aws_vpc.k%d", k%8)
			if err := txn.Lock(context.Background(), addr); err != nil {
				return false
			}
			if err := txn.Put(rs(addr, int(k))); err != nil {
				return false
			}
		}
		if db.Snapshot().Len() != 0 {
			return false // leaked before commit
		}
		if _, err := txn.Commit(); err != nil {
			return false
		}
		snap := db.Snapshot()
		for _, k := range keysRaw {
			if snap.Get(fmt.Sprintf("aws_vpc.k%d", k%8)) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDoubleFinishIsNoop pins the idempotent-finish contract: a second
// Commit is a no-op returning the original serial, Abort after Commit (and
// a second Abort) change nothing, and none of them double-release locks or
// double-count outcomes.
func TestDoubleFinishIsNoop(t *testing.T) {
	db := Open(nil, ResourceLock)
	txn := db.Begin("x")
	_ = txn.Lock(context.Background(), "aws_vpc.a")
	_ = txn.Put(rs("aws_vpc.a", 1))
	serial, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// A bystander takes the released lock; the finished txn's repeated
	// Commit/Abort must not yank it away (the double-unlock hazard).
	other := db.Begin("bystander")
	if !other.TryLock("aws_vpc.a") {
		t.Fatal("lock not released by commit")
	}
	again, err := txn.Commit()
	if err != nil || again != serial {
		t.Errorf("repeated Commit = (%d, %v), want (%d, nil)", again, err, serial)
	}
	txn.Abort()
	txn.Abort()
	if db.Locks().Holder("aws_vpc.a") != other.ID() {
		t.Error("double finish released a lock the txn no longer owned")
	}
	other.Abort()
	if got := db.CommitCount(); got != 1 {
		t.Errorf("commits = %d, want 1", got)
	}
	if got := db.AbortCount(); got != 1 {
		t.Errorf("aborts = %d, want 1 (only the bystander)", got)
	}
	if err := txn.Lock(context.Background(), "aws_vpc.b"); err == nil {
		t.Error("lock after commit accepted")
	}
	if db.Serial() != serial {
		t.Errorf("serial moved to %d after no-op finishes", db.Serial())
	}
}

// TestAbortedTxnCommitRejected: Commit after Abort must fail rather than
// silently publish discarded writes.
func TestAbortedTxnCommitRejected(t *testing.T) {
	db := Open(nil, ResourceLock)
	txn := db.Begin("x")
	_ = txn.Lock(context.Background(), "aws_vpc.a")
	_ = txn.Put(rs("aws_vpc.a", 1))
	txn.Abort()
	if _, err := txn.Commit(); err == nil {
		t.Error("commit after abort accepted")
	}
	if db.Snapshot().Get("aws_vpc.a") != nil {
		t.Error("aborted write published")
	}
}

// TestConcurrentDoubleFinishRace hammers Commit/Abort from racing
// goroutines: exactly one outcome must win, with no panic and no lock-state
// corruption (run under -race).
func TestConcurrentDoubleFinishRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		db := Open(nil, ResourceLock)
		txn := db.Begin("race")
		_ = txn.Lock(context.Background(), "aws_vpc.a")
		_ = txn.Put(rs("aws_vpc.a", 1))
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); _, _ = txn.Commit() }()
		go func() { defer wg.Done(); txn.Abort() }()
		wg.Wait()
		if db.Locks().Holder("aws_vpc.a") != 0 {
			t.Fatal("lock leaked by racing finish")
		}
		if db.CommitCount()+db.AbortCount() != 1 {
			t.Fatalf("outcomes = %d commits + %d aborts, want exactly 1 total",
				db.CommitCount(), db.AbortCount())
		}
	}
}

func TestHistoryGrowsPerCommit(t *testing.T) {
	db := Open(nil, ResourceLock)
	before := db.History().Len()
	for i := 0; i < 3; i++ {
		txn := db.Begin(fmt.Sprintf("c%d", i))
		_ = txn.Lock(context.Background(), "aws_vpc.a")
		_ = txn.Put(rs("aws_vpc.a", i))
		_, _ = txn.Commit()
	}
	if db.History().Len() != before+3 {
		t.Errorf("history len = %d, want %d", db.History().Len(), before+3)
	}
}
