package statedb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"cloudless/internal/state"
	"cloudless/internal/wal"
)

// WAL file layout inside the engine directory:
//
//	snapshot.json — full state at the last compaction (state JSON format)
//	wal.log       — commits since, each a CRC-framed JSON record in the
//	                shared internal/wal frame format (also used by the
//	                apply journal)
//
// Replay on Open applies every intact record after the snapshot; a torn
// tail (short frame or checksum mismatch, the crash-mid-commit case) is
// dropped and the log truncated back to the last durable commit.
const (
	walLogName      = "wal.log"
	walSnapshotName = "snapshot.json"
	// DefaultCompactEvery is the commit count between snapshot compactions.
	DefaultCompactEvery = 64
)

// walRecord is the JSON payload of one framed commit.
type walRecord struct {
	Serial  int      `json:"serial"`
	Desc    string   `json:"desc,omitempty"`
	Deletes []string `json:"deletes,omitempty"`
	// Writes carries the batch's writes (and, when SetOutputs, the new
	// outputs) re-using the versioned state serialization.
	Writes     json.RawMessage `json:"writes,omitempty"`
	SetOutputs bool            `json:"set_outputs,omitempty"`
}

// WALEngine is the durable backend: a sharded memory engine for reads, an
// append-only fsynced commit log for durability, and periodic compaction to
// the snapshot format persist.go already uses.
type WALEngine struct {
	mu  sync.Mutex
	mem *MemoryEngine
	dir string
	f   *os.File
	// commitsSinceCompact triggers compaction every compactEvery commits.
	commitsSinceCompact int
	compactEvery        int
	closed              bool
}

// OpenWAL opens (or creates) a durable engine in dir. When the directory
// already holds a snapshot or log, the durable contents win and seed is
// ignored; otherwise the seed becomes the initial durable snapshot.
func OpenWAL(dir string, seed *state.State, opts EngineOptions) (*WALEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statedb: create wal dir: %w", err)
	}
	compactEvery := opts.CompactEvery
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}
	e := &WALEngine{dir: dir, compactEvery: compactEvery}

	base, haveDurable, err := loadWALSnapshot(dir)
	if err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, walLogName)
	if st, err := os.Stat(logPath); err == nil && st.Size() > 0 {
		haveDurable = true
	}
	if !haveDurable {
		if seed == nil {
			seed = state.New()
		}
		base = seed.Clone()
		// Make the seed durable immediately so a reopen before the first
		// commit recovers the same serial.
		if err := writeWALSnapshot(dir, base); err != nil {
			return nil, err
		}
	}
	e.mem = NewMemoryEngine(base, opts.Shards)

	if err := e.replay(logPath); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("statedb: open wal log: %w", err)
	}
	e.f = f
	return e, nil
}

// loadWALSnapshot reads the compacted snapshot, reporting whether one
// existed.
func loadWALSnapshot(dir string) (*state.State, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, walSnapshotName))
	if os.IsNotExist(err) {
		return state.New(), false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("statedb: read wal snapshot: %w", err)
	}
	s, err := state.Decode(data)
	if err != nil {
		return nil, false, fmt.Errorf("statedb: decode wal snapshot: %w", err)
	}
	return s, true, nil
}

// writeWALSnapshot persists a full state atomically (write + rename).
func writeWALSnapshot(dir string, s *state.State) error {
	return s.SaveFile(filepath.Join(dir, walSnapshotName))
}

// replay applies every intact log record with a serial above the snapshot's,
// truncating the file at the first torn or corrupt frame.
func (e *WALEngine) replay(logPath string) error {
	data, err := os.ReadFile(logPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("statedb: read wal log: %w", err)
	}
	durable := 0 // byte offset of the last fully-applied record
	off := 0
	for {
		payload, next, ok := wal.Next(data, off)
		if !ok {
			break
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A CRC-intact frame with an undecodable payload is treated
			// like a torn tail: recover to the last good commit.
			break
		}
		if rec.Serial > e.mem.Serial() {
			b, err := rec.toBatch()
			if err != nil {
				break
			}
			if _, err := e.mem.Commit(b); err != nil {
				return fmt.Errorf("statedb: replay wal serial %d: %w", rec.Serial, err)
			}
		}
		durable = next
		off = next
	}
	if durable < len(data) {
		if err := os.Truncate(logPath, int64(durable)); err != nil {
			return fmt.Errorf("statedb: truncate torn wal tail: %w", err)
		}
	}
	return nil
}

// toBatch converts a replayed record back into an engine batch.
func (r *walRecord) toBatch() (*Batch, error) {
	b := &Batch{
		Base:    BaseUnchecked,
		Desc:    r.Desc,
		Writes:  map[string]*state.ResourceState{},
		Deletes: map[string]bool{},
	}
	if len(r.Writes) > 0 {
		ws, err := state.Decode(r.Writes)
		if err != nil {
			return nil, err
		}
		for addr, rs := range ws.Resources {
			rs.Addr = addr
			b.Writes[addr] = rs
		}
		if r.SetOutputs {
			b.Outputs = ws.Outputs
			b.SetOutputs = true
		}
	}
	for _, addr := range r.Deletes {
		b.Deletes[addr] = true
	}
	return b, nil
}

// encodeRecord frames one commit for the log.
func encodeRecord(b *Batch, serial int) ([]byte, error) {
	rec := walRecord{Serial: serial, Desc: b.Desc, SetOutputs: b.SetOutputs}
	for addr := range b.Deletes {
		rec.Deletes = append(rec.Deletes, addr)
	}
	ws := state.New()
	ws.Serial = serial
	for addr, rs := range b.Writes {
		cp := rs.Clone()
		cp.Addr = addr
		ws.Resources[addr] = cp
	}
	if b.SetOutputs {
		ws.Outputs = b.Outputs
	}
	raw, err := ws.Encode()
	if err != nil {
		return nil, err
	}
	// Encode emits indented JSON; compact it so frames stay small.
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, err
	}
	rec.Writes = buf.Bytes()
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return wal.Encode(payload), nil
}

// Name returns the backend name.
func (e *WALEngine) Name() string { return BackendWAL }

// Serial returns the newest durable serial.
func (e *WALEngine) Serial() int { return e.mem.Serial() }

// Get reads one resource at the given serial (0 = latest).
func (e *WALEngine) Get(addr string, serial int) (*state.ResourceState, error) {
	return e.mem.Get(addr, serial)
}

// Snapshot materializes the latest state.
func (e *WALEngine) Snapshot(serial int) (*state.State, error) {
	return e.mem.Snapshot(serial)
}

// Commit appends the batch to the log (fsynced) and then applies it to the
// in-memory index; a crash between the two replays the record on reopen.
func (e *WALEngine) Commit(b *Batch) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("statedb: wal engine is closed")
	}
	// Conflict-check first so rejected batches never reach the durable log.
	e.mem.hdr.Lock()
	if err := e.mem.conflictLocked(b); err != nil {
		e.mem.hdr.Unlock()
		return 0, err
	}
	serial := e.mem.serial + 1
	frame, err := encodeRecord(b, serial)
	if err != nil {
		e.mem.hdr.Unlock()
		return 0, fmt.Errorf("statedb: encode wal record: %w", err)
	}
	if _, err := e.f.Write(frame); err != nil {
		e.mem.hdr.Unlock()
		return 0, fmt.Errorf("statedb: append wal record: %w", err)
	}
	if err := e.f.Sync(); err != nil {
		e.mem.hdr.Unlock()
		return 0, fmt.Errorf("statedb: sync wal: %w", err)
	}
	unchecked := *b
	unchecked.Base = BaseUnchecked // already checked above
	if _, err := e.mem.commitLocked(&unchecked); err != nil {
		e.mem.hdr.Unlock()
		return 0, err
	}
	e.mem.hdr.Unlock()

	e.commitsSinceCompact++
	if e.commitsSinceCompact >= e.compactEvery {
		if err := e.compactLocked(); err != nil {
			return 0, err
		}
	}
	return serial, nil
}

// Compact forces a snapshot compaction: the full state is written to
// snapshot.json and the log reset.
func (e *WALEngine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactLocked()
}

func (e *WALEngine) compactLocked() error {
	snap, err := e.mem.Snapshot(0)
	if err != nil {
		return err
	}
	if err := writeWALSnapshot(e.dir, snap); err != nil {
		return fmt.Errorf("statedb: compact wal: %w", err)
	}
	if err := e.f.Truncate(0); err != nil {
		return fmt.Errorf("statedb: reset wal log: %w", err)
	}
	if _, err := e.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("statedb: rewind wal log: %w", err)
	}
	e.commitsSinceCompact = 0
	return nil
}

// LogSize reports the current log length in bytes (for tests and the SD
// experiment).
func (e *WALEngine) LogSize() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, err := os.Stat(filepath.Join(e.dir, walLogName))
	if err != nil {
		return 0
	}
	return st.Size()
}

// Close syncs and releases the log file.
func (e *WALEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if err := e.f.Sync(); err != nil {
		e.f.Close()
		return err
	}
	return e.f.Close()
}
