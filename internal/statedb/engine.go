package statedb

import (
	"errors"
	"fmt"

	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// Backend names accepted by NewEngine and the CLIs' -state-backend flag.
const (
	// BackendMemory is the default: a sharded in-memory map retaining only
	// the latest committed version.
	BackendMemory = "memory"
	// BackendMVCC keeps copy-on-write versions per commit serial, so readers
	// pinned at an older serial stay consistent while commits land.
	BackendMVCC = "mvcc"
	// BackendWAL layers an append-only commit log plus periodic snapshot
	// compaction over the memory engine, for crash-recoverable durability.
	BackendWAL = "wal"
)

// BaseUnchecked as a Batch.Base disables stale-base conflict detection.
const BaseUnchecked = -1

// Batch is one atomic commit against an Engine: the staged writes, deletes
// and (optionally) replaced root outputs of a transaction, plus the serial
// its reads were pinned at.
type Batch struct {
	// Base is the serial the writer's reads were pinned at. Engines reject
	// the batch with *StaleBaseError when any touched address was modified
	// by a commit after Base. BaseUnchecked disables the check.
	Base int
	// Desc describes the commit (mirrors the transaction description).
	Desc string
	// Writes maps address to the new resource state.
	Writes map[string]*state.ResourceState
	// Deletes lists addresses to remove.
	Deletes map[string]bool
	// Outputs, when SetOutputs is true, replaces the root outputs.
	Outputs    map[string]eval.Value
	SetOutputs bool
}

// addrs returns every address the batch touches.
func (b *Batch) addrs() []string {
	out := make([]string, 0, len(b.Writes)+len(b.Deletes))
	for a := range b.Writes {
		out = append(out, a)
	}
	for a := range b.Deletes {
		if _, dup := b.Writes[a]; !dup {
			out = append(out, a)
		}
	}
	return out
}

// StaleBaseError reports an optimistic-concurrency conflict: a commit's base
// snapshot predates another commit that touched one of the same addresses.
// The writer must re-plan against the current serial and retry.
type StaleBaseError struct {
	// Addr is the conflicting address.
	Addr string
	// Base is the serial the rejected batch was pinned at.
	Base int
	// Committed is the serial of the later commit that modified Addr.
	Committed int
}

// Error implements error.
func (e *StaleBaseError) Error() string {
	return fmt.Sprintf("statedb: stale base serial %d: %q was modified at serial %d; re-plan and retry",
		e.Base, e.Addr, e.Committed)
}

// ErrNoSuchSerial is returned by Engine.Snapshot/Get for a serial the engine
// does not retain (the memory and WAL engines keep only the latest version;
// the MVCC engine may have compacted it away).
var ErrNoSuchSerial = errors.New("statedb: no version retained at the requested serial")

// Engine is a pluggable storage backend for the golden-state database: a
// versioned store of resource states keyed by address, committed atomically
// at monotonically increasing serials. Implementations must be safe for
// concurrent use; locking and transaction bookkeeping live above the engine
// in DB/Txn.
type Engine interface {
	// Name returns the backend name (memory, mvcc, wal).
	Name() string
	// Serial returns the newest committed serial.
	Serial() int
	// Get reads one resource at the given serial (0 = latest). The returned
	// state is a private copy. A missing address yields (nil, nil); an
	// unretained serial yields ErrNoSuchSerial.
	Get(addr string, serial int) (*state.ResourceState, error)
	// Snapshot materializes a consistent deep-copy state at the given serial
	// (0 = latest). The caller owns the result.
	Snapshot(serial int) (*state.State, error)
	// Commit atomically applies a batch at the next serial and returns it.
	// A batch with Base >= 0 fails with *StaleBaseError when any touched
	// address was modified after Base.
	Commit(b *Batch) (int, error)
	// Close flushes and releases backend resources (file handles, etc.).
	Close() error
}

// EngineOptions tune NewEngine.
type EngineOptions struct {
	// Shards is the shard count for the memory and WAL engines
	// (default DefaultShards).
	Shards int
	// Dir is the durable directory for the WAL engine (required for it).
	Dir string
	// CompactEvery is the WAL engine's commit count between snapshot
	// compactions (default 64).
	CompactEvery int
	// Retain is the MVCC engine's version-retention horizon: versions more
	// than Retain serials behind the head become eligible for automatic
	// compaction. 0 keeps everything.
	Retain int
}

// NewEngine builds a backend by name, seeded with the initial state. For a
// fresh store the seed serial is bumped by one so the first committed
// snapshot aligns with the history's serial numbering (matching Open); a WAL
// directory that already holds durable data wins over the seed.
func NewEngine(backend string, initial *state.State, opts EngineOptions) (Engine, error) {
	if initial == nil {
		initial = state.New()
	}
	seed := initial.Clone()
	seed.Serial++
	switch backend {
	case BackendMemory, "":
		return NewMemoryEngine(seed, opts.Shards), nil
	case BackendMVCC:
		return NewMVCCEngine(seed, opts.Retain), nil
	case BackendWAL:
		if opts.Dir == "" {
			return nil, fmt.Errorf("statedb: the %s backend requires EngineOptions.Dir", BackendWAL)
		}
		return OpenWAL(opts.Dir, seed, opts)
	default:
		return nil, fmt.Errorf("statedb: unknown state backend %q (want %s, %s, or %s)",
			backend, BackendMemory, BackendMVCC, BackendWAL)
	}
}

// Backends lists the available backend names.
func Backends() []string { return []string{BackendMemory, BackendMVCC, BackendWAL} }
