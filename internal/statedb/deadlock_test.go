package statedb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDeadlockDetected: two transactions acquire locks incrementally in
// opposite order; one of them must receive ErrDeadlock instead of hanging.
func TestDeadlockDetected(t *testing.T) {
	db := Open(nil, ResourceLock)
	t1 := db.Begin("t1")
	t2 := db.Begin("t2")
	ctx := context.Background()

	if err := t1.Lock(ctx, "aws_vpc.a"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock(ctx, "aws_vpc.b"); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		who int
		err error
	}
	results := make(chan outcome, 2)
	go func() { results <- outcome{0, t1.Lock(ctx, "aws_vpc.b")} }()
	// Give t1 a moment to block so the waits-for edge exists.
	time.Sleep(20 * time.Millisecond)
	go func() { results <- outcome{1, t2.Lock(ctx, "aws_vpc.a")} }()

	txns := []*Txn{t1, t2}
	var deadlocked, succeeded int
	for i := 0; i < 2; i++ {
		select {
		case o := <-results:
			switch {
			case o.err == nil:
				succeeded++
			case errors.Is(o.err, ErrDeadlock):
				deadlocked++
				// The victim's goroutine is finished; aborting its txn is
				// now safe and releases the lock the survivor waits on.
				txns[o.who].Abort()
			default:
				t.Fatalf("unexpected error: %v", o.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock not detected; locks hung")
		}
	}
	if deadlocked < 1 || succeeded < 1 {
		t.Fatalf("deadlocked=%d succeeded=%d; expected one victim and one survivor", deadlocked, succeeded)
	}
	t1.Abort()
	t2.Abort()
}

// TestDeadlockVictimRetrySucceeds shows the abort-and-retry discipline:
// after the victim aborts and retries, both transactions complete.
func TestDeadlockVictimRetrySucceeds(t *testing.T) {
	db := Open(nil, ResourceLock)
	ctx := context.Background()

	runTeam := func(id int, first, second string) error {
		for attempt := 0; attempt < 25; attempt++ {
			txn := db.Begin("team")
			if err := txn.Lock(ctx, first); err != nil {
				txn.Abort()
				if errors.Is(err, ErrDeadlock) {
					continue
				}
				return err
			}
			time.Sleep(time.Millisecond)
			if err := txn.Lock(ctx, second); err != nil {
				txn.Abort()
				if errors.Is(err, ErrDeadlock) {
					// Back off asymmetrically so the retries do not
					// re-collide forever (livelock avoidance).
					time.Sleep(time.Duration((attempt+1)*(id+1)) * time.Millisecond)
					continue
				}
				return err
			}
			_, err := txn.Commit()
			return err
		}
		return errors.New("never succeeded after retries")
	}

	var wg sync.WaitGroup
	results := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); results[0] = runTeam(0, "aws_vpc.x", "aws_vpc.y") }()
	go func() { defer wg.Done(); results[1] = runTeam(1, "aws_vpc.y", "aws_vpc.x") }()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("retry discipline hung")
	}
	for i, err := range results {
		if err != nil {
			t.Errorf("team %d: %s", i, err)
		}
	}
}

// TestNoFalseDeadlock: plain contention (no cycle) must never report
// ErrDeadlock.
func TestNoFalseDeadlock(t *testing.T) {
	db := Open(nil, ResourceLock)
	ctx := context.Background()
	t1 := db.Begin("holder")
	if err := t1.Lock(ctx, "aws_vpc.z"); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	t2 := db.Begin("waiter")
	go func() { got <- t2.Lock(ctx, "aws_vpc.z") }()
	time.Sleep(30 * time.Millisecond)
	t1.Abort() // release; waiter should acquire
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("plain contention errored: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung")
	}
	t2.Abort()
}

// TestThreeWayDeadlock: a cycle through three transactions is detected.
func TestThreeWayDeadlock(t *testing.T) {
	db := Open(nil, ResourceLock)
	ctx := context.Background()
	txns := []*Txn{db.Begin("a"), db.Begin("b"), db.Begin("c")}
	keys := []string{"r.a", "r.b", "r.c"}
	for i, txn := range txns {
		if err := txn.Lock(ctx, keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	type outcome struct {
		who int
		err error
	}
	results := make(chan outcome, 3)
	for i, txn := range txns {
		i, txn := i, txn
		go func() {
			// Stagger so the waits-for chain builds up.
			time.Sleep(time.Duration(i*20) * time.Millisecond)
			results <- outcome{i, txn.Lock(ctx, keys[(i+1)%3])}
		}()
	}
	sawDeadlock := false
	for i := 0; i < 3; i++ {
		select {
		case o := <-results:
			if errors.Is(o.err, ErrDeadlock) {
				sawDeadlock = true
			}
			// Each transaction's goroutine is finished once its outcome
			// arrives; aborting it (victim or survivor) releases its locks
			// so the remaining waiters can make progress.
			txns[o.who].Abort()
		case <-time.After(5 * time.Second):
			t.Fatal("three-way deadlock hung")
		}
	}
	if !sawDeadlock {
		t.Fatal("no transaction reported ErrDeadlock")
	}
	for _, txn := range txns {
		txn.Abort()
	}
}
