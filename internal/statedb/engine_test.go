package statedb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// backendsUnderTest honors the CI matrix: with CLOUDLESS_STATE_BACKEND set,
// only that backend runs; otherwise every backend runs.
func backendsUnderTest() []string {
	if b := os.Getenv("CLOUDLESS_STATE_BACKEND"); b != "" {
		return []string{b}
	}
	return Backends()
}

// newTestEngine builds a backend over the seed, with a temp dir for wal.
func newTestEngine(t *testing.T, backend string, seed *state.State) Engine {
	t.Helper()
	opts := EngineOptions{}
	if backend == BackendWAL {
		opts.Dir = t.TempDir()
	}
	eng, err := NewEngine(backend, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func put(addr string, n int) *Batch {
	return &Batch{
		Base:   BaseUnchecked,
		Desc:   "put " + addr,
		Writes: map[string]*state.ResourceState{addr: rs(addr, n)},
	}
}

// TestEngineConformance runs the shared backend contract over every engine:
// commit/get/delete round trips, serial monotonicity, snapshot isolation
// from later mutation, outputs replacement, and typed stale-base conflicts.
func TestEngineConformance(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			seed := state.New()
			seed.Set(rs("aws_vpc.seeded", 100))
			e := newTestEngine(t, backend, seed)
			if e.Name() != backend {
				t.Errorf("Name() = %q, want %q", e.Name(), backend)
			}
			base := e.Serial()
			if base <= seed.Serial {
				t.Errorf("fresh engine serial = %d, want > seed's %d", base, seed.Serial)
			}
			got, err := e.Get("aws_vpc.seeded", 0)
			if err != nil || got == nil || got.Attr("n").AsInt() != 100 {
				t.Fatalf("seeded read = %+v, %v", got, err)
			}

			// Commit a write and a delete.
			s1, err := e.Commit(put("aws_vpc.a", 1))
			if err != nil {
				t.Fatal(err)
			}
			if s1 != base+1 {
				t.Errorf("serial after commit = %d, want %d", s1, base+1)
			}
			s2, err := e.Commit(&Batch{
				Base:    BaseUnchecked,
				Writes:  map[string]*state.ResourceState{"aws_vpc.b": rs("aws_vpc.b", 2)},
				Deletes: map[string]bool{"aws_vpc.seeded": true},
			})
			if err != nil || s2 != s1+1 {
				t.Fatalf("second commit = %d, %v", s2, err)
			}
			if got, _ := e.Get("aws_vpc.seeded", 0); got != nil {
				t.Error("deleted address still readable at latest")
			}
			snap, err := e.Snapshot(0)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Serial != s2 || snap.Len() != 2 {
				t.Errorf("snapshot serial=%d len=%d, want %d and 2", snap.Serial, snap.Len(), s2)
			}

			// The materialized snapshot is the caller's: mutating it must
			// not leak back into the engine.
			snap.Get("aws_vpc.a").Attrs["n"] = eval.Int(999)
			snap.Remove("aws_vpc.b")
			if got, _ := e.Get("aws_vpc.a", 0); got.Attr("n").AsInt() != 1 {
				t.Error("snapshot mutation leaked into engine")
			}

			// Outputs replacement.
			if _, err := e.Commit(&Batch{
				Base:       BaseUnchecked,
				Outputs:    map[string]eval.Value{"url": eval.String("https://x")},
				SetOutputs: true,
			}); err != nil {
				t.Fatal(err)
			}
			snap, _ = e.Snapshot(0)
			if snap.Outputs["url"].AsString() != "https://x" {
				t.Error("outputs not replaced")
			}

			// Stale base: a batch pinned before s2 touching aws_vpc.b
			// (modified at s2) must fail with the typed conflict...
			_, err = e.Commit(&Batch{
				Base:   s1,
				Writes: map[string]*state.ResourceState{"aws_vpc.b": rs("aws_vpc.b", 9)},
			})
			var stale *StaleBaseError
			if !errors.As(err, &stale) {
				t.Fatalf("stale commit error = %v, want *StaleBaseError", err)
			}
			if stale.Addr != "aws_vpc.b" || stale.Base != s1 || stale.Committed != s2 {
				t.Errorf("conflict detail = %+v", stale)
			}
			// ...while a disjoint batch at the same stale base is fine.
			if _, err := e.Commit(&Batch{
				Base:   s1,
				Writes: map[string]*state.ResourceState{"aws_vpc.c": rs("aws_vpc.c", 3)},
			}); err != nil {
				t.Errorf("disjoint stale-base commit rejected: %v", err)
			}

			// Unretained serials answer with the typed sentinel.
			if _, err := e.Snapshot(e.Serial() + 100); !errors.Is(err, ErrNoSuchSerial) {
				t.Errorf("future-serial snapshot error = %v, want ErrNoSuchSerial", err)
			}
		})
	}
}

// TestEngineConcurrentReadsDuringCommits exercises every backend with point
// reads and snapshots racing a committer (run under -race).
func TestEngineConcurrentReadsDuringCommits(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			e := newTestEngine(t, backend, nil)
			const addrs = 8
			for i := 0; i < addrs; i++ {
				if _, err := e.Commit(put(fmt.Sprintf("aws_vpc.a%d", i), 0)); err != nil {
					t.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						addr := fmt.Sprintf("aws_vpc.a%d", r%addrs)
						if _, err := e.Get(addr, 0); err != nil {
							t.Errorf("get: %v", err)
							return
						}
						if _, err := e.Snapshot(0); err != nil {
							t.Errorf("snapshot: %v", err)
							return
						}
					}
				}(r)
			}
			for i := 0; i < 100; i++ {
				if _, err := e.Commit(put(fmt.Sprintf("aws_vpc.a%d", i%addrs), i)); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestDBOnEveryBackend drives the full DB/Txn stack (locks, history,
// commit/abort) over each engine to prove the database semantics are
// backend-independent.
func TestDBOnEveryBackend(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			eng := newTestEngine(t, backend, nil)
			db := OpenEngine(eng, ResourceLock)
			if db.Backend() != backend {
				t.Errorf("Backend() = %q", db.Backend())
			}
			txn := db.Begin("create")
			if err := txn.Lock(ctxb(), "aws_vpc.a"); err != nil {
				t.Fatal(err)
			}
			if err := txn.Put(rs("aws_vpc.a", 1)); err != nil {
				t.Fatal(err)
			}
			if db.Snapshot().Get("aws_vpc.a") != nil {
				t.Error("uncommitted write visible")
			}
			serial, err := txn.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if db.Serial() != serial {
				t.Errorf("db serial %d != commit serial %d", db.Serial(), serial)
			}
			if snap, err := db.History().At(serial); err != nil || snap.State.Get("aws_vpc.a") == nil {
				t.Errorf("history at %d: %v", serial, err)
			}

			// Stale-base conflict through the Txn layer: pin a txn at the
			// current serial, let a rival commit to the address, then try.
			pinned := db.BeginAt("late", db.Serial())
			rival := db.Begin("rival")
			if err := rival.Lock(ctxb(), "aws_vpc.a"); err != nil {
				t.Fatal(err)
			}
			_ = rival.Put(rs("aws_vpc.a", 2))
			if _, err := rival.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := pinned.Lock(ctxb(), "aws_vpc.a"); err != nil {
				t.Fatal(err)
			}
			_ = pinned.Put(rs("aws_vpc.a", 3))
			_, err = pinned.Commit()
			var stale *StaleBaseError
			if !errors.As(err, &stale) {
				t.Fatalf("pinned commit error = %v, want *StaleBaseError", err)
			}
			// The conflicted txn is still open: the caller aborts it.
			pinned.Abort()
			if db.Locks().Holder("aws_vpc.a") != 0 {
				t.Error("conflicted txn leaked its lock")
			}
			if got := db.Snapshot().Get("aws_vpc.a").Attr("n").AsInt(); got != 2 {
				t.Errorf("rival's write = %d, want 2", got)
			}
		})
	}
}

func ctxb() context.Context { return context.Background() }
