package statedb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cloudless/internal/state"
)

// TestMVCCPinnedReaderIsolation is the headline MVCC guarantee: a reader
// pinned at serial N never observes writes from serial N+1 (or later), even
// while those commits land concurrently. 16 concurrent transactions write
// under -race while pinned readers continuously re-verify their snapshots.
func TestMVCCPinnedReaderIsolation(t *testing.T) {
	e := NewMVCCEngine(nil, 0)
	defer e.Close()

	// Lay down a known baseline: addr i holds value i at pinSerial.
	const addrs = 8
	for i := 0; i < addrs; i++ {
		if _, err := e.Commit(put(fmt.Sprintf("aws_vpc.a%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	pinSerial := e.Serial()
	pinned, err := e.Snapshot(pinSerial)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				addr := fmt.Sprintf("aws_vpc.a%d", (w+i)%addrs)
				if _, err := e.Commit(put(addr, 1000+w*100+i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Readers pinned at pinSerial race the writers the whole time.
	readErr := make(chan error, 4)
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		go func() {
			for {
				select {
				case <-done:
					readErr <- nil
					return
				default:
				}
				for i := 0; i < addrs; i++ {
					addr := fmt.Sprintf("aws_vpc.a%d", i)
					got, err := e.Get(addr, pinSerial)
					if err != nil {
						readErr <- fmt.Errorf("pinned get %s: %w", addr, err)
						return
					}
					if n := got.Attr("n").AsInt(); n != i {
						readErr <- fmt.Errorf("pinned reader at serial %d saw %s=%d, want %d", pinSerial, addr, n, i)
						return
					}
				}
				snap, err := e.Snapshot(pinSerial)
				if err != nil {
					readErr <- fmt.Errorf("pinned snapshot: %w", err)
					return
				}
				if snap.Serial != pinSerial {
					readErr <- fmt.Errorf("pinned snapshot serial = %d, want %d", snap.Serial, pinSerial)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(done)
	for r := 0; r < 4; r++ {
		if err := <-readErr; err != nil {
			t.Fatal(err)
		}
	}

	// After all 400 commits: the pinned snapshot still reads as before,
	// the latest snapshot reflects the churn, and re-materializing at
	// pinSerial matches the copy taken before the churn started.
	if e.Serial() != pinSerial+writers*25 {
		t.Errorf("final serial = %d, want %d", e.Serial(), pinSerial+writers*25)
	}
	again, err := e.Snapshot(pinSerial)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < addrs; i++ {
		addr := fmt.Sprintf("aws_vpc.a%d", i)
		if got := again.Get(addr).Attr("n").AsInt(); got != pinned.Get(addr).Attr("n").AsInt() {
			t.Errorf("re-materialized %s = %d, want %d", addr, got, i)
		}
	}
	latest, _ := e.Snapshot(0)
	anyChanged := false
	for i := 0; i < addrs; i++ {
		if latest.Get(fmt.Sprintf("aws_vpc.a%d", i)).Attr("n").AsInt() >= 1000 {
			anyChanged = true
		}
	}
	if !anyChanged {
		t.Error("writers' churn not visible at latest serial")
	}
}

// TestMVCCSerialBoundary pins the exact N / N+1 boundary: a snapshot at N
// taken *after* N+1 committed still shows N's world.
func TestMVCCSerialBoundary(t *testing.T) {
	e := NewMVCCEngine(nil, 0)
	defer e.Close()
	n, err := e.Commit(put("aws_vpc.x", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(&Batch{
		Base:    BaseUnchecked,
		Writes:  map[string]*state.ResourceState{"aws_vpc.x": rs("aws_vpc.x", 2), "aws_vpc.y": rs("aws_vpc.y", 2)},
		Deletes: nil,
	}); err != nil {
		t.Fatal(err)
	}
	atN, err := e.Snapshot(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := atN.Get("aws_vpc.x").Attr("n").AsInt(); got != 1 {
		t.Errorf("snapshot at N: x = %d, want 1", got)
	}
	if atN.Get("aws_vpc.y") != nil {
		t.Error("snapshot at N shows resource created at N+1")
	}
	// Point reads at N agree.
	if got, _ := e.Get("aws_vpc.y", n); got != nil {
		t.Error("Get at N shows resource created at N+1")
	}
	// Deletes are versioned too: delete x at N+2, N+1 still shows it.
	if _, err := e.Commit(&Batch{Base: BaseUnchecked, Deletes: map[string]bool{"aws_vpc.x": true}}); err != nil {
		t.Fatal(err)
	}
	if got, err := e.Get("aws_vpc.x", n+1); err != nil || got == nil || got.Attr("n").AsInt() != 2 {
		t.Errorf("Get x at N+1 after delete at N+2 = %v, %v; want n=2", got, err)
	}
	if got, _ := e.Get("aws_vpc.x", 0); got != nil {
		t.Error("deleted resource visible at latest")
	}
}

// TestMVCCCompaction checks that CompactBelow drops unreachable versions,
// that compacted serials answer ErrNoSuchSerial, and that retention-driven
// auto-compaction keeps the version count bounded.
func TestMVCCCompaction(t *testing.T) {
	e := NewMVCCEngine(nil, 0)
	defer e.Close()
	var serials []int
	for i := 0; i < 10; i++ {
		s, err := e.Commit(put("aws_vpc.x", i))
		if err != nil {
			t.Fatal(err)
		}
		serials = append(serials, s)
	}
	before := e.VersionCount()
	floor := serials[7]
	e.CompactBelow(floor)
	if e.Oldest() != floor {
		t.Errorf("Oldest() = %d, want %d", e.Oldest(), floor)
	}
	if after := e.VersionCount(); after >= before {
		t.Errorf("version count %d not reduced from %d", after, before)
	}
	// The floor itself stays readable; older serials are gone.
	if got, err := e.Get("aws_vpc.x", floor); err != nil || got.Attr("n").AsInt() != 7 {
		t.Errorf("read at floor = %v, %v", got, err)
	}
	if _, err := e.Snapshot(serials[2]); !errors.Is(err, ErrNoSuchSerial) {
		t.Errorf("compacted snapshot error = %v, want ErrNoSuchSerial", err)
	}
	if _, err := e.Get("aws_vpc.x", serials[2]); !errors.Is(err, ErrNoSuchSerial) {
		t.Errorf("compacted get error = %v, want ErrNoSuchSerial", err)
	}

	// Retention-driven auto-compaction: retain=5 must keep the horizon
	// within 2*retain of the head no matter how many commits land.
	r := NewMVCCEngine(nil, 5)
	defer r.Close()
	for i := 0; i < 100; i++ {
		if _, err := r.Commit(put("aws_vpc.y", i)); err != nil {
			t.Fatal(err)
		}
	}
	if lag := r.Serial() - r.Oldest(); lag > 10 {
		t.Errorf("auto-compaction horizon lags %d serials, want <= 10", lag)
	}
	// The last retain serials are always readable.
	for s := r.Serial() - 5; s <= r.Serial(); s++ {
		if _, err := r.Snapshot(s); err != nil {
			t.Errorf("retained serial %d unreadable: %v", s, err)
		}
	}
}
