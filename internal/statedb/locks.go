// Package statedb implements the golden-state database the paper calls for
// in §3.4: the authoritative record of the cloud infrastructure, fronted by
// a lock manager that supports both today's whole-infrastructure lock (the
// Terraform baseline) and Cloudless's per-resource locks, plus transactions
// that give concurrent DevOps teams atomic, isolated updates.
package statedb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudless/internal/telemetry"
)

// LockMode selects the locking granularity.
type LockMode int

// Lock modes.
const (
	// GlobalLock serializes all updates behind one lock — the behaviour of
	// existing IaC tools the paper criticizes ("existing tools simply lock
	// the entire cloud infrastructure for modifications at any scale").
	GlobalLock LockMode = iota
	// ResourceLock takes one lock per resource address, so disjoint
	// updates proceed in parallel.
	ResourceLock
)

// String names the mode.
func (m LockMode) String() string {
	if m == GlobalLock {
		return "global"
	}
	return "per-resource"
}

// LockStats counts contention, for the E4 experiment.
type LockStats struct {
	Acquisitions int64
	Contended    int64
	WaitTime     time.Duration
}

// lockEntry is one lock with a FIFO waiter queue.
type lockEntry struct {
	holder  int64 // transaction ID, 0 when free
	waiters []chan struct{}
}

// ErrDeadlock is returned when blocking on a lock would close a cycle in
// the waits-for graph. Single-call Acquire uses sorted acquisition and can
// never deadlock; transactions that take locks incrementally across calls
// can, and get this error instead of hanging — the caller aborts and
// retries, the classic deadlock-detection discipline for a lock-manager-
// backed IaC database (§3.4).
var ErrDeadlock = errors.New("statedb: deadlock detected; abort and retry the transaction")

// LockManager hands out address-level locks with deadlock-free ordered
// acquisition within one call, FIFO fairness, and waits-for-cycle deadlock
// detection across calls.
type LockManager struct {
	mode LockMode

	mu    sync.Mutex
	locks map[string]*lockEntry
	stats LockStats
	// waitingOn maps a blocked transaction to the key it waits for,
	// for deadlock detection. A transaction blocks on at most one key at
	// a time because Acquire is sequential.
	waitingOn map[int64]string
}

// globalKey is the single address used in GlobalLock mode.
const globalKey = "\x00global"

// NewLockManager builds a lock manager in the given mode.
func NewLockManager(mode LockMode) *LockManager {
	return &LockManager{
		mode:      mode,
		locks:     map[string]*lockEntry{},
		waitingOn: map[int64]string{},
	}
}

// Mode returns the locking granularity.
func (lm *LockManager) Mode() LockMode { return lm.mode }

// Stats returns a snapshot of contention counters.
func (lm *LockManager) Stats() LockStats {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.stats
}

// keysFor maps requested addresses to lock keys under the current mode,
// sorted for deadlock-free ordered acquisition.
func (lm *LockManager) keysFor(addrs []string) []string {
	if lm.mode == GlobalLock {
		return []string{globalKey}
	}
	keys := make([]string, 0, len(addrs))
	seen := map[string]bool{}
	for _, a := range addrs {
		if !seen[a] {
			seen[a] = true
			keys = append(keys, a)
		}
	}
	sort.Strings(keys)
	return keys
}

// Acquire takes locks for all addresses on behalf of a transaction,
// blocking until they are all held or the context is canceled. Acquisition
// is in sorted address order, which makes deadlock impossible when every
// transaction acquires through this method.
func (lm *LockManager) Acquire(ctx context.Context, txnID int64, addrs []string) error {
	keys := lm.keysFor(addrs)
	rec := telemetry.FromContext(ctx)
	var start time.Time
	if rec != nil {
		start = rec.Now()
	}
	err := lm.acquireAll(ctx, txnID, keys)
	if rec != nil {
		reg := rec.Metrics()
		// Lock-wait distribution (E4) and deadlock-abort count (E5): the
		// observed Acquire latency includes any blocking behind holders.
		reg.Histogram("statedb.lock_wait_ms", "mode", lm.mode.String()).
			Observe(float64(rec.Now().Sub(start)) / float64(time.Millisecond))
		reg.Counter("statedb.lock_acquires", "mode", lm.mode.String()).Inc()
		if errors.Is(err, ErrDeadlock) {
			reg.Counter("statedb.deadlock_aborts").Inc()
		}
	}
	return err
}

// acquireAll takes the already-sorted keys one at a time, releasing every
// held key on failure.
func (lm *LockManager) acquireAll(ctx context.Context, txnID int64, keys []string) error {
	var held []string
	for _, key := range keys {
		if err := lm.acquireOne(ctx, txnID, key); err != nil {
			lm.release(txnID, held)
			return err
		}
		held = append(held, key)
	}
	return nil
}

// TryAcquire attempts to take all locks without blocking; on any conflict it
// takes none and returns false.
func (lm *LockManager) TryAcquire(txnID int64, addrs []string) bool {
	keys := lm.keysFor(addrs)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, key := range keys {
		if e, ok := lm.locks[key]; ok && e.holder != 0 && e.holder != txnID {
			return false
		}
	}
	for _, key := range keys {
		e := lm.locks[key]
		if e == nil {
			e = &lockEntry{}
			lm.locks[key] = e
		}
		e.holder = txnID
		lm.stats.Acquisitions++
	}
	return true
}

func (lm *LockManager) acquireOne(ctx context.Context, txnID int64, key string) error {
	start := time.Now()
	first := true
	for {
		lm.mu.Lock()
		e := lm.locks[key]
		if e == nil {
			e = &lockEntry{}
			lm.locks[key] = e
		}
		if e.holder == 0 || e.holder == txnID {
			e.holder = txnID
			lm.stats.Acquisitions++
			if !first {
				lm.stats.WaitTime += time.Since(start)
			}
			lm.mu.Unlock()
			return nil
		}
		if first {
			lm.stats.Contended++
			first = false
		}
		// Deadlock detection: would blocking on this key close a cycle
		// holder(key) -> ... -> txnID in the waits-for graph?
		if lm.wouldDeadlockLocked(txnID, key) {
			lm.mu.Unlock()
			return fmt.Errorf("lock on %q: %w", key, ErrDeadlock)
		}
		ch := make(chan struct{})
		e.waiters = append(e.waiters, ch)
		lm.waitingOn[txnID] = key
		lm.mu.Unlock()
		select {
		case <-ctx.Done():
			lm.removeWaiter(txnID, key, ch)
			return fmt.Errorf("lock on %q: %w", key, ctx.Err())
		case <-ch:
			// Woken; loop to contend for the lock again (FIFO wakeup order
			// gives fairness, but re-check under the mutex).
			lm.mu.Lock()
			delete(lm.waitingOn, txnID)
			lm.mu.Unlock()
		}
	}
}

// wouldDeadlockLocked walks the waits-for chain starting at the holder of
// key, following each transaction's awaited key to its holder; reaching
// txnID means a cycle.
func (lm *LockManager) wouldDeadlockLocked(txnID int64, key string) bool {
	seen := map[int64]bool{}
	cur := key
	for {
		e := lm.locks[cur]
		if e == nil || e.holder == 0 {
			return false
		}
		holder := e.holder
		if holder == txnID {
			return true
		}
		if seen[holder] {
			return false // a cycle not involving us
		}
		seen[holder] = true
		next, waiting := lm.waitingOn[holder]
		if !waiting {
			return false
		}
		cur = next
	}
}

func (lm *LockManager) removeWaiter(txnID int64, key string, ch chan struct{}) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.waitingOn, txnID)
	e := lm.locks[key]
	if e == nil {
		return
	}
	for i, w := range e.waiters {
		if w == ch {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
	// Our channel was already closed by a release between cancellation and
	// this cleanup: pass the wakeup on so the lock is not stranded.
	if e.holder == 0 && len(e.waiters) > 0 {
		next := e.waiters[0]
		e.waiters = e.waiters[1:]
		close(next)
	}
}

// Release frees the locks a transaction holds on the given addresses.
func (lm *LockManager) Release(txnID int64, addrs []string) {
	lm.release(txnID, lm.keysFor(addrs))
}

func (lm *LockManager) release(txnID int64, keys []string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, key := range keys {
		e := lm.locks[key]
		if e == nil || e.holder != txnID {
			continue
		}
		e.holder = 0
		if len(e.waiters) > 0 {
			next := e.waiters[0]
			e.waiters = e.waiters[1:]
			close(next)
		} else {
			delete(lm.locks, key)
		}
	}
}

// Holder reports which transaction holds the lock for an address (0 = none).
func (lm *LockManager) Holder(addr string) int64 {
	key := addr
	if lm.mode == GlobalLock {
		key = globalKey
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if e, ok := lm.locks[key]; ok {
		return e.holder
	}
	return 0
}
