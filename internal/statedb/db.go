package statedb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// DB is the golden-state database: the authoritative, transactional record
// of the infrastructure. Updates are scheduled against the logical state and
// locks here, and only then applied to the physical cloud — the ordering the
// paper prescribes in §3.4. Storage is delegated to a pluggable Engine
// (memory, mvcc, wal); DB layers the lock manager, transactions, and the
// time machine on top.
type DB struct {
	engine  Engine
	history *state.History
	locks   *LockManager
	nextTxn atomic.Int64

	// commitMu serializes engine commit + history snapshot so the time
	// machine records every serial exactly once, in order.
	commitMu sync.Mutex

	commits atomic.Int64
	aborts  atomic.Int64
}

// Open creates a database seeded with an initial state, backed by the
// default sharded memory engine.
func Open(initial *state.State, mode LockMode) *DB {
	eng, err := NewEngine(BackendMemory, initial, EngineOptions{})
	if err != nil {
		// The memory backend cannot fail to construct.
		panic(err)
	}
	return OpenEngine(eng, mode)
}

// OpenEngine creates a database over an already-constructed storage engine.
func OpenEngine(eng Engine, mode LockMode) *DB {
	db := &DB{
		engine:  eng,
		history: state.NewHistory(0),
		locks:   NewLockManager(mode),
	}
	// Seed the time machine with the engine's current state, so
	// DB.Serial() always names a snapshot History.At can retrieve.
	if snap, err := eng.Snapshot(0); err == nil {
		db.history.CommitOwned(snap, "initial", "")
	}
	return db
}

// Engine exposes the storage backend.
func (db *DB) Engine() Engine { return db.engine }

// Backend names the storage backend in use.
func (db *DB) Backend() string { return db.engine.Name() }

// Close releases the storage engine's resources (e.g. the WAL file handle).
func (db *DB) Close() error { return db.engine.Close() }

// Locks exposes the lock manager (for stats and for the applier, which
// holds locks across the physical apply).
func (db *DB) Locks() *LockManager { return db.locks }

// History exposes the time machine.
func (db *DB) History() *state.History { return db.history }

// Snapshot returns a deep copy of the current golden state.
func (db *DB) Snapshot() *state.State {
	s, err := db.engine.Snapshot(0)
	if err != nil {
		// Latest-serial snapshots cannot fail on any shipped engine.
		panic(fmt.Sprintf("statedb: snapshot: %v", err))
	}
	return s
}

// SnapshotAt returns a deep copy of the state as of a past serial. Engines
// without version retention (memory, wal) serve only the current serial and
// return ErrNoSuchSerial otherwise; the mvcc engine serves any serial inside
// its retention window.
func (db *DB) SnapshotAt(serial int) (*state.State, error) {
	return db.engine.Snapshot(serial)
}

// Serial returns the current state serial.
func (db *DB) Serial() int { return db.engine.Serial() }

// CommitCount and AbortCount expose transaction outcome counters.
func (db *DB) CommitCount() int64 { return db.commits.Load() }

// AbortCount returns the number of aborted transactions.
func (db *DB) AbortCount() int64 { return db.aborts.Load() }

// txnState is the Txn lifecycle: pending until exactly one of Commit or
// Abort wins; both are idempotent afterwards.
type txnState int

const (
	txnPending txnState = iota
	txnCommitted
	txnAborted
)

// Txn is an in-flight transaction: a private read/write view over the
// golden state plus the set of locks it holds. A transaction only sees its
// own writes until commit; commit publishes them atomically. Commit and
// Abort are idempotent: finishing an already-finished transaction is a
// no-op (a repeated Commit returns the original serial), never a panic or
// a double lock release.
type Txn struct {
	id int64
	db *DB

	mu      sync.Mutex
	state   txnState
	serial  int // committed serial, once state == txnCommitted
	base    int // read-snapshot serial for conflict detection
	locked  map[string]bool
	writes  map[string]*state.ResourceState
	deletes map[string]bool
	outputs map[string]eval.Value
	desc    string
}

// Begin starts a transaction with conflict detection disabled.
func (db *DB) Begin(description string) *Txn {
	return db.BeginAt(description, BaseUnchecked)
}

// BeginAt starts a transaction whose reads are pinned at the given base
// serial: Commit fails with *StaleBaseError if any address it touches was
// modified by a commit after base. Pass BaseUnchecked to disable.
func (db *DB) BeginAt(description string, base int) *Txn {
	return &Txn{
		id:      db.nextTxn.Add(1),
		db:      db,
		base:    base,
		locked:  map[string]bool{},
		writes:  map[string]*state.ResourceState{},
		deletes: map[string]bool{},
		desc:    description,
	}
}

// ID returns the transaction's identifier.
func (t *Txn) ID() int64 { return t.id }

// Base returns the serial the transaction's reads are pinned at
// (BaseUnchecked when conflict detection is off).
func (t *Txn) Base() int { return t.base }

// SetBase pins (or re-pins) the transaction's base serial.
func (t *Txn) SetBase(serial int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.base = serial
}

// Lock acquires locks on the given resource addresses (all-or-nothing,
// blocking). Addresses already locked by this transaction are skipped.
func (t *Txn) Lock(ctx context.Context, addrs ...string) error {
	t.mu.Lock()
	if t.state != txnPending {
		t.mu.Unlock()
		return fmt.Errorf("statedb: transaction %d is finished", t.id)
	}
	var need []string
	for _, a := range addrs {
		if !t.locked[a] {
			need = append(need, a)
		}
	}
	t.mu.Unlock()
	if len(need) == 0 {
		return nil
	}
	// Block on the lock manager without holding t.mu.
	if err := t.db.locks.Acquire(ctx, t.id, need); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != txnPending {
		// Finished while we were blocking: release what we just took.
		t.db.locks.Release(t.id, need)
		return fmt.Errorf("statedb: transaction %d is finished", t.id)
	}
	for _, a := range need {
		t.locked[a] = true
	}
	return nil
}

// TryLock attempts non-blocking acquisition of all addresses.
func (t *Txn) TryLock(addrs ...string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != txnPending {
		return false
	}
	var need []string
	for _, a := range addrs {
		if !t.locked[a] {
			need = append(need, a)
		}
	}
	if len(need) == 0 {
		return true
	}
	if !t.db.locks.TryAcquire(t.id, need) {
		return false
	}
	for _, a := range need {
		t.locked[a] = true
	}
	return true
}

// requireLockLocked guards reads/writes: accessing an address without its
// lock is a programming error that would break isolation. Caller holds t.mu.
func (t *Txn) requireLockLocked(addr string) error {
	if t.state != txnPending {
		return fmt.Errorf("statedb: transaction %d is finished", t.id)
	}
	if t.db.locks.Mode() == GlobalLock {
		if len(t.locked) == 0 {
			return fmt.Errorf("statedb: txn %d accessed %q without holding the global lock", t.id, addr)
		}
		return nil
	}
	if !t.locked[addr] {
		return fmt.Errorf("statedb: txn %d accessed %q without holding its lock", t.id, addr)
	}
	return nil
}

// Get reads a resource through the transaction's view.
func (t *Txn) Get(addr string) (*state.ResourceState, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.requireLockLocked(addr); err != nil {
		return nil, err
	}
	if t.deletes[addr] {
		return nil, nil
	}
	if rs, ok := t.writes[addr]; ok {
		return rs.Clone(), nil
	}
	return t.db.engine.Get(addr, 0)
}

// Put stages a write.
func (t *Txn) Put(rs *state.ResourceState) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.requireLockLocked(rs.Addr); err != nil {
		return err
	}
	delete(t.deletes, rs.Addr)
	t.writes[rs.Addr] = rs.Clone()
	return nil
}

// SetOutputs stages replacement of the recorded root outputs.
func (t *Txn) SetOutputs(outputs map[string]eval.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.outputs = make(map[string]eval.Value, len(outputs))
	for k, v := range outputs {
		t.outputs[k] = v
	}
}

// Delete stages a removal.
func (t *Txn) Delete(addr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.requireLockLocked(addr); err != nil {
		return err
	}
	delete(t.writes, addr)
	t.deletes[addr] = true
	return nil
}

// Commit atomically publishes the transaction's writes through the storage
// engine, records a history snapshot, and releases all locks. Committing an
// already-committed transaction is a no-op returning the original serial;
// committing an aborted transaction is an error. When the transaction was
// pinned with BeginAt/SetBase, a conflicting concurrent commit surfaces as
// *StaleBaseError and the transaction stays open (abort it and re-plan).
func (t *Txn) Commit() (serial int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case txnCommitted:
		return t.serial, nil
	case txnAborted:
		return 0, fmt.Errorf("statedb: transaction %d already aborted", t.id)
	}
	b := &Batch{
		Base:    t.base,
		Desc:    t.desc,
		Writes:  t.writes,
		Deletes: t.deletes,
	}
	if t.outputs != nil {
		b.Outputs = t.outputs
		b.SetOutputs = true
	}
	t.db.commitMu.Lock()
	serial, err = t.db.engine.Commit(b)
	if err == nil {
		if snap, serr := t.db.engine.Snapshot(serial); serr == nil {
			t.db.history.CommitOwned(snap, t.desc, "")
		}
	}
	t.db.commitMu.Unlock()
	if err != nil {
		return 0, err
	}
	t.serial = serial
	t.finishLocked(txnCommitted)
	t.db.commits.Add(1)
	return serial, nil
}

// Abort discards the transaction and releases its locks. Aborting a
// finished transaction is a no-op.
func (t *Txn) Abort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != txnPending {
		return
	}
	t.finishLocked(txnAborted)
	t.db.aborts.Add(1)
}

// finishLocked releases locks exactly once and seals the transaction.
// Caller holds t.mu with state still txnPending.
func (t *Txn) finishLocked(final txnState) {
	addrs := make([]string, 0, len(t.locked))
	for a := range t.locked {
		addrs = append(addrs, a)
	}
	t.db.locks.Release(t.id, addrs)
	t.state = final
	t.writes = nil
	t.deletes = nil
	t.locked = map[string]bool{}
}
