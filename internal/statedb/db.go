package statedb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// DB is the golden-state database: the authoritative, transactional record
// of the infrastructure. Updates are scheduled against the logical state and
// locks here, and only then applied to the physical cloud — the ordering the
// paper prescribes in §3.4.
type DB struct {
	mu      sync.RWMutex
	current *state.State
	history *state.History
	locks   *LockManager
	nextTxn atomic.Int64

	commits atomic.Int64
	aborts  atomic.Int64
}

// Open creates a database seeded with an initial state.
func Open(initial *state.State, mode LockMode) *DB {
	if initial == nil {
		initial = state.New()
	}
	db := &DB{
		current: initial.Clone(),
		history: state.NewHistory(0),
		locks:   NewLockManager(mode),
	}
	// Align the state serial with its history serial from the start, so
	// DB.Serial() always names the snapshot History.At can retrieve.
	db.current.Serial++
	db.history.Commit(db.current, "initial", "")
	return db
}

// Locks exposes the lock manager (for stats and for the applier, which
// holds locks across the physical apply).
func (db *DB) Locks() *LockManager { return db.locks }

// History exposes the time machine.
func (db *DB) History() *state.History { return db.history }

// Snapshot returns a deep copy of the current golden state.
func (db *DB) Snapshot() *state.State {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.current.Clone()
}

// Serial returns the current state serial.
func (db *DB) Serial() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.current.Serial
}

// CommitCount and AbortCount expose transaction outcome counters.
func (db *DB) CommitCount() int64 { return db.commits.Load() }

// AbortCount returns the number of aborted transactions.
func (db *DB) AbortCount() int64 { return db.aborts.Load() }

// Txn is an in-flight transaction: a private read/write view over the
// golden state plus the set of locks it holds. A transaction only sees its
// own writes until commit; commit publishes them atomically.
type Txn struct {
	id      int64
	db      *DB
	locked  map[string]bool
	writes  map[string]*state.ResourceState
	deletes map[string]bool
	outputs map[string]eval.Value
	done    bool
	desc    string
}

// Begin starts a transaction.
func (db *DB) Begin(description string) *Txn {
	return &Txn{
		id:      db.nextTxn.Add(1),
		db:      db,
		locked:  map[string]bool{},
		writes:  map[string]*state.ResourceState{},
		deletes: map[string]bool{},
		desc:    description,
	}
}

// ID returns the transaction's identifier.
func (t *Txn) ID() int64 { return t.id }

// Lock acquires locks on the given resource addresses (all-or-nothing,
// blocking). Addresses already locked by this transaction are skipped.
func (t *Txn) Lock(ctx context.Context, addrs ...string) error {
	if t.done {
		return fmt.Errorf("statedb: transaction %d is finished", t.id)
	}
	var need []string
	for _, a := range addrs {
		if !t.locked[a] {
			need = append(need, a)
		}
	}
	if len(need) == 0 {
		return nil
	}
	if err := t.db.locks.Acquire(ctx, t.id, need); err != nil {
		return err
	}
	for _, a := range need {
		t.locked[a] = true
	}
	return nil
}

// TryLock attempts non-blocking acquisition of all addresses.
func (t *Txn) TryLock(addrs ...string) bool {
	if t.done {
		return false
	}
	var need []string
	for _, a := range addrs {
		if !t.locked[a] {
			need = append(need, a)
		}
	}
	if len(need) == 0 {
		return true
	}
	if !t.db.locks.TryAcquire(t.id, need) {
		return false
	}
	for _, a := range need {
		t.locked[a] = true
	}
	return true
}

// requireLock guards reads/writes: accessing an address without its lock is
// a programming error that would break isolation.
func (t *Txn) requireLock(addr string) error {
	if t.db.locks.Mode() == GlobalLock {
		if len(t.locked) == 0 {
			return fmt.Errorf("statedb: txn %d accessed %q without holding the global lock", t.id, addr)
		}
		return nil
	}
	if !t.locked[addr] {
		return fmt.Errorf("statedb: txn %d accessed %q without holding its lock", t.id, addr)
	}
	return nil
}

// Get reads a resource through the transaction's view.
func (t *Txn) Get(addr string) (*state.ResourceState, error) {
	if err := t.requireLock(addr); err != nil {
		return nil, err
	}
	if t.deletes[addr] {
		return nil, nil
	}
	if rs, ok := t.writes[addr]; ok {
		return rs.Clone(), nil
	}
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	if rs := t.db.current.Get(addr); rs != nil {
		return rs.Clone(), nil
	}
	return nil, nil
}

// Put stages a write.
func (t *Txn) Put(rs *state.ResourceState) error {
	if err := t.requireLock(rs.Addr); err != nil {
		return err
	}
	delete(t.deletes, rs.Addr)
	t.writes[rs.Addr] = rs.Clone()
	return nil
}

// SetOutputs stages replacement of the recorded root outputs.
func (t *Txn) SetOutputs(outputs map[string]eval.Value) {
	t.outputs = make(map[string]eval.Value, len(outputs))
	for k, v := range outputs {
		t.outputs[k] = v
	}
}

// Delete stages a removal.
func (t *Txn) Delete(addr string) error {
	if err := t.requireLock(addr); err != nil {
		return err
	}
	delete(t.writes, addr)
	t.deletes[addr] = true
	return nil
}

// Commit atomically publishes the transaction's writes, bumps the state
// serial, records a history snapshot, and releases all locks.
func (t *Txn) Commit() (serial int, err error) {
	if t.done {
		return 0, fmt.Errorf("statedb: transaction %d already finished", t.id)
	}
	t.db.mu.Lock()
	for addr, rs := range t.writes {
		cp := rs.Clone()
		cp.Addr = addr
		t.db.current.Set(cp)
	}
	for addr := range t.deletes {
		t.db.current.Remove(addr)
	}
	if t.outputs != nil {
		t.db.current.Outputs = t.outputs
	}
	t.db.current.Serial++
	serial = t.db.current.Serial
	snapshot := t.db.current
	t.db.mu.Unlock()

	t.db.history.Commit(snapshot, t.desc, "")
	t.finish()
	t.db.commits.Add(1)
	return serial, nil
}

// Abort discards the transaction and releases its locks.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.finish()
	t.db.aborts.Add(1)
}

func (t *Txn) finish() {
	addrs := make([]string, 0, len(t.locked))
	for a := range t.locked {
		addrs = append(addrs, a)
	}
	t.db.locks.Release(t.id, addrs)
	t.done = true
	t.writes = nil
	t.deletes = nil
	t.locked = map[string]bool{}
}
