package statedb

import (
	"fmt"
	"sort"
	"sync"

	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// mvccVersion is one committed version of one address. A nil resource marks
// a deletion tombstone.
type mvccVersion struct {
	serial int
	rs     *state.ResourceState
}

// outputsVersion is one committed version of the root outputs.
type outputsVersion struct {
	serial  int
	outputs map[string]eval.Value
}

// MVCCEngine keeps copy-on-write version chains per address, one entry per
// commit serial that touched the address. Readers pinned at serial N resolve
// every lookup to the newest version <= N, so a consistent snapshot needs no
// coordination with concurrent commits: Plan and CLI reads run against their
// pinned serial while an Apply transaction commits serial N+1.
type MVCCEngine struct {
	mu     sync.RWMutex
	serial int
	// oldest is the compaction horizon: serials below it may have been
	// collapsed away and are no longer readable.
	oldest  int
	chains  map[string][]mvccVersion
	outputs []outputsVersion
	// retain, when > 0, bounds how far behind the head versions are kept;
	// commits trigger compaction once the horizon lags by 2*retain.
	retain int
}

// NewMVCCEngine builds an MVCC engine over the seed state (taken as-is,
// including its serial). retain > 0 enables automatic compaction of
// versions more than retain serials behind the head.
func NewMVCCEngine(seed *state.State, retain int) *MVCCEngine {
	if seed == nil {
		seed = state.New()
	}
	e := &MVCCEngine{
		serial: seed.Serial,
		oldest: seed.Serial,
		chains: map[string][]mvccVersion{},
		retain: retain,
	}
	for addr, rs := range seed.Resources {
		e.chains[addr] = []mvccVersion{{serial: seed.Serial, rs: rs.Clone()}}
	}
	e.outputs = []outputsVersion{{serial: seed.Serial, outputs: cloneOutputs(seed.Outputs)}}
	return e
}

// Name returns the backend name.
func (e *MVCCEngine) Name() string { return BackendMVCC }

// Serial returns the newest committed serial.
func (e *MVCCEngine) Serial() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.serial
}

// Oldest returns the oldest readable serial (the compaction horizon).
func (e *MVCCEngine) Oldest() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.oldest
}

// versionAt resolves the newest version of a chain at or before serial.
// Caller holds e.mu.
func versionAt(chain []mvccVersion, serial int) (mvccVersion, bool) {
	// Chains are ascending by serial; find the last entry <= serial.
	i := sort.Search(len(chain), func(i int) bool { return chain[i].serial > serial }) - 1
	if i < 0 {
		return mvccVersion{}, false
	}
	return chain[i], true
}

// resolve checks a requested serial against the readable window. Caller
// holds e.mu.
func (e *MVCCEngine) resolveLocked(serial int) (int, error) {
	if serial == 0 {
		return e.serial, nil
	}
	if serial > e.serial || serial < e.oldest {
		return 0, fmt.Errorf("mvcc engine read at serial %d (window [%d, %d]): %w",
			serial, e.oldest, e.serial, ErrNoSuchSerial)
	}
	return serial, nil
}

// Get reads one resource at the given serial (0 = latest).
func (e *MVCCEngine) Get(addr string, serial int) (*state.ResourceState, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	at, err := e.resolveLocked(serial)
	if err != nil {
		return nil, err
	}
	v, ok := versionAt(e.chains[addr], at)
	if !ok || v.rs == nil {
		return nil, nil
	}
	return v.rs.Clone(), nil
}

// Snapshot materializes a consistent state at the given serial (0 = latest).
func (e *MVCCEngine) Snapshot(serial int) (*state.State, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	at, err := e.resolveLocked(serial)
	if err != nil {
		return nil, err
	}
	s := state.New()
	s.Serial = at
	for addr, chain := range e.chains {
		if v, ok := versionAt(chain, at); ok && v.rs != nil {
			s.Resources[addr] = v.rs.Clone()
		}
	}
	for i := len(e.outputs) - 1; i >= 0; i-- {
		if e.outputs[i].serial <= at {
			s.Outputs = cloneOutputs(e.outputs[i].outputs)
			break
		}
	}
	return s, nil
}

// Commit atomically appends a batch's versions at the next serial.
func (e *MVCCEngine) Commit(b *Batch) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b.Base >= 0 {
		for _, addr := range b.addrs() {
			if chain := e.chains[addr]; len(chain) > 0 {
				if last := chain[len(chain)-1]; last.serial > b.Base {
					return 0, &StaleBaseError{Addr: addr, Base: b.Base, Committed: last.serial}
				}
			}
		}
	}
	serial := e.serial + 1
	for addr, rs := range b.Writes {
		cp := rs.Clone()
		cp.Addr = addr
		e.chains[addr] = append(e.chains[addr], mvccVersion{serial: serial, rs: cp})
	}
	for addr := range b.Deletes {
		e.chains[addr] = append(e.chains[addr], mvccVersion{serial: serial, rs: nil})
	}
	if b.SetOutputs {
		e.outputs = append(e.outputs, outputsVersion{serial: serial, outputs: cloneOutputs(b.Outputs)})
	}
	e.serial = serial
	if e.retain > 0 && e.serial-e.oldest > 2*e.retain {
		e.compactLocked(e.serial - e.retain)
	}
	return serial, nil
}

// CompactBelow drops versions no longer reachable from any serial >= floor,
// advancing the readable window's lower bound to floor.
func (e *MVCCEngine) CompactBelow(floor int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compactLocked(floor)
}

func (e *MVCCEngine) compactLocked(floor int) {
	if floor > e.serial {
		floor = e.serial
	}
	if floor <= e.oldest {
		return
	}
	for addr, chain := range e.chains {
		// Keep the newest version <= floor (it serves reads at floor) plus
		// everything after it; drop older entries, and whole chains whose
		// only surviving entry is a tombstone.
		i := sort.Search(len(chain), func(i int) bool { return chain[i].serial > floor }) - 1
		if i < 0 {
			continue
		}
		kept := chain[i:]
		if len(kept) == 1 && kept[0].rs == nil {
			delete(e.chains, addr)
			continue
		}
		e.chains[addr] = append([]mvccVersion(nil), kept...)
	}
	for i := len(e.outputs) - 1; i >= 0; i-- {
		if e.outputs[i].serial <= floor {
			e.outputs = append([]outputsVersion(nil), e.outputs[i:]...)
			break
		}
	}
	e.oldest = floor
}

// VersionCount reports the total retained version entries (for tests and
// the SD experiment).
func (e *MVCCEngine) VersionCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, chain := range e.chains {
		n += len(chain)
	}
	return n
}

// Close is a no-op for the MVCC engine.
func (e *MVCCEngine) Close() error { return nil }
