package graph

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the scale-out evaluation scheduler: a partitioned
// work-stealing pool over the DAG. Walk (walk.go) spawns one goroutine per
// node and funnels readiness through a central heap — the right shape for
// I/O-bound applies where nodes block on the cloud and priority matters. At
// 100k nodes of CPU-bound expression evaluation that shape inverts: per-node
// goroutines and a contended global heap dominate the work itself. StealWalk
// instead runs a fixed set of workers, each owning a LIFO deque seeded with
// one slice of the graph's weakly-connected components; a worker descends
// its own partition depth-first (good locality: a dependent usually reads
// values its worker just wrote) and steals from a peer's deque only when its
// own drains, so imbalanced partitions still level out.

// Components returns the weakly-connected components of the graph — the
// independent subtrees that share no edges and can be processed with no
// cross-partition synchronization. Each component is sorted, and components
// are ordered by their smallest member, so the decomposition is
// deterministic for a given graph.
func (g *Graph) Components() [][]string {
	seen := make(map[string]bool, len(g.nodes))
	var comps [][]string
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		comp := []string{}
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for next := range g.deps[n] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
			for next := range g.rdeps[n] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	return comps
}

// StealWalk executes fn once per node, dependencies before dependents, on a
// pool of `workers` goroutines with per-worker deques and work stealing.
// fn must be safe for concurrent invocation on distinct nodes. StealWalk
// blocks until every node ran and returns a *CycleError if the graph is
// cyclic (in which case an unspecified subset of nodes has run).
//
// Scheduling is intentionally order-free beyond the dependency constraint:
// callers that need deterministic output must merge results in a canonical
// order afterwards, which also makes their output independent of the worker
// count (the plan layer's sorted-merge does exactly this).
func (g *Graph) StealWalk(workers int, fn func(id string)) error {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	ids := g.Nodes()
	idx := make(map[string]int, n)
	for i, id := range ids {
		idx[id] = i
	}
	pending := make([]int32, n)
	dependents := make([][]int32, n)
	for i, id := range ids {
		pending[i] = int32(len(g.deps[id]))
		if rds := g.rdeps[id]; len(rds) > 0 {
			out := make([]int32, 0, len(rds))
			for rd := range rds {
				out = append(out, int32(idx[rd]))
			}
			sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
			dependents[i] = out
		}
	}

	p := &stealPool{
		ids:        ids,
		pending:    pending,
		dependents: dependents,
		fn:         fn,
		deques:     make([]workerDeque, workers),
	}
	p.cond = sync.NewCond(&p.parkMu)
	p.remaining.Store(int64(n))

	// Partition seeding: deal components round-robin so each worker starts
	// on its own independent slice of the graph.
	for ci, comp := range g.Components() {
		w := ci % workers
		for _, id := range comp {
			i := idx[id]
			if pending[i] == 0 {
				p.deques[w].push(int32(i))
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.run(w)
		}(w)
	}
	wg.Wait()
	if p.remaining.Load() > 0 {
		return &CycleError{Cycle: g.findCycle()}
	}
	return nil
}

// workerDeque is one worker's local queue: the owner pushes and pops at the
// back (LIFO, depth-first descent), thieves take from the front (FIFO, so a
// steal tends to grab the oldest — largest — pending subtree).
type workerDeque struct {
	mu sync.Mutex
	q  []int32
}

func (d *workerDeque) push(i int32) {
	d.mu.Lock()
	d.q = append(d.q, i)
	d.mu.Unlock()
}

func (d *workerDeque) pop() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return 0, false
	}
	i := d.q[len(d.q)-1]
	d.q = d.q[:len(d.q)-1]
	return i, true
}

func (d *workerDeque) stealFront() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return 0, false
	}
	i := d.q[0]
	d.q = d.q[1:]
	return i, true
}

type stealPool struct {
	ids        []string
	pending    []int32
	dependents [][]int32
	fn         func(id string)
	deques     []workerDeque

	remaining atomic.Int64

	parkMu sync.Mutex
	cond   *sync.Cond
	parked int
	done   bool
}

// run is one worker's loop: drain the local deque, then steal, then park.
func (p *stealPool) run(w int) {
	self := &p.deques[w]
	for {
		if i, ok := self.pop(); ok {
			p.exec(w, i)
			continue
		}
		if i, ok := p.steal(w); ok {
			p.exec(w, i)
			continue
		}
		p.parkMu.Lock()
		if p.done {
			p.parkMu.Unlock()
			return
		}
		// Re-check under the park lock: a push signals under this lock, so
		// either we see the work here or the signal reaches our Wait.
		if p.anyQueued() {
			p.parkMu.Unlock()
			continue
		}
		if p.parked == len(p.deques)-1 || p.remaining.Load() == 0 {
			// Everyone else is already parked and there is no work: either
			// the walk is complete or the leftovers form a cycle. Both end it.
			p.done = true
			p.cond.Broadcast()
			p.parkMu.Unlock()
			return
		}
		p.parked++
		p.cond.Wait()
		p.parked--
		p.parkMu.Unlock()
	}
}

// exec runs one node and publishes newly-ready dependents onto the worker's
// own deque (depth-first descent into the subtree it just unlocked).
func (p *stealPool) exec(w int, i int32) {
	p.fn(p.ids[i])
	p.remaining.Add(-1)
	ready := false
	for _, rd := range p.dependents[i] {
		if atomic.AddInt32(&p.pending[rd], -1) == 0 {
			p.deques[w].push(rd)
			ready = true
		}
	}
	if ready || p.remaining.Load() == 0 {
		p.parkMu.Lock()
		if p.parked > 0 || p.remaining.Load() == 0 {
			p.cond.Broadcast()
		}
		p.parkMu.Unlock()
	}
}

// steal scans peers round-robin from the worker's right-hand neighbour.
func (p *stealPool) steal(w int) (int32, bool) {
	for off := 1; off < len(p.deques); off++ {
		if i, ok := p.deques[(w+off)%len(p.deques)].stealFront(); ok {
			return i, true
		}
	}
	return 0, false
}

// anyQueued reports whether any deque holds work. Called under parkMu.
func (p *stealPool) anyQueued() bool {
	for i := range p.deques {
		d := &p.deques[i]
		d.mu.Lock()
		n := len(d.q)
		d.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}
