package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestStealWalkRunsAllNodesDepsFirst(t *testing.T) {
	g := New()
	// Three independent chains plus a diamond, to exercise partition seeding.
	for c := 0; c < 3; c++ {
		for i := 0; i < 10; i++ {
			g.AddNode(fmt.Sprintf("chain%d-%d", c, i))
			if i > 0 {
				mustEdge(t, g, fmt.Sprintf("chain%d-%d", c, i), fmt.Sprintf("chain%d-%d", c, i-1))
			}
		}
	}
	g.AddNode("d-top")
	g.AddNode("d-left")
	g.AddNode("d-right")
	g.AddNode("d-bottom")
	mustEdge(t, g, "d-left", "d-top")
	mustEdge(t, g, "d-right", "d-top")
	mustEdge(t, g, "d-bottom", "d-left")
	mustEdge(t, g, "d-bottom", "d-right")

	for _, workers := range []int{1, 2, 8, 64} {
		var mu sync.Mutex
		pos := map[string]int{}
		n := 0
		if err := g.StealWalk(workers, func(id string) {
			mu.Lock()
			pos[id] = n
			n++
			mu.Unlock()
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(pos) != g.Len() {
			t.Fatalf("workers=%d: ran %d of %d nodes", workers, len(pos), g.Len())
		}
		for _, node := range g.Nodes() {
			for _, dep := range g.Dependencies(node) {
				if pos[dep] > pos[node] {
					t.Fatalf("workers=%d: %s ran before its dependency %s", workers, node, dep)
				}
			}
		}
	}
}

func TestStealWalkCycle(t *testing.T) {
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	mustEdge(t, g, "c", "a")
	err := g.StealWalk(4, func(string) {})
	if _, ok := err.(*CycleError); !ok {
		t.Fatalf("want CycleError, got %v", err)
	}
}

func TestStealWalkEmptyAndSingle(t *testing.T) {
	if err := New().StealWalk(4, func(string) { t.Fatal("fn on empty graph") }); err != nil {
		t.Fatal(err)
	}
	g := New()
	g.AddNode("only")
	ran := 0
	if err := g.StealWalk(8, func(string) { ran++ }); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran=%d", ran)
	}
}

func TestStealWalkRandomDAGStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 200
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%03d", i))
		}
		// Edges only point to lower indices: acyclic by construction.
		for i := 1; i < n; i++ {
			for _, j := range rng.Perm(i)[:rng.Intn(min(i, 4))] {
				mustEdge(t, g, fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", j))
			}
		}
		var ran atomic.Int64
		if err := g.StealWalk(1+rng.Intn(16), func(string) { ran.Add(1) }); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if int(ran.Load()) != n {
			t.Fatalf("trial %d: ran %d of %d", trial, ran.Load(), n)
		}
	}
}

func TestComponentsDeterministicAndDisjoint(t *testing.T) {
	g := New()
	mustEdge(t, g, "a2", "a1")
	mustEdge(t, g, "a3", "a1")
	mustEdge(t, g, "b2", "b1")
	g.AddNode("lone")
	first := fmt.Sprint(g.Components())
	for i := 0; i < 5; i++ {
		if got := fmt.Sprint(g.Components()); got != first {
			t.Fatalf("components not deterministic: %s vs %s", first, got)
		}
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("want 3 components, got %v", comps)
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != g.Len() {
		t.Fatalf("components cover %d of %d nodes", total, g.Len())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
