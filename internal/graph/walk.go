package graph

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
)

// NodeStatus is the outcome of a node during a walk.
type NodeStatus int

// Walk outcomes.
const (
	StatusPending NodeStatus = iota
	StatusDone
	StatusFailed
	StatusSkipped // a dependency failed, so the node never ran
)

var statusNames = map[NodeStatus]string{
	StatusPending: "pending",
	StatusDone:    "done",
	StatusFailed:  "failed",
	StatusSkipped: "skipped",
}

// String returns the status name.
func (s NodeStatus) String() string { return statusNames[s] }

// WalkReport summarizes a parallel walk.
type WalkReport struct {
	Status map[string]NodeStatus
	Errors map[string]error
}

// Failed returns the failed node IDs, sorted.
func (r *WalkReport) Failed() []string {
	var out []string
	for n, s := range r.Status {
		if s == StatusFailed {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Counts returns how many nodes finished in each status.
func (r *WalkReport) Counts() (done, failed, skipped int) {
	for _, s := range r.Status {
		switch s {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		case StatusSkipped:
			skipped++
		}
	}
	return
}

// Err folds the walk result into a single error, or nil on full success.
func (r *WalkReport) Err() error {
	failed := r.Failed()
	if len(failed) == 0 {
		return nil
	}
	first := r.Errors[failed[0]]
	if len(failed) == 1 {
		return fmt.Errorf("1 operation failed: %s: %w", failed[0], first)
	}
	return fmt.Errorf("%d operations failed (first: %s: %s)", len(failed), failed[0], first)
}

// WalkOptions configure a parallel walk.
type WalkOptions struct {
	// Concurrency bounds simultaneous callbacks; <= 0 means unlimited
	// (bounded only by graph width).
	Concurrency int
	// Priority ranks ready nodes; higher runs first. Nil means FIFO in
	// lexicographic order (the "best effort graph walk" baseline). The
	// critical-path scheduler passes the node's bottom level here.
	Priority func(node string) float64
	// ContinueOnError keeps walking independent branches after a failure
	// (dependents of the failed node are always skipped). When false, the
	// walk stops scheduling any new node after the first failure.
	ContinueOnError bool
	// OnReady, when set, is called once per node the moment all of its
	// dependencies are satisfied (i.e. when it enters the ready queue). It
	// may run under the walk's internal lock and must not call back into
	// the walk; the applier uses it to attribute queue-wait vs execute time.
	OnReady func(node string)
	// Admit, when set, is consulted as each ready node is about to launch.
	// Returning false marks the node skipped (not failed) without running
	// it; in-flight nodes are unaffected and drain normally. The guarded
	// apply's failure fuse uses it to stop admitting ops in a tripped
	// domain. Like OnReady it may run under the walk's internal lock and
	// must not call back into the walk.
	Admit func(node string) bool
}

// Walk runs fn over every node respecting dependency order, with bounded
// parallelism. It always returns a complete report; the report's Err()
// aggregates failures. Context cancellation stops new scheduling and marks
// unstarted nodes as skipped.
func (g *Graph) Walk(ctx context.Context, opts WalkOptions, fn func(node string) error) *WalkReport {
	report := &WalkReport{
		Status: make(map[string]NodeStatus, len(g.nodes)),
		Errors: map[string]error{},
	}
	if err := g.Validate(); err != nil {
		// A cyclic graph cannot be walked; mark everything skipped.
		for n := range g.nodes {
			report.Status[n] = StatusSkipped
		}
		report.Errors["<graph>"] = err
		if len(g.nodes) > 0 {
			n := g.Nodes()[0]
			report.Status[n] = StatusFailed
			report.Errors[n] = err
		}
		return report
	}

	type doneMsg struct {
		node string
		err  error
	}

	var (
		mu       sync.Mutex
		pending  = make(map[string]int, len(g.nodes)) // remaining dep count
		ready    readyHeap
		running  int
		stopping bool
		doneCh   = make(chan doneMsg)
	)
	prio := opts.Priority
	if prio == nil {
		prio = func(string) float64 { return 0 }
	}
	for n := range g.nodes {
		pending[n] = len(g.deps[n])
		report.Status[n] = StatusPending
	}
	for n, d := range pending {
		if d == 0 {
			if opts.OnReady != nil {
				opts.OnReady(n)
			}
			heap.Push(&ready, readyNode{id: n, prio: prio(n)})
		}
	}

	maxConc := opts.Concurrency
	if maxConc <= 0 {
		maxConc = len(g.nodes)
		if maxConc == 0 {
			maxConc = 1
		}
	}

	// skipDependents marks all transitive dependents of n skipped.
	skipDependents := func(n string) {
		for d := range g.TransitiveDependents(n) {
			if report.Status[d] == StatusPending {
				report.Status[d] = StatusSkipped
			}
		}
	}

	launch := func() {
		for running < maxConc && ready.Len() > 0 {
			item := heap.Pop(&ready).(readyNode)
			n := item.id
			if report.Status[n] != StatusPending {
				continue // skipped while queued
			}
			if stopping || ctx.Err() != nil {
				report.Status[n] = StatusSkipped
				continue
			}
			if opts.Admit != nil && !opts.Admit(n) {
				report.Status[n] = StatusSkipped
				continue
			}
			running++
			go func(node string) {
				err := fn(node)
				doneCh <- doneMsg{node: node, err: err}
			}(n)
		}
	}

	mu.Lock()
	launch()
	for running > 0 {
		mu.Unlock()
		msg := <-doneCh
		mu.Lock()
		running--
		if msg.err != nil {
			report.Status[msg.node] = StatusFailed
			report.Errors[msg.node] = msg.err
			skipDependents(msg.node)
			if !opts.ContinueOnError {
				stopping = true
			}
		} else {
			report.Status[msg.node] = StatusDone
			for rd := range g.rdeps[msg.node] {
				pending[rd]--
				if pending[rd] == 0 && report.Status[rd] == StatusPending {
					if opts.OnReady != nil {
						opts.OnReady(rd)
					}
					heap.Push(&ready, readyNode{id: rd, prio: prio(rd)})
				}
			}
		}
		launch()
	}
	// Anything still pending had an unsatisfied dependency chain.
	for n, s := range report.Status {
		if s == StatusPending {
			report.Status[n] = StatusSkipped
		}
	}
	mu.Unlock()
	return report
}

// readyNode is an entry in the ready queue.
type readyNode struct {
	id   string
	prio float64
}

// readyHeap is a max-heap by priority with lexicographic tie-breaking for
// determinism.
type readyHeap []readyNode

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyNode)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
