package graph

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// diamond builds vm -> {nic1, nic2} -> subnet -> vpc.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mustEdge(t, g, "vm", "nic1")
	mustEdge(t, g, "vm", "nic2")
	mustEdge(t, g, "nic1", "subnet")
	mustEdge(t, g, "nic2", "subnet")
	mustEdge(t, g, "subnet", "vpc")
	return g
}

func mustEdge(t *testing.T, g *Graph, from, to string) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatal(err)
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, pair := range [][2]string{{"vpc", "subnet"}, {"subnet", "nic1"}, {"subnet", "nic2"}, {"nic1", "vm"}, {"nic2", "vm"}} {
		if pos[pair[0]] >= pos[pair[1]] {
			t.Errorf("%s must come before %s: order %v", pair[0], pair[1], order)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond(t)
	first, _ := g.TopoSort()
	for i := 0; i < 10; i++ {
		again, _ := g.TopoSort()
		if strings.Join(first, ",") != strings.Join(again, ",") {
			t.Fatalf("nondeterministic order: %v vs %v", first, again)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	mustEdge(t, g, "c", "a")
	_, err := g.TopoSort()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want CycleError", err)
	}
	if len(ce.Cycle) < 3 {
		t.Errorf("cycle = %v", ce.Cycle)
	}
	if !strings.Contains(ce.Error(), "->") {
		t.Errorf("error = %q", ce.Error())
	}
}

func TestSelfEdgeRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("self-edge must be rejected")
	}
}

func TestRemoveNode(t *testing.T) {
	g := diamond(t)
	g.RemoveNode("subnet")
	if g.HasNode("subnet") {
		t.Fatal("node still present")
	}
	if len(g.Dependencies("nic1")) != 0 {
		t.Errorf("dangling dependency: %v", g.Dependencies("nic1"))
	}
	if len(g.Dependents("vpc")) != 0 {
		t.Errorf("dangling dependent: %v", g.Dependents("vpc"))
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g := diamond(t)
	if got := g.Roots(); len(got) != 1 || got[0] != "vpc" {
		t.Errorf("roots = %v", got)
	}
	if got := g.Leaves(); len(got) != 1 || got[0] != "vm" {
		t.Errorf("leaves = %v", got)
	}
}

func TestImpactScope(t *testing.T) {
	g := diamond(t)
	scope := g.ImpactScope("subnet")
	for _, want := range []string{"subnet", "nic1", "nic2", "vm"} {
		if _, ok := scope[want]; !ok {
			t.Errorf("impact scope missing %s: %v", want, scope)
		}
	}
	if _, ok := scope["vpc"]; ok {
		t.Error("vpc is upstream of the change; it must not be in the impact scope")
	}
	// Changing a leaf affects only itself.
	scope = g.ImpactScope("vm")
	if len(scope) != 1 {
		t.Errorf("leaf scope = %v", scope)
	}
}

func TestSubgraph(t *testing.T) {
	g := diamond(t)
	sub := g.Subgraph(g.ImpactScope("subnet"))
	if sub.HasNode("vpc") {
		t.Error("subgraph leaked node outside keep set")
	}
	if len(sub.Dependencies("vm")) != 2 {
		t.Errorf("vm deps in subgraph = %v", sub.Dependencies("vm"))
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t)
	costs := map[string]time.Duration{
		"vpc": 10 * time.Second, "subnet": 5 * time.Second,
		"nic1": 8 * time.Second, "nic2": 1 * time.Second, "vm": 90 * time.Second,
	}
	level, longest, err := g.CriticalPath(func(n string) time.Duration { return costs[n] })
	if err != nil {
		t.Fatal(err)
	}
	// Longest chain: vpc(10) + subnet(5) + nic1(8) + vm(90) = 113s.
	if longest != 113*time.Second {
		t.Errorf("critical path = %v, want 113s", longest)
	}
	if level["nic1"] != 98*time.Second || level["nic2"] != 91*time.Second {
		t.Errorf("bottom levels: nic1=%v nic2=%v", level["nic1"], level["nic2"])
	}
	if level["vpc"] != 113*time.Second {
		t.Errorf("root level = %v", level["vpc"])
	}
}

func TestWalkRespectsDependencies(t *testing.T) {
	g := diamond(t)
	var mu sync.Mutex
	seen := map[string]bool{}
	report := g.Walk(context.Background(), WalkOptions{Concurrency: 4}, func(n string) error {
		mu.Lock()
		defer mu.Unlock()
		for _, dep := range g.Dependencies(n) {
			if !seen[dep] {
				return fmt.Errorf("node %s ran before its dependency %s", n, dep)
			}
		}
		seen[n] = true
		return nil
	})
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	done, failed, skipped := report.Counts()
	if done != 5 || failed != 0 || skipped != 0 {
		t.Errorf("counts = %d/%d/%d", done, failed, skipped)
	}
}

func TestWalkParallelism(t *testing.T) {
	// A wide graph of independent nodes must actually run concurrently.
	g := New()
	for i := 0; i < 16; i++ {
		g.AddNode(fmt.Sprintf("n%02d", i))
	}
	var cur, peak int32
	report := g.Walk(context.Background(), WalkOptions{Concurrency: 8}, func(n string) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p < 2 {
		t.Errorf("observed peak concurrency %d; expected parallel execution", p)
	}
	if p := atomic.LoadInt32(&peak); p > 8 {
		t.Errorf("concurrency bound violated: peak %d > 8", p)
	}
}

func TestWalkFailureSkipsDependents(t *testing.T) {
	g := diamond(t)
	boom := errors.New("provisioning failed")
	report := g.Walk(context.Background(), WalkOptions{Concurrency: 2, ContinueOnError: true}, func(n string) error {
		if n == "subnet" {
			return boom
		}
		return nil
	})
	if report.Status["subnet"] != StatusFailed {
		t.Errorf("subnet = %s", report.Status["subnet"])
	}
	for _, skipped := range []string{"nic1", "nic2", "vm"} {
		if report.Status[skipped] != StatusSkipped {
			t.Errorf("%s = %s, want skipped", skipped, report.Status[skipped])
		}
	}
	if report.Status["vpc"] != StatusDone {
		t.Errorf("vpc = %s, want done", report.Status["vpc"])
	}
	if report.Err() == nil {
		t.Error("report must carry the failure")
	}
}

func TestWalkStopOnErrorHaltsIndependentBranches(t *testing.T) {
	g := New()
	// "a-fail" sorts first, so with concurrency 1 it runs before the
	// independent z-chain; its failure must stop the whole walk.
	g.AddNode("a-fail")
	mustEdge(t, g, "z2", "z1")
	var ran int32
	report := g.Walk(context.Background(), WalkOptions{Concurrency: 1}, func(n string) error {
		if n == "a-fail" {
			return errors.New("boom")
		}
		atomic.AddInt32(&ran, 1)
		return nil
	})
	_, failed, _ := report.Counts()
	if failed != 1 {
		t.Errorf("failed = %d", failed)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Errorf("walk continued after failure: ran %d", ran)
	}
	if report.Status["z1"] != StatusSkipped || report.Status["z2"] != StatusSkipped {
		t.Errorf("independent branch not skipped: z1=%s z2=%s",
			report.Status["z1"], report.Status["z2"])
	}
}

func TestWalkContextCancellation(t *testing.T) {
	g := New()
	for i := 0; i < 50; i++ {
		g.AddNode(fmt.Sprintf("n%02d", i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	report := g.Walk(ctx, WalkOptions{Concurrency: 1}, func(n string) error {
		if atomic.AddInt32(&ran, 1) == 3 {
			cancel()
		}
		return nil
	})
	done, _, skipped := report.Counts()
	if done >= 50 || skipped == 0 {
		t.Errorf("cancellation ineffective: done=%d skipped=%d", done, skipped)
	}
}

func TestWalkPriorityOrder(t *testing.T) {
	// With concurrency 1, ready nodes must run in priority order.
	g := New()
	for _, n := range []string{"low", "mid", "high"} {
		g.AddNode(n)
	}
	prio := map[string]float64{"low": 1, "mid": 5, "high": 9}
	var order []string
	var mu sync.Mutex
	g.Walk(context.Background(), WalkOptions{
		Concurrency: 1,
		Priority:    func(n string) float64 { return prio[n] },
	}, func(n string) error {
		mu.Lock()
		order = append(order, n)
		mu.Unlock()
		return nil
	})
	want := "high,mid,low"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestWalkCyclicGraphFails(t *testing.T) {
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "a")
	report := g.Walk(context.Background(), WalkOptions{}, func(n string) error { return nil })
	if report.Err() == nil {
		t.Fatal("walking a cyclic graph must fail")
	}
}

func TestWalkEmptyGraph(t *testing.T) {
	g := New()
	report := g.Walk(context.Background(), WalkOptions{}, func(n string) error { return nil })
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random DAGs (edges only from higher to lower index, so
// acyclic by construction), TopoSort yields a valid linearization and Walk
// completes every node.
func TestRandomDAGPropertiesQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%03d", i))
		}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.15 {
					if err := g.AddEdge(fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", j)); err != nil {
						return false
					}
				}
			}
		}
		order, err := g.TopoSort()
		if err != nil || len(order) != n {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, from := range g.Nodes() {
			for _, to := range g.Dependencies(from) {
				if pos[to] >= pos[from] {
					return false
				}
			}
		}
		report := g.Walk(context.Background(), WalkOptions{Concurrency: 4}, func(string) error { return nil })
		done, _, _ := report.Counts()
		return done == n && report.Err() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.RemoveNode("vm")
	if !g.HasNode("vm") {
		t.Error("clone mutation leaked into original")
	}
	if c.Len() != g.Len()-1 {
		t.Errorf("clone len = %d", c.Len())
	}
}

func TestDOTOutput(t *testing.T) {
	g := New()
	mustEdge(t, g, "a", "b")
	dot := g.DOT("deps")
	if !strings.Contains(dot, `"a" -> "b"`) {
		t.Errorf("DOT = %s", dot)
	}
}
