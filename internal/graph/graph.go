// Package graph implements the resource dependency graph at the heart of the
// Cloudless deployment engine: a DAG over resource addresses with
// deterministic topological ordering, cycle reporting, critical-path
// analysis (§3.3 "non-critical paths could make way for critical paths"),
// impact-scope computation for incremental planning (§3.3 "identify the
// impact scope of a deployment change"), and a concurrency-bounded parallel
// walk with pluggable scheduling priority.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Graph is a directed graph over string node IDs. An edge A → B declares
// that A depends on B: B must finish before A may start. The zero value is
// not ready to use; call New.
type Graph struct {
	nodes map[string]struct{}
	deps  map[string]map[string]struct{} // node -> its dependencies
	rdeps map[string]map[string]struct{} // node -> its dependents
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		nodes: map[string]struct{}{},
		deps:  map[string]map[string]struct{}{},
		rdeps: map[string]map[string]struct{}{},
	}
}

// AddNode inserts a node; adding an existing node is a no-op.
func (g *Graph) AddNode(id string) {
	g.nodes[id] = struct{}{}
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodes[id]
	return ok
}

// AddEdge declares that from depends on to. Both nodes are created if
// missing. Self-edges are rejected.
func (g *Graph) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("graph: self-dependency on %q", from)
	}
	g.AddNode(from)
	g.AddNode(to)
	if g.deps[from] == nil {
		g.deps[from] = map[string]struct{}{}
	}
	g.deps[from][to] = struct{}{}
	if g.rdeps[to] == nil {
		g.rdeps[to] = map[string]struct{}{}
	}
	g.rdeps[to][from] = struct{}{}
	return nil
}

// RemoveNode deletes a node and all of its edges.
func (g *Graph) RemoveNode(id string) {
	delete(g.nodes, id)
	for dep := range g.deps[id] {
		delete(g.rdeps[dep], id)
	}
	delete(g.deps, id)
	for rd := range g.rdeps[id] {
		delete(g.deps[rd], id)
	}
	delete(g.rdeps, id)
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns all node IDs, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Dependencies returns the IDs a node depends on, sorted.
func (g *Graph) Dependencies(id string) []string {
	return sortedKeys(g.deps[id])
}

// Dependents returns the IDs that depend on a node, sorted.
func (g *Graph) Dependents(id string) []string {
	return sortedKeys(g.rdeps[id])
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for n := range g.nodes {
		c.AddNode(n)
	}
	for from, tos := range g.deps {
		for to := range tos {
			_ = c.AddEdge(from, to)
		}
	}
	return c
}

// CycleError reports a dependency cycle with the nodes along it.
type CycleError struct {
	Cycle []string
}

// Error renders the cycle in source-like notation.
func (e *CycleError) Error() string {
	return "dependency cycle: " + strings.Join(e.Cycle, " -> ")
}

// TopoSort returns the nodes in dependency-first order. Ties are broken
// lexicographically so output is deterministic. Returns a *CycleError if the
// graph is cyclic.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.deps[n])
	}
	var ready []string
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	out := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		var unlocked []string
		for rd := range g.rdeps[n] {
			indeg[rd]--
			if indeg[rd] == 0 {
				unlocked = append(unlocked, rd)
			}
		}
		if len(unlocked) > 0 {
			ready = append(ready, unlocked...)
			sort.Strings(ready)
		}
	}
	if len(out) != len(g.nodes) {
		return nil, &CycleError{Cycle: g.findCycle()}
	}
	return out, nil
}

// findCycle locates one cycle for error reporting.
func (g *Graph) findCycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	parent := map[string]string{}
	var cycle []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = gray
		for _, d := range g.Dependencies(n) {
			switch color[d] {
			case white:
				parent[d] = n
				if dfs(d) {
					return true
				}
			case gray:
				// Found a back edge n -> d; reconstruct the cycle.
				cycle = []string{d}
				for cur := n; cur != d; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				cycle = append(cycle, d)
				// Reverse to dependency order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range g.Nodes() {
		if color[n] == white && dfs(n) {
			break
		}
	}
	return cycle
}

// Validate returns a CycleError if the graph has a cycle.
func (g *Graph) Validate() error {
	_, err := g.TopoSort()
	return err
}

// Roots returns nodes with no dependencies, sorted.
func (g *Graph) Roots() []string {
	var out []string
	for n := range g.nodes {
		if len(g.deps[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Leaves returns nodes with no dependents, sorted.
func (g *Graph) Leaves() []string {
	var out []string
	for n := range g.nodes {
		if len(g.rdeps[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TransitiveDependents returns every node reachable from the seeds along
// dependent edges, excluding the seeds themselves.
func (g *Graph) TransitiveDependents(seeds ...string) map[string]struct{} {
	return g.reach(g.rdeps, seeds)
}

// TransitiveDependencies returns every node the seeds transitively depend
// on, excluding the seeds themselves.
func (g *Graph) TransitiveDependencies(seeds ...string) map[string]struct{} {
	return g.reach(g.deps, seeds)
}

func (g *Graph) reach(adj map[string]map[string]struct{}, seeds []string) map[string]struct{} {
	seen := map[string]struct{}{}
	stack := append([]string(nil), seeds...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range adj[n] {
			if _, ok := seen[next]; !ok {
				seen[next] = struct{}{}
				stack = append(stack, next)
			}
		}
	}
	for _, s := range seeds {
		delete(seen, s)
	}
	return seen
}

// ImpactScope computes the set of nodes a change to the seed nodes can
// affect: the seeds plus all transitive dependents (whose inputs may change)
// — the §3.3 "impact scope" that incremental planning confines work to.
func (g *Graph) ImpactScope(changed ...string) map[string]struct{} {
	scope := g.TransitiveDependents(changed...)
	for _, c := range changed {
		if g.HasNode(c) {
			scope[c] = struct{}{}
		}
	}
	return scope
}

// Subgraph returns the induced subgraph over the kept nodes.
func (g *Graph) Subgraph(keep map[string]struct{}) *Graph {
	s := New()
	for n := range keep {
		if g.HasNode(n) {
			s.AddNode(n)
		}
	}
	for from := range keep {
		for to := range g.deps[from] {
			if _, ok := keep[to]; ok {
				_ = s.AddEdge(from, to)
			}
		}
	}
	return s
}

// CriticalPath computes, for every node, the length of the longest cost
// chain that starts at the node and runs through its dependents (the node's
// "bottom level" in list-scheduling terms). Scheduling ready nodes by
// descending bottom level is the classic critical-path-first heuristic.
// Also returns the total critical path length of the graph.
func (g *Graph) CriticalPath(cost func(string) time.Duration) (map[string]time.Duration, time.Duration, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	level := make(map[string]time.Duration, len(order))
	var longest time.Duration
	// Process in reverse topological order so dependents are done first.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		var maxDep time.Duration
		for rd := range g.rdeps[n] {
			if level[rd] > maxDep {
				maxDep = level[rd]
			}
		}
		level[n] = cost(n) + maxDep
		if level[n] > longest {
			longest = level[n]
		}
	}
	return level, longest, nil
}

// DOT renders the graph in Graphviz format for debugging.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, from := range g.Nodes() {
		for _, to := range g.Dependencies(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
