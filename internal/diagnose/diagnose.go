// Package diagnose translates cloud-level error messages back to the
// IaC-level program — the §3.5 debugger. Cloud providers report failures in
// API vocabulary ("specified NIC is not found") that obscures the real,
// configuration-level cause (the NIC and VM were configured in different
// regions) and never points at lines of code. The diagnoser pattern-matches
// error classes, cross-references the configuration and the knowledge base,
// and produces a root cause, an exact source range, and concrete fixes.
package diagnose

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/hcl"
	"cloudless/internal/schema"
)

// Diagnosis is the IaC-level explanation of a cloud-level failure.
type Diagnosis struct {
	// Addr is the failing instance.
	Addr string
	// Attr is the configuration attribute implicated, when identifiable.
	Attr string
	// Range points at the offending configuration source.
	Range hcl.Range
	// CloudMessage is the raw provider error.
	CloudMessage string
	// RootCause is the IaC-level explanation.
	RootCause string
	// Suggestions are concrete fixes, most specific first.
	Suggestions []string
	// RuleID references the knowledge-base rule involved, if any.
	RuleID string
}

// String renders the diagnosis as a compiler-style report.
func (d *Diagnosis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "error applying %s", d.Addr)
	if d.Range.Filename != "" {
		fmt.Fprintf(&b, " (at %s)", d.Range)
	}
	fmt.Fprintf(&b, "\n  cloud said:  %s\n  root cause:  %s\n", d.CloudMessage, d.RootCause)
	for _, s := range d.Suggestions {
		fmt.Fprintf(&b, "  fix:         %s\n", s)
	}
	return b.String()
}

var (
	notFoundRe   = regexp.MustCompile(`specified ([a-z ]+) "([^"]+)" is not found`)
	comboRe      = regexp.MustCompile(`property "([^"]+)" may only be set when "([^"]+)" is (.+?) \(got`)
	badValueRe   = regexp.MustCompile(`InvalidParameterValue: "([^"]+)" is not a valid value for "([^"]+)"`)
	missingReqRe = regexp.MustCompile(`required property "([^"]+)" was not provided`)
	overlapRe    = regexp.MustCompile(`AddressSpaceOverlap`)
	quotaRe      = regexp.MustCompile(`QuotaExceeded`)
	conflictRe   = regexp.MustCompile(`Conflict: a ([a-z_ ]+) named "([^"]+)" already exists in (\S+)`)
	throttleRe   = regexp.MustCompile(`TooManyRequests`)
	forceNewRe   = regexp.MustCompile(`property "([^"]+)" cannot be changed after creation`)
)

// Explain builds a diagnosis for an error returned while applying inst.
// ex provides the configuration context used to find the real cause.
func Explain(err error, inst *config.Instance, ex *config.Expansion) *Diagnosis {
	d := &Diagnosis{CloudMessage: err.Error()}
	if inst != nil {
		d.Addr = inst.Addr
		d.Range = inst.DeclRange
	}
	var ae *cloud.APIError
	if !errors.As(err, &ae) {
		d.RootCause = "the failure did not come from the cloud API; see the underlying error"
		return d
	}
	d.CloudMessage = ae.Message

	switch {
	case notFoundRe.MatchString(ae.Message):
		explainNotFound(d, ae, inst, ex)
	case comboRe.MatchString(ae.Message):
		m := comboRe.FindStringSubmatch(ae.Message)
		d.Attr = m[1]
		d.RuleID = coRequirementRule(inst, m[1])
		d.RootCause = fmt.Sprintf("attribute %q has a co-requirement: it is only accepted when %q is %s", m[1], m[2], m[3])
		d.Suggestions = append(d.Suggestions,
			fmt.Sprintf("set %s = %s on %s, or remove %s", m[2], m[3], d.Addr, m[1]))
		pointAtAttr(d, inst, m[1])
	case badValueRe.MatchString(ae.Message):
		m := badValueRe.FindStringSubmatch(ae.Message)
		d.Attr = m[2]
		d.RootCause = fmt.Sprintf("%q is outside the allowed value set for %q", m[1], m[2])
		if rs, ok := schema.LookupResource(ae.Type); ok {
			if a := rs.Attr(m[2]); a != nil && len(a.OneOf) > 0 {
				d.Suggestions = append(d.Suggestions,
					fmt.Sprintf("use one of: %s", strings.Join(a.OneOf, ", ")))
			}
		}
		pointAtAttr(d, inst, m[2])
	case missingReqRe.MatchString(ae.Message):
		m := missingReqRe.FindStringSubmatch(ae.Message)
		d.Attr = m[1]
		d.RootCause = fmt.Sprintf("the configuration never sets required attribute %q", m[1])
		d.Suggestions = append(d.Suggestions, fmt.Sprintf("add %s = ... to %s", m[1], d.Addr))
	case overlapRe.MatchString(ae.Message):
		d.RootCause = "the two peered networks have overlapping address spaces; peering requires disjoint CIDR ranges"
		d.RuleID = "azure/peered-vnets-no-cidr-overlap"
		d.Suggestions = append(d.Suggestions,
			"renumber one network's address_space so the ranges are disjoint",
			"run `cloudlessctl validate` before applying: this violation is detectable at compile time")
	case quotaRe.MatchString(ae.Message):
		d.RootCause = "the per-region quota for this resource type is exhausted"
		d.Suggestions = append(d.Suggestions,
			"reduce count/for_each multiplicity or spread instances across regions",
			"request a quota increase from the provider")
	case conflictRe.MatchString(ae.Message):
		m := conflictRe.FindStringSubmatch(ae.Message)
		d.Attr = "name"
		d.RootCause = fmt.Sprintf("another %s named %q already exists in %s; names are unique per region", m[1], m[2], m[3])
		d.Suggestions = append(d.Suggestions,
			"choose a different name or import the existing resource with `cloudlessctl import`")
		pointAtAttr(d, inst, "name")
	case throttleRe.MatchString(ae.Message):
		d.RootCause = "the provider throttled API calls; the operation ran out of retries"
		d.Suggestions = append(d.Suggestions,
			"lower apply concurrency or raise the retry budget")
	case forceNewRe.MatchString(ae.Message):
		m := forceNewRe.FindStringSubmatch(ae.Message)
		d.Attr = m[1]
		d.RootCause = fmt.Sprintf("attribute %q is immutable after creation; an in-place update cannot change it", m[1])
		d.Suggestions = append(d.Suggestions,
			fmt.Sprintf("plan a replacement (the planner does this automatically when %q changes in configuration)", m[1]))
		pointAtAttr(d, inst, m[1])
	default:
		d.RootCause = "unrecognized cloud error; see the raw message"
		if ae.Retryable {
			d.Suggestions = append(d.Suggestions, "the error is transient; retrying usually succeeds")
		}
	}
	return d
}

// explainNotFound handles the paper's flagship example: "VM creation failed
// because specified NIC is not found". The referenced resource usually does
// exist — in the wrong region — so the diagnoser checks the configuration
// for a region mismatch before accepting the message at face value.
func explainNotFound(d *Diagnosis, ae *cloud.APIError, inst *config.Instance, ex *config.Expansion) {
	m := notFoundRe.FindStringSubmatch(ae.Message)
	targetNoun, targetID := m[1], m[2]
	d.RootCause = fmt.Sprintf("the referenced %s %q was not visible to the API call", targetNoun, targetID)

	if inst == nil || ex == nil {
		return
	}
	rs, ok := schema.LookupResource(inst.Type)
	if !ok {
		return
	}
	// Find the reference attribute whose noun matches, then the referenced
	// configuration instance, and compare regions.
	for name, a := range rs.Attrs {
		if a.Semantic.Kind != schema.SemResourceRef {
			continue
		}
		if prettyAttrNoun(name) != targetNoun {
			continue
		}
		d.Attr = name
		pointAtAttr(d, inst, name)
		for _, ref := range referencedInstances(inst, name, ex) {
			if ref.Region != "" && inst.Region != "" && ref.Region != inst.Region {
				d.RuleID = sameRegionRule(inst)
				d.RootCause = fmt.Sprintf(
					"%s exists but lives in region %q while %s is being created in %q; "+
						"the provider scopes lookups by region, so it reports \"not found\" instead of the real cause",
					ref.Addr, ref.Region, inst.Addr, inst.Region)
				d.Suggestions = append(d.Suggestions,
					fmt.Sprintf("set the same region on %s and %s", inst.Addr, ref.Addr),
					fmt.Sprintf("move %s to %q or %s to %q", ref.Addr, inst.Region, inst.Addr, ref.Region))
				return
			}
		}
		d.Suggestions = append(d.Suggestions,
			fmt.Sprintf("verify that %s is created before %s and is in the same region", name, inst.Addr))
		return
	}
}

// pointAtAttr aims the diagnosis range at the attribute's source line.
func pointAtAttr(d *Diagnosis, inst *config.Instance, attr string) {
	if inst == nil {
		return
	}
	if rng, ok := inst.AttrRange[attr]; ok {
		d.Range = rng
	}
}

// referencedInstances resolves a reference attribute to configuration
// instances.
func referencedInstances(inst *config.Instance, attr string, ex *config.Expansion) []*config.Instance {
	expr, ok := inst.Attrs[attr]
	if !ok {
		return nil
	}
	var out []*config.Instance
	for _, tr := range expr.Variables() {
		root := tr.RootName()
		if _, isType := schema.LookupResource(root); !isType || len(tr) < 2 {
			continue
		}
		nameStep, ok := tr[1].(hcl.TraverseAttr)
		if !ok {
			continue
		}
		addr := root + "." + nameStep.Name
		if inst.ModulePath != "" {
			addr = "module." + inst.ModulePath + "." + addr
		}
		out = append(out, ex.InstancesOf(addr)...)
	}
	return out
}

func prettyAttrNoun(attr string) string {
	a := strings.TrimSuffix(strings.TrimSuffix(attr, "_ids"), "_id")
	return strings.ReplaceAll(a, "_", " ")
}

func sameRegionRule(inst *config.Instance) string {
	for _, r := range schema.DefaultKB().RulesFor(inst.Type) {
		if r.Kind == schema.RuleSameRegion {
			return r.ID
		}
	}
	return ""
}

func coRequirementRule(inst *config.Instance, attr string) string {
	if inst == nil {
		return ""
	}
	for _, r := range schema.DefaultKB().RulesFor(inst.Type) {
		if r.Kind == schema.RuleAttrRequiresValue && r.Attr == attr {
			return r.ID
		}
	}
	return ""
}
