package diagnose

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
)

// expand loads and expands a config snippet.
func expand(t *testing.T, src string) *config.Expansion {
	t.Helper()
	m, diags := config.Load(map[string]string{"main.ccl": src})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	return ex
}

// TestPaperNICExample reproduces §3.5's example end to end: the cloud says
// "NIC is not found", and the diagnoser reports the real cause — the NIC and
// VM were not configured in the same region — pointing at the config line.
func TestPaperNICExample(t *testing.T) {
	src := `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "westus"
}
resource "azure_virtual_network" "v" {
  name           = "v"
  location       = "westus"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}
resource "azure_subnet" "s" {
  virtual_network_id = azure_virtual_network.v.id
  address_prefix     = "10.0.1.0/24"
  location           = "westus"
}
resource "azure_network_interface" "nic" {
  name      = "nic"
  location  = "westus"
  subnet_id = azure_subnet.s.id
}
resource "azure_virtual_machine" "vm1" {
  name     = "vm1"
  location = "eastus"
  nic_ids  = [azure_network_interface.nic.id]
}
`
	ex := expand(t, src)
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	ctx := context.Background()

	// Create the NIC chain in westus for real.
	rg, _ := sim.Create(ctx, cloud.CreateRequest{Type: "azure_resource_group", Region: "westus",
		Attrs: map[string]eval.Value{"name": eval.String("rg"), "location": eval.String("westus")}})
	v, _ := sim.Create(ctx, cloud.CreateRequest{Type: "azure_virtual_network", Region: "westus",
		Attrs: map[string]eval.Value{"name": eval.String("v"), "resource_group": eval.String(rg.ID),
			"address_space": eval.Strings("10.0.0.0/16")}})
	s, _ := sim.Create(ctx, cloud.CreateRequest{Type: "azure_subnet", Region: "westus",
		Attrs: map[string]eval.Value{"virtual_network_id": eval.String(v.ID),
			"address_prefix": eval.String("10.0.1.0/24")}})
	nic, err := sim.Create(ctx, cloud.CreateRequest{Type: "azure_network_interface", Region: "westus",
		Attrs: map[string]eval.Value{"name": eval.String("nic"), "subnet_id": eval.String(s.ID)}})
	if err != nil {
		t.Fatal(err)
	}

	// The VM create in eastus fails with the misleading cloud error.
	_, err = sim.Create(ctx, cloud.CreateRequest{Type: "azure_virtual_machine", Region: "eastus",
		Attrs: map[string]eval.Value{"name": eval.String("vm1"), "nic_ids": eval.Strings(nic.ID)}})
	if err == nil {
		t.Fatal("expected cloud failure")
	}
	if !strings.Contains(err.Error(), "not found") {
		t.Fatalf("cloud error = %v", err)
	}

	vm := ex.ByAddr["azure_virtual_machine.vm1"]
	d := Explain(err, vm, ex)

	if !strings.Contains(d.RootCause, "westus") || !strings.Contains(d.RootCause, "eastus") {
		t.Errorf("root cause misses the region mismatch: %q", d.RootCause)
	}
	if d.Attr != "nic_ids" {
		t.Errorf("attr = %q", d.Attr)
	}
	if d.RuleID != "azure/vm-nic-same-region" {
		t.Errorf("rule = %q", d.RuleID)
	}
	// The range points at the nic_ids line in main.ccl (line 25).
	if d.Range.Filename != "main.ccl" || d.Range.Start.Line != 25 {
		t.Errorf("range = %v, want main.ccl line 25", d.Range)
	}
	if len(d.Suggestions) == 0 || !strings.Contains(d.Suggestions[0], "region") {
		t.Errorf("suggestions = %v", d.Suggestions)
	}
	if !strings.Contains(d.String(), "root cause") {
		t.Errorf("render = %q", d.String())
	}
}

func TestExplainCoRequirement(t *testing.T) {
	src := `
resource "azure_virtual_machine" "vm" {
  name           = "vm"
  nic_ids        = ["nic-x"]
  admin_password = "hunter2"
}
`
	ex := expand(t, src)
	err := &cloud.APIError{Code: cloud.CodeInvalid, Op: "create", Type: "azure_virtual_machine",
		Message: `InvalidParameterCombination: property "admin_password" may only be set when "disable_password" is false (got true)`}
	d := Explain(err, ex.ByAddr["azure_virtual_machine.vm"], ex)
	if d.Attr != "admin_password" {
		t.Errorf("attr = %q", d.Attr)
	}
	if d.RuleID != "azure/vm-password-requires-enable" {
		t.Errorf("rule = %q", d.RuleID)
	}
	if len(d.Suggestions) == 0 || !strings.Contains(d.Suggestions[0], "disable_password") {
		t.Errorf("suggestions = %v", d.Suggestions)
	}
	if d.Range.Start.Line != 5 {
		t.Errorf("range line = %d, want 5 (the admin_password line)", d.Range.Start.Line)
	}
}

func TestExplainBadEnumValue(t *testing.T) {
	src := `
resource "aws_virtual_machine" "vm" {
  name          = "vm"
  nic_ids       = ["nic-1"]
  instance_type = "t9.mega"
}
`
	ex := expand(t, src)
	err := &cloud.APIError{Code: cloud.CodeInvalid, Op: "create", Type: "aws_virtual_machine",
		Message: `InvalidParameterValue: "t9.mega" is not a valid value for "instance_type"`}
	d := Explain(err, ex.ByAddr["aws_virtual_machine.vm"], ex)
	if d.Attr != "instance_type" {
		t.Errorf("attr = %q", d.Attr)
	}
	if len(d.Suggestions) == 0 || !strings.Contains(d.Suggestions[0], "t3.micro") {
		t.Errorf("suggestions should list allowed values: %v", d.Suggestions)
	}
}

func TestExplainQuotaThrottleConflict(t *testing.T) {
	ex := expand(t, `resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }`)
	inst := ex.ByAddr["aws_vpc.v"]

	cases := []struct {
		msg  string
		want string
	}{
		{"QuotaExceeded: limit of 5 aws_vpc per region reached", "quota"},
		{"TooManyRequests: request rate exceeded", "throttled"},
		{`Conflict: a vpc named "main" already exists in us-east-1`, "unique per region"},
		{`InvalidOperation: property "cidr_block" cannot be changed after creation; the resource must be recreated`, "immutable"},
	}
	for _, c := range cases {
		d := Explain(&cloud.APIError{Code: 400, Message: c.msg}, inst, ex)
		if !strings.Contains(strings.ToLower(d.RootCause), c.want) {
			t.Errorf("msg %q: root cause %q does not mention %q", c.msg, d.RootCause, c.want)
		}
	}
}

func TestExplainNonCloudError(t *testing.T) {
	d := Explain(errors.New("plain failure"), nil, nil)
	if d.RootCause == "" {
		t.Error("no root cause for plain error")
	}
}

func TestExplainOverlapSuggestsValidate(t *testing.T) {
	ex := expand(t, `resource "aws_vpc" "v" { cidr_block = "10.0.0.0/16" }`)
	d := Explain(&cloud.APIError{Code: 400,
		Message: "AddressSpaceOverlap: cannot peer networks a and b"}, ex.ByAddr["aws_vpc.v"], ex)
	found := false
	for _, s := range d.Suggestions {
		if strings.Contains(s, "validate") {
			found = true
		}
	}
	if !found {
		t.Errorf("should point the user at compile-time validation: %v", d.Suggestions)
	}
}
