package rollback

import (
	"context"
	"testing"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/state"
)

func mkState(mut func(*state.State)) *state.State {
	s := state.New()
	s.Set(&state.ResourceState{
		Addr: "aws_vpc.main", Type: "aws_vpc", ID: "vpc-1", Region: "us-east-1",
		Attrs: map[string]eval.Value{
			"id": eval.String("vpc-1"), "name": eval.String("main"),
			"cidr_block": eval.String("10.0.0.0/16"), "enable_dns": eval.True,
		},
	})
	s.Set(&state.ResourceState{
		Addr: "aws_subnet.s", Type: "aws_subnet", ID: "sub-1", Region: "us-east-1",
		Attrs: map[string]eval.Value{
			"id": eval.String("sub-1"), "vpc_id": eval.String("vpc-1"),
			"cidr_block": eval.String("10.0.1.0/24"),
		},
		Dependencies: []string{"aws_vpc.main"},
	})
	s.Set(&state.ResourceState{
		Addr: "aws_storage_bucket.b", Type: "aws_storage_bucket", ID: "bkt-1", Region: "us-east-1",
		Attrs: map[string]eval.Value{
			"id": eval.String("bkt-1"), "name": eval.String("data"), "versioning": eval.False,
		},
	})
	if mut != nil {
		mut(s)
	}
	return s
}

func TestComputeNoDiff(t *testing.T) {
	cur, tgt := mkState(nil), mkState(nil)
	p := Compute(cur, tgt)
	if len(p.Steps) != 0 {
		t.Fatalf("steps = %+v", p.Steps)
	}
}

func TestComputeInPlaceRevert(t *testing.T) {
	cur := mkState(func(s *state.State) {
		// A mutable attribute changed since the target snapshot.
		s.Get("aws_storage_bucket.b").Attrs["versioning"] = eval.True
	})
	tgt := mkState(nil)
	p := Compute(cur, tgt)
	if p.Reverts != 1 || p.Redeployments != 0 {
		t.Fatalf("%s: %+v", p.Summary(), p.Steps)
	}
	if p.Steps[0].Kind != RevertInPlace || p.Steps[0].Addr != "aws_storage_bucket.b" {
		t.Errorf("step = %+v", p.Steps[0])
	}
}

func TestComputeIrreversibleForcesRecreate(t *testing.T) {
	cur := mkState(func(s *state.State) {
		// cidr_block is ForceNew: reverting requires recreation.
		s.Get("aws_vpc.main").Attrs["cidr_block"] = eval.String("10.99.0.0/16")
	})
	tgt := mkState(nil)
	p := Compute(cur, tgt)
	var vpcStep *Step
	for i := range p.Steps {
		if p.Steps[i].Addr == "aws_vpc.main" {
			vpcStep = &p.Steps[i]
		}
	}
	if vpcStep == nil || vpcStep.Kind != Recreate {
		t.Fatalf("steps = %+v", p.Steps)
	}
	// The subnet references the VPC through a ForceNew attr -> cascades.
	var subStep *Step
	for i := range p.Steps {
		if p.Steps[i].Addr == "aws_subnet.s" {
			subStep = &p.Steps[i]
		}
	}
	if subStep == nil || subStep.Kind != Recreate {
		t.Fatalf("recreation did not cascade to the subnet: %+v", p.Steps)
	}
	// But the bucket (independent) is untouched.
	for _, s := range p.Steps {
		if s.Addr == "aws_storage_bucket.b" {
			t.Errorf("independent resource included: %+v", s)
		}
	}
	if p.Redeployments != 2 {
		t.Errorf("redeployments = %d, want 2", p.Redeployments)
	}
}

func TestComputeMinimizesRedeployment(t *testing.T) {
	// Versus the naive "destroy everything and re-apply" baseline, only
	// the genuinely irreversible part is redeployed.
	cur := mkState(func(s *state.State) {
		s.Get("aws_storage_bucket.b").Attrs["versioning"] = eval.True // reversible
		s.Get("aws_vpc.main").Attrs["enable_dns"] = eval.False        // reversible
	})
	tgt := mkState(nil)
	p := Compute(cur, tgt)
	if p.Redeployments != 0 || p.Reverts != 2 {
		t.Fatalf("%s", p.Summary())
	}
}

func TestComputeExtraAndMissing(t *testing.T) {
	cur := mkState(func(s *state.State) {
		s.Set(&state.ResourceState{Addr: "aws_dns_record.tmp", Type: "aws_dns_record", ID: "dns-9",
			Attrs: map[string]eval.Value{"id": eval.String("dns-9"), "name": eval.String("x.example"), "value": eval.String("1.2.3.4")}})
		s.Remove("aws_storage_bucket.b")
	})
	tgt := mkState(nil)
	p := Compute(cur, tgt)
	kinds := map[string]StepKind{}
	for _, s := range p.Steps {
		kinds[s.Addr] = s.Kind
	}
	if kinds["aws_dns_record.tmp"] != DeleteExtra {
		t.Errorf("extra = %v", kinds)
	}
	if kinds["aws_storage_bucket.b"] != CreateMissing {
		t.Errorf("missing = %v", kinds)
	}
	// Deletes come before creates in the plan.
	if p.Steps[0].Kind != DeleteExtra {
		t.Errorf("order = %+v", p.Steps)
	}
}

// TestExecuteAgainstSim runs a full rollback against the simulator, covering
// ID remapping when a parent is recreated.
func TestExecuteAgainstSim(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	ctx := context.Background()

	// Deploy v1 by hand: vpc + subnet.
	vpc, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("main"), "cidr_block": eval.String("10.0.0.0/16")}})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
		Attrs: map[string]eval.Value{"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("10.0.1.0/24")}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := state.New()
	v1.Set(&state.ResourceState{Addr: "aws_vpc.main", Type: "aws_vpc", ID: vpc.ID, Region: "us-east-1", Attrs: vpc.Attrs})
	v1.Set(&state.ResourceState{Addr: "aws_subnet.s", Type: "aws_subnet", ID: sub.ID, Region: "us-east-1",
		Attrs: sub.Attrs, Dependencies: []string{"aws_vpc.main"}})

	// "Bad update": someone replaced the VPC (new cidr) and repointed the
	// subnet; now roll back to v1.
	cur := v1.Clone()
	cur.Get("aws_vpc.main").Attrs["cidr_block"] = eval.String("10.99.0.0/16")

	p := Compute(cur, v1)
	if p.Redeployments == 0 {
		t.Fatalf("expected redeployments: %s", p.Summary())
	}
	// The current cloud reality must match `cur` for execution; simulate the
	// bad update for real: delete subnet+vpc, recreate with new cidr.
	if err := sim.Delete(ctx, "aws_subnet", sub.ID, "ops"); err != nil {
		t.Fatal(err)
	}
	if err := sim.Delete(ctx, "aws_vpc", vpc.ID, "ops"); err != nil {
		t.Fatal(err)
	}
	vpc2, _ := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("main"), "cidr_block": eval.String("10.99.0.0/16")}})
	sub2, _ := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
		Attrs: map[string]eval.Value{"vpc_id": eval.String(vpc2.ID), "cidr_block": eval.String("10.99.1.0/24")}})
	cur = state.New()
	cur.Set(&state.ResourceState{Addr: "aws_vpc.main", Type: "aws_vpc", ID: vpc2.ID, Region: "us-east-1", Attrs: vpc2.Attrs})
	cur.Set(&state.ResourceState{Addr: "aws_subnet.s", Type: "aws_subnet", ID: sub2.ID, Region: "us-east-1",
		Attrs: sub2.Attrs, Dependencies: []string{"aws_vpc.main"}})

	p = Compute(cur, v1)
	after, err := Execute(ctx, sim, cur, v1, p, "cloudless")
	if err != nil {
		t.Fatalf("execute: %s", err)
	}
	// The rolled-back VPC has the original CIDR and the subnet points at
	// the *new* VPC ID (remapped), not the stale recorded one.
	gotVPC := after.Get("aws_vpc.main")
	if gotVPC.Attr("cidr_block").AsString() != "10.0.0.0/16" {
		t.Errorf("cidr = %v", gotVPC.Attr("cidr_block"))
	}
	gotSub := after.Get("aws_subnet.s")
	if gotSub.Attr("vpc_id").AsString() != gotVPC.ID {
		t.Errorf("subnet vpc_id = %v, want %s", gotSub.Attr("vpc_id"), gotVPC.ID)
	}
	// And the cloud agrees.
	live, err := sim.Get(ctx, "aws_subnet", gotSub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if live.Attr("vpc_id").AsString() != gotVPC.ID {
		t.Errorf("cloud subnet vpc_id = %v", live.Attr("vpc_id"))
	}
}

func TestExecuteInPlaceOnly(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	ctx := context.Background()
	b, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_storage_bucket", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("data"), "versioning": eval.True}})
	if err != nil {
		t.Fatal(err)
	}
	cur := state.New()
	cur.Set(&state.ResourceState{Addr: "aws_storage_bucket.b", Type: "aws_storage_bucket",
		ID: b.ID, Region: "us-east-1", Attrs: b.Attrs})
	tgt := cur.Clone()
	tgt.Get("aws_storage_bucket.b").Attrs["versioning"] = eval.False

	p := Compute(cur, tgt)
	if p.Reverts != 1 || p.Redeployments != 0 {
		t.Fatalf("%s", p.Summary())
	}
	after, err := Execute(ctx, sim, cur, tgt, p, "cloudless")
	if err != nil {
		t.Fatal(err)
	}
	if after.Get("aws_storage_bucket.b").ID != b.ID {
		t.Error("in-place revert must not change the cloud ID")
	}
	live, _ := sim.Get(ctx, "aws_storage_bucket", b.ID)
	if !live.Attr("versioning").Equal(eval.False) {
		t.Errorf("versioning = %v", live.Attr("versioning"))
	}
}
