// Package rollback plans and executes state rollbacks (§3.4). Simply
// re-applying an old configuration is not a rollback: some modifications
// are not reversible in place (ForceNew attributes, deletions), so the
// planner performs reversibility analysis and produces a plan that reverts
// in place where possible and destroys-and-recreates only where necessary —
// minimizing redeployment, with the reliable identification of the plan
// happening *before* anything is touched.
package rollback

import (
	"context"
	"fmt"
	"sort"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/graph"
	"cloudless/internal/schema"
	"cloudless/internal/state"
)

// StepKind classifies a rollback step.
type StepKind int

// Step kinds.
const (
	// RevertInPlace updates mutable attributes back to the target values.
	RevertInPlace StepKind = iota
	// Recreate destroys the current resource and recreates it from the
	// target state (the irreversible-change path).
	Recreate
	// CreateMissing re-creates a resource present in the target but gone
	// from the current state.
	CreateMissing
	// DeleteExtra removes a resource absent from the target state.
	DeleteExtra
)

var stepNames = map[StepKind]string{
	RevertInPlace: "revert-in-place",
	Recreate:      "recreate",
	CreateMissing: "create-missing",
	DeleteExtra:   "delete-extra",
}

// String names the step kind.
func (k StepKind) String() string { return stepNames[k] }

// Step is one planned rollback operation.
type Step struct {
	Kind StepKind
	Addr string
	Type string
	// Attrs are the attributes to push (revert) or create with.
	Attrs map[string]eval.Value
	// Reason explains why this step has its kind, for the operator.
	Reason string
}

// Plan is a complete rollback plan.
type Plan struct {
	Steps []Step
	// Redeployments counts destroy+create operations — the quantity the
	// §3.4 design minimizes.
	Redeployments int
	// Reverts counts cheap in-place reverts.
	Reverts int
}

// Summary renders plan statistics.
func (p *Plan) Summary() string {
	return fmt.Sprintf("%d steps: %d in-place reverts, %d redeployments",
		len(p.Steps), p.Reverts, p.Redeployments)
}

// Compute builds a rollback plan taking the infrastructure from current to
// target. It never touches the cloud: the plan is fully determined before
// any update is performed.
func Compute(current, target *state.State) *Plan {
	p := &Plan{}
	recreate := map[string]bool{}

	// Reference-aware comparison: when an address already carries a
	// different cloud ID than the snapshot recorded (an earlier — possibly
	// crashed — rollback recreated it), target attributes referencing the
	// old ID are compared against the live one. A reference that followed
	// the recreation is intact, not diverged.
	idMap := map[string]string{}
	for _, addr := range target.Addrs() {
		tgt := target.Get(addr)
		if cur := current.Get(addr); cur != nil && tgt.ID != "" && cur.ID != "" && cur.ID != tgt.ID {
			idMap[tgt.ID] = cur.ID
		}
	}

	// Pass 1: classify direct differences.
	kindOf := map[string]StepKind{}
	reason := map[string]string{}
	for _, addr := range target.Addrs() {
		tgt := target.Get(addr)
		cur := current.Get(addr)
		if cur == nil {
			kindOf[addr] = CreateMissing
			reason[addr] = "resource no longer exists"
			recreate[addr] = true
			continue
		}
		changed, forced := classifyDiff(tgt.Type, cur.Attrs, tgt.Attrs, idMap)
		switch {
		case len(changed) == 0:
			continue
		case len(forced) > 0:
			kindOf[addr] = Recreate
			reason[addr] = fmt.Sprintf("attributes %v cannot be reverted in place", forced)
			recreate[addr] = true
		default:
			kindOf[addr] = RevertInPlace
			reason[addr] = fmt.Sprintf("attributes %v can be updated in place", changed)
		}
	}
	for _, addr := range current.Addrs() {
		if target.Get(addr) == nil {
			kindOf[addr] = DeleteExtra
			reason[addr] = "resource is not part of the rollback target"
		}
	}

	// Pass 2: recreation cascades. When a resource is recreated its cloud
	// ID changes; dependents whose reference attributes are immutable must
	// be recreated too; mutable references become in-place reverts.
	changedCascade := true
	for changedCascade {
		changedCascade = false
		for _, addr := range target.Addrs() {
			if recreate[addr] {
				continue
			}
			tgt := target.Get(addr)
			for _, dep := range tgt.Dependencies {
				for recAddr := range recreate {
					if resourceAddrOf(recAddr) != dep {
						continue
					}
					if hasForceNewRef(tgt.Type) {
						kindOf[addr] = Recreate
						reason[addr] = fmt.Sprintf("depends on %s, which must be recreated, through an immutable reference", recAddr)
						recreate[addr] = true
						changedCascade = true
					} else if _, has := kindOf[addr]; !has {
						kindOf[addr] = RevertInPlace
						reason[addr] = fmt.Sprintf("reference to recreated %s must be repointed", recAddr)
					}
				}
			}
		}
	}

	// Emit steps in a safe order: deletes of extras first (reverse
	// dependency order), then recreates/creates in dependency order, then
	// in-place reverts.
	var deletes, creates, reverts []string
	for addr, kind := range kindOf {
		switch kind {
		case DeleteExtra:
			deletes = append(deletes, addr)
		case Recreate, CreateMissing:
			creates = append(creates, addr)
		case RevertInPlace:
			reverts = append(reverts, addr)
		}
	}
	// Extras are deleted dependents-first (reverse dependency order, from
	// the current state's recorded dependencies).
	deletes = orderByDependencies(deletes, current)
	for i, j := 0, len(deletes)-1; i < j; i, j = i+1, j-1 {
		deletes[i], deletes[j] = deletes[j], deletes[i]
	}
	creates = orderByDependencies(creates, target)
	sort.Strings(reverts)

	for _, addr := range deletes {
		p.Steps = append(p.Steps, Step{Kind: DeleteExtra, Addr: addr,
			Type: current.Get(addr).Type, Reason: reason[addr]})
	}
	for _, addr := range creates {
		tgt := target.Get(addr)
		p.Steps = append(p.Steps, Step{Kind: kindOf[addr], Addr: addr, Type: tgt.Type,
			Attrs: configurableAttrs(tgt.Type, tgt.Attrs), Reason: reason[addr]})
		p.Redeployments++
	}
	for _, addr := range reverts {
		tgt := target.Get(addr)
		p.Steps = append(p.Steps, Step{Kind: RevertInPlace, Addr: addr, Type: tgt.Type,
			Attrs: configurableAttrs(tgt.Type, tgt.Attrs), Reason: reason[addr]})
		p.Reverts++
	}
	return p
}

// classifyDiff returns changed configurable attrs and the subset that is
// ForceNew (irreversible in place). Target values are passed through idMap
// so references follow recreated resources' live IDs.
func classifyDiff(typ string, cur, tgt map[string]eval.Value, idMap map[string]string) (changed, forced []string) {
	rs, ok := schema.LookupResource(typ)
	for name, want := range tgt {
		if ok {
			if a := rs.Attr(name); a != nil && a.Computed {
				continue
			}
		}
		want = remapValue(want, idMap)
		have, exists := cur[name]
		if exists && have.Equal(want) {
			continue
		}
		changed = append(changed, name)
		if ok {
			if a := rs.Attr(name); a != nil && a.ForceNew {
				forced = append(forced, name)
			}
		}
	}
	sort.Strings(changed)
	sort.Strings(forced)
	return
}

// hasForceNewRef reports whether a type's reference attributes are ForceNew
// (so repointing them requires recreation).
func hasForceNewRef(typ string) bool {
	rs, ok := schema.LookupResource(typ)
	if !ok {
		return false
	}
	for _, a := range rs.Attrs {
		if a.Semantic.Kind == schema.SemResourceRef && a.ForceNew {
			return true
		}
	}
	return false
}

// configurableAttrs filters out computed attributes.
func configurableAttrs(typ string, attrs map[string]eval.Value) map[string]eval.Value {
	rs, ok := schema.LookupResource(typ)
	out := map[string]eval.Value{}
	for name, v := range attrs {
		if ok {
			if a := rs.Attr(name); a == nil || a.Computed {
				continue
			}
		}
		if v.IsNull() {
			continue
		}
		out[name] = v
	}
	return out
}

func resourceAddrOf(addr string) string {
	for i := 0; i < len(addr); i++ {
		if addr[i] == '[' {
			return addr[:i]
		}
	}
	return addr
}

// orderByDependencies sorts addresses so dependencies precede dependents.
func orderByDependencies(addrs []string, st *state.State) []string {
	g := graph.New()
	inSet := map[string]bool{}
	for _, a := range addrs {
		g.AddNode(a)
		inSet[a] = true
	}
	for _, a := range addrs {
		rs := st.Get(a)
		if rs == nil {
			continue
		}
		for _, dep := range rs.Dependencies {
			for _, b := range addrs {
				if b != a && resourceAddrOf(b) == dep {
					_ = g.AddEdge(a, b)
				}
			}
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		sort.Strings(addrs)
		return addrs
	}
	return order
}

// ExecOptions configures Execute.
type ExecOptions struct {
	Principal string
	// Journal, when non-nil, makes the rollback crash-safe: intents are
	// durably recorded before the first cloud call and every op is framed by
	// begin/done records. A crashed rollback is reconciled with
	// apply.Recover and finished by re-computing the rollback plan from the
	// reconciled state.
	Journal *apply.Journal
}

// Execute runs a rollback plan against the cloud, rewriting references to
// recreated resources as their IDs change. Destruction happens for all
// recreated resources up front, dependents first, because real clouds (and
// the simulator) refuse to delete a resource that is still referenced.
// It returns the resulting state.
func Execute(ctx context.Context, cl cloud.Interface, current, target *state.State, p *Plan, principal string) (*state.State, error) {
	return ExecuteJournaled(ctx, cl, current, target, p, ExecOptions{Principal: principal})
}

// ExecuteJournaled is Execute with crash-safety options.
func ExecuteJournaled(ctx context.Context, cl cloud.Interface, current, target *state.State, p *Plan, opts ExecOptions) (*state.State, error) {
	principal := opts.Principal
	j := opts.Journal
	if j != nil {
		if err := j.LogIntents(planIntents(p, current)); err != nil {
			return current.Clone(), fmt.Errorf("rollback: journal intents: %w", err)
		}
	}
	out := current.Clone()
	remap := map[string]string{} // old cloud ID -> new cloud ID

	// Seed the remap from live reality: when an address already carries a
	// different cloud ID than the snapshot recorded (a previous — possibly
	// crashed — rollback recreated it), references in target attributes must
	// follow the live ID. In-run recreations overwrite these entries as they
	// happen.
	for _, addr := range target.Addrs() {
		tgt := target.Get(addr)
		if cur := current.Get(addr); cur != nil && tgt.ID != "" && cur.ID != "" && cur.ID != tgt.ID {
			remap[tgt.ID] = cur.ID
		}
	}

	del := func(addr, typ, id, phase string) error {
		if j != nil {
			if err := j.Begin(apply.OpRecord{Addr: addr, Action: "delete", Type: typ, ID: id}); err != nil {
				return err
			}
		}
		err := cl.Delete(ctx, typ, id, principal)
		if err != nil && !cloud.IsNotFound(err) {
			if j != nil && apply.DefinitiveFailure(err) {
				_ = j.Fail(addr, "delete", err)
			}
			return fmt.Errorf("rollback %s (%s): %w", addr, phase, err)
		}
		if j != nil {
			if err := j.Done(apply.OpRecord{Addr: addr, Action: "delete", Type: typ, ID: id}); err != nil {
				return err
			}
		}
		out.Remove(addr)
		return nil
	}

	// Destroy phase: recreated resources, dependents before dependencies
	// (the create-ordered step list reversed).
	for i := len(p.Steps) - 1; i >= 0; i-- {
		step := p.Steps[i]
		if step.Kind != Recreate {
			continue
		}
		cur := out.Get(step.Addr)
		if cur == nil {
			continue
		}
		if err := del(step.Addr, cur.Type, cur.ID, "destroy phase"); err != nil {
			return out, err
		}
	}

	for _, step := range p.Steps {
		switch step.Kind {
		case DeleteExtra:
			rs := out.Get(step.Addr)
			if rs == nil {
				continue
			}
			if err := del(step.Addr, rs.Type, rs.ID, "delete phase"); err != nil {
				return out, err
			}

		case Recreate, CreateMissing:
			tgtRS := target.Get(step.Addr)
			attrs := remapRefs(step.Attrs, remap)
			req := cloud.CreateRequest{
				Type: step.Type, Region: tgtRS.Region, Attrs: attrs, Principal: principal,
			}
			if j != nil {
				req.IdempotencyKey = j.IdemKey(step.Addr)
				if err := j.Begin(apply.OpRecord{Addr: step.Addr, Action: "create",
					Type: step.Type, Region: tgtRS.Region, IdemKey: req.IdempotencyKey,
					Attrs: apply.AttrsOut(attrs), Deps: tgtRS.Dependencies}); err != nil {
					return out, err
				}
			}
			created, err := cl.Create(ctx, req)
			if err != nil {
				if j != nil && apply.DefinitiveFailure(err) {
					_ = j.Fail(step.Addr, "create", err)
				}
				return out, fmt.Errorf("rollback %s (create phase): %w", step.Addr, err)
			}
			if tgtRS.ID != "" {
				remap[tgtRS.ID] = created.ID
			}
			if cur := current.Get(step.Addr); cur != nil && cur.ID != "" {
				remap[cur.ID] = created.ID
			}
			if j != nil {
				if err := j.Done(apply.OpRecord{Addr: step.Addr, Action: "create",
					Type: step.Type, Region: created.Region, ID: created.ID,
					Attrs: apply.AttrsOut(created.Attrs), Deps: tgtRS.Dependencies}); err != nil {
					return out, err
				}
			}
			out.Set(&state.ResourceState{
				Addr: step.Addr, Type: step.Type, ID: created.ID, Region: created.Region,
				Attrs: created.Attrs, Dependencies: tgtRS.Dependencies,
				CreatedAt: created.CreatedAt, UpdatedAt: created.UpdatedAt,
			})

		case RevertInPlace:
			rs := out.Get(step.Addr)
			if rs == nil {
				continue
			}
			attrs := remapRefs(step.Attrs, remap)
			// Only push attributes that actually differ from the live ones.
			delta := map[string]eval.Value{}
			for name, v := range attrs {
				if !rs.Attr(name).Equal(v) {
					delta[name] = v
				}
			}
			if len(delta) == 0 {
				continue
			}
			if j != nil {
				if err := j.Begin(apply.OpRecord{Addr: step.Addr, Action: "update",
					Type: step.Type, ID: rs.ID, Attrs: apply.AttrsOut(delta)}); err != nil {
					return out, err
				}
			}
			updated, err := cl.Update(ctx, cloud.UpdateRequest{
				Type: step.Type, ID: rs.ID, Attrs: delta, Principal: principal,
			})
			if err != nil {
				if j != nil && apply.DefinitiveFailure(err) {
					_ = j.Fail(step.Addr, "update", err)
				}
				return out, fmt.Errorf("rollback %s (revert phase): %w", step.Addr, err)
			}
			if j != nil {
				if err := j.Done(apply.OpRecord{Addr: step.Addr, Action: "update",
					Type: step.Type, ID: rs.ID, Attrs: apply.AttrsOut(updated.Attrs)}); err != nil {
					return out, err
				}
			}
			rs.Attrs = updated.Attrs
		}
	}
	return out, nil
}

// planIntents journals what the rollback is about to do, so recovery can
// adopt orphaned recreations and the operator can see what a crashed
// rollback was attempting.
func planIntents(p *Plan, current *state.State) []apply.Intent {
	intents := make([]apply.Intent, 0, len(p.Steps))
	for _, step := range p.Steps {
		in := apply.Intent{Addr: step.Addr, Type: step.Type}
		switch step.Kind {
		case DeleteExtra:
			in.Action = "delete"
			if rs := current.Get(step.Addr); rs != nil {
				in.ID = rs.ID
				in.Region = rs.Region
			}
		case Recreate:
			in.Action = "replace"
			if rs := current.Get(step.Addr); rs != nil {
				in.ID = rs.ID
				in.Region = rs.Region
			}
		case CreateMissing:
			in.Action = "create"
		case RevertInPlace:
			in.Action = "update"
			if rs := current.Get(step.Addr); rs != nil {
				in.ID = rs.ID
				in.Region = rs.Region
			}
		}
		if v, ok := step.Attrs["name"]; ok && !v.IsNull() && v.Kind() == eval.KindString {
			in.Name = v.AsString()
		}
		intents = append(intents, in)
	}
	return intents
}

// remapRefs substitutes recreated resources' old IDs with their new IDs in
// string and list-of-string attribute values.
func remapRefs(attrs map[string]eval.Value, remap map[string]string) map[string]eval.Value {
	if len(remap) == 0 {
		return attrs
	}
	out := make(map[string]eval.Value, len(attrs))
	for name, v := range attrs {
		out[name] = remapValue(v, remap)
	}
	return out
}

func remapValue(v eval.Value, remap map[string]string) eval.Value {
	switch v.Kind() {
	case eval.KindString:
		if newID, ok := remap[v.AsString()]; ok {
			return eval.String(newID)
		}
		return v
	case eval.KindList:
		items := make([]eval.Value, len(v.AsList()))
		for i, e := range v.AsList() {
			items[i] = remapValue(e, remap)
		}
		return eval.ListOf(items)
	default:
		return v
	}
}
