package rollback

// Mid-rollback crash coverage: a rollback that dies halfway must, after
// journal recovery and a re-computed rollback, converge to the pre-apply
// snapshot — same attributes, no orphans, no duplicates.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/state"
)

// badUpdate deploys v1 (vpc + subnet), then simulates a bad change that
// replaced the VPC (new CIDR) and repointed the subnet. Returns the v1
// snapshot (rollback target) and the current state matching cloud reality.
func badUpdate(t *testing.T, sim *cloud.Sim) (v1, cur *state.State) {
	t.Helper()
	ctx := context.Background()
	vpc, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1", Principal: "cloudless",
		Attrs: map[string]eval.Value{"name": eval.String("main"), "cidr_block": eval.String("10.0.0.0/16")}})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1", Principal: "cloudless",
		Attrs: map[string]eval.Value{"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("10.0.1.0/24")}})
	if err != nil {
		t.Fatal(err)
	}
	v1 = state.New()
	v1.Set(&state.ResourceState{Addr: "aws_vpc.main", Type: "aws_vpc", ID: vpc.ID, Region: "us-east-1", Attrs: vpc.Attrs})
	v1.Set(&state.ResourceState{Addr: "aws_subnet.s", Type: "aws_subnet", ID: sub.ID, Region: "us-east-1",
		Attrs: sub.Attrs, Dependencies: []string{"aws_vpc.main"}})

	if err := sim.Delete(ctx, "aws_subnet", sub.ID, "cloudless"); err != nil {
		t.Fatal(err)
	}
	if err := sim.Delete(ctx, "aws_vpc", vpc.ID, "cloudless"); err != nil {
		t.Fatal(err)
	}
	vpc2, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1", Principal: "cloudless",
		Attrs: map[string]eval.Value{"name": eval.String("main"), "cidr_block": eval.String("10.99.0.0/16")}})
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1", Principal: "cloudless",
		Attrs: map[string]eval.Value{"vpc_id": eval.String(vpc2.ID), "cidr_block": eval.String("10.99.1.0/24")}})
	if err != nil {
		t.Fatal(err)
	}
	cur = state.New()
	cur.Set(&state.ResourceState{Addr: "aws_vpc.main", Type: "aws_vpc", ID: vpc2.ID, Region: "us-east-1", Attrs: vpc2.Attrs})
	cur.Set(&state.ResourceState{Addr: "aws_subnet.s", Type: "aws_subnet", ID: sub2.ID, Region: "us-east-1",
		Attrs: sub2.Attrs, Dependencies: []string{"aws_vpc.main"}})
	return v1, cur
}

// TestExecuteMidCrashRecoversToSnapshot kills a journaled rollback at every
// mutating call (delete sub, delete vpc, create vpc, create sub), both
// before and after the op lands, then recovers and finishes. The full
// rollback issues 4 mutating calls, so afterN sweeps every crash site.
func TestExecuteMidCrashRecoversToSnapshot(t *testing.T) {
	for afterN := 1; afterN <= 4; afterN++ {
		for _, point := range []cloud.CrashPoint{cloud.CrashBeforeOp, cloud.CrashAfterOp} {
			point := point
			afterN := afterN
			t.Run(fmt.Sprintf("op%d-point%d", afterN, point), func(t *testing.T) {
				t.Parallel()
				opts := cloud.DefaultOptions()
				opts.DisableRateLimit = true
				sim := cloud.NewSim(opts)
				v1, cur := badUpdate(t, sim)
				journalPath := filepath.Join(t.TempDir(), "rollback.journal")

				// Crash the rollback partway through.
				p := Compute(cur, v1)
				if p.Redeployments == 0 {
					t.Fatalf("scenario must force redeployments: %s", p.Summary())
				}
				j, err := apply.NewJournal(journalPath, apply.Meta{Kind: "rollback", Principal: "cloudless"})
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				fired := false
				sim.InjectCrash(point, afterN, func() {
					fired = true
					j.Kill()
					cancel()
				})
				_, err = ExecuteJournaled(ctx, sim, cur, v1, p, ExecOptions{Principal: "cloudless", Journal: j})
				sim.ClearCrash()
				j.Close()
				if !fired {
					t.Fatalf("crash never fired (afterN=%d beyond op count)", afterN)
				}
				if err == nil {
					t.Fatal("rollback reported success despite injected crash")
				}

				// Restart: recover the journal, then re-compute and finish.
				reconciled := cur
				js, err := apply.ReadJournal(journalPath)
				if err != nil {
					t.Fatal(err)
				}
				if js == nil {
					t.Fatal("journal vanished")
				}
				st, rep, err := apply.Recover(context.Background(), sim, js, cur, apply.Options{})
				if err != nil {
					t.Fatalf("recover: %s", err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("recover report: %s", err)
				}
				reconciled = st
				if err := os.Remove(journalPath); err != nil {
					t.Fatal(err)
				}

				p2 := Compute(reconciled, v1)
				j2, err := apply.NewJournal(journalPath, apply.Meta{Kind: "rollback", Principal: "cloudless"})
				if err != nil {
					t.Fatal(err)
				}
				final, err := ExecuteJournaled(context.Background(), sim, reconciled, v1, p2,
					ExecOptions{Principal: "cloudless", Journal: j2})
				if err != nil {
					t.Fatalf("continuation rollback: %s", err)
				}
				if err := j2.Discard(); err != nil {
					t.Fatal(err)
				}

				// Converged to the snapshot: nothing left to roll back, the
				// cloud holds exactly the state's resources, and the reverted
				// attributes are back.
				if p3 := Compute(final, v1); len(p3.Steps) != 0 {
					t.Errorf("rollback not converged: %s: %+v", p3.Summary(), p3.Steps)
				}
				for _, addr := range final.Addrs() {
					rs := final.Get(addr)
					if _, err := sim.Get(context.Background(), rs.Type, rs.ID); err != nil {
						t.Errorf("state entry %s (%s) missing from cloud: %s", addr, rs.ID, err)
					}
				}
				if got := sim.TotalResources(); got != final.Len() {
					t.Errorf("cloud holds %d resources, state %d (orphans or losses)", got, final.Len())
				}
				gotVPC := final.Get("aws_vpc.main")
				if gotVPC.Attr("cidr_block").AsString() != "10.0.0.0/16" {
					t.Errorf("vpc cidr = %v, want rolled back", gotVPC.Attr("cidr_block"))
				}
				if sub := final.Get("aws_subnet.s"); sub.Attr("vpc_id").AsString() != gotVPC.ID {
					t.Errorf("subnet vpc_id = %v, want %s", sub.Attr("vpc_id"), gotVPC.ID)
				}
			})
		}
	}
}
