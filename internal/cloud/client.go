package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// retryAfterHeader parses a whole-seconds Retry-After response header.
func retryAfterHeader(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Client talks to a cloud Server over HTTP and satisfies the same Interface
// as the in-process simulator, so the rest of the system cannot tell whether
// its cloud is a goroutine away or a network away.
type Client struct {
	base string
	http *http.Client
}

var _ Interface = (*Client)(nil)

// NewClient builds a client for the given base URL (e.g.
// "http://127.0.0.1:8444"). A nil httpClient gets a transport tuned for the
// provider runtime's concurrency: the default transport caps idle
// connections per host at 2, which under a few dozen concurrent calls to
// one control-plane endpoint churns through TCP handshakes; and a single
// whole-request timeout is replaced by per-phase timeouts so a stalled
// server surfaces as an error in seconds, not minutes.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{
			Transport: &http.Transport{
				Proxy: http.ProxyFromEnvironment,
				DialContext: (&net.Dialer{
					Timeout:   10 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
				MaxIdleConns:          256,
				MaxIdleConnsPerHost:   128,
				MaxConnsPerHost:       0, // concurrency is the runtime's job
				IdleConnTimeout:       90 * time.Second,
				ResponseHeaderTimeout: 30 * time.Second,
				ExpectContinueTimeout: time.Second,
			},
			Timeout: 5 * time.Minute, // last-resort bound; ctx governs per call
		}
	}
	return &Client{base: baseURL, http: httpClient}
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any, headers ...[2]string) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(marshalJSON(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("cloud client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for _, h := range headers {
		req.Header.Set(h[0], h[1])
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// A canceled caller is not a transport fault: surface the context
		// error as-is so the provider runtime never retries it.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return &APIError{Code: CodeInternal, Op: method, Message: "transport: " + err.Error(), Retryable: true}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return &APIError{Code: CodeInternal, Op: method, Message: "read response: " + err.Error(), Retryable: true}
	}
	if resp.StatusCode >= 400 {
		var ae APIError
		if json.Unmarshal(data, &ae) == nil && ae.Message != "" {
			if ae.RetryAfter == 0 {
				ae.RetryAfter = retryAfterHeader(resp)
			}
			return &ae
		}
		return &APIError{Code: resp.StatusCode, Op: method,
			Message:    fmt.Sprintf("HTTP %d: %s", resp.StatusCode, string(data)),
			Retryable:  resp.StatusCode == CodeThrottled || resp.StatusCode >= 500,
			RetryAfter: retryAfterHeader(resp)}
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("cloud client: decode response: %w", err)
		}
	}
	return nil
}

// Create implements Interface. The idempotency key travels both in the body
// and as the standard Idempotency-Key header, so intermediaries (and the
// server) can honor it without parsing JSON.
func (c *Client) Create(ctx context.Context, req CreateRequest) (*Resource, error) {
	var headers [][2]string
	if req.IdempotencyKey != "" {
		headers = append(headers, [2]string{"Idempotency-Key", req.IdempotencyKey})
	}
	var w wireResource
	err := c.do(ctx, http.MethodPost, "/v1/resources/"+url.PathEscape(req.Type), wireCreate{
		Region:         req.Region,
		Attrs:          attrsToWire(req.Attrs),
		Principal:      req.Principal,
		IdempotencyKey: req.IdempotencyKey,
	}, &w, headers...)
	if err != nil {
		return nil, err
	}
	return fromWire(w), nil
}

// Get implements Interface.
func (c *Client) Get(ctx context.Context, typ, id string) (*Resource, error) {
	var w wireResource
	err := c.do(ctx, http.MethodGet,
		"/v1/resources/"+url.PathEscape(typ)+"/"+url.PathEscape(id), nil, &w)
	if err != nil {
		return nil, err
	}
	return fromWire(w), nil
}

// Update implements Interface.
func (c *Client) Update(ctx context.Context, req UpdateRequest) (*Resource, error) {
	var w wireResource
	err := c.do(ctx, http.MethodPatch,
		"/v1/resources/"+url.PathEscape(req.Type)+"/"+url.PathEscape(req.ID), wireUpdate{
			Attrs:     attrsToWire(req.Attrs),
			Principal: req.Principal,
		}, &w)
	if err != nil {
		return nil, err
	}
	return fromWire(w), nil
}

// Delete implements Interface.
func (c *Client) Delete(ctx context.Context, typ, id, principal string) error {
	path := "/v1/resources/" + url.PathEscape(typ) + "/" + url.PathEscape(id)
	if principal != "" {
		path += "?principal=" + url.QueryEscape(principal)
	}
	return c.do(ctx, http.MethodDelete, path, nil, nil)
}

// List implements Interface.
func (c *Client) List(ctx context.Context, typ, region string) ([]*Resource, error) {
	path := "/v1/resources/" + url.PathEscape(typ)
	if region != "" {
		path += "?region=" + url.QueryEscape(region)
	}
	var ws []wireResource
	if err := c.do(ctx, http.MethodGet, path, nil, &ws); err != nil {
		return nil, err
	}
	out := make([]*Resource, len(ws))
	for i, w := range ws {
		out[i] = fromWire(w)
	}
	return out, nil
}

// Health implements Interface.
func (c *Client) Health(ctx context.Context, typ, id string) (*HealthReport, error) {
	var rep HealthReport
	err := c.do(ctx, http.MethodGet,
		"/v1/resources/"+url.PathEscape(typ)+"/"+url.PathEscape(id)+"/health", nil, &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Activity implements Interface.
func (c *Client) Activity(ctx context.Context, afterSeq int64) ([]Event, error) {
	var events []Event
	path := "/v1/activity?after=" + strconv.FormatInt(afterSeq, 10)
	if err := c.do(ctx, http.MethodGet, path, nil, &events); err != nil {
		return nil, err
	}
	return events, nil
}

// WaitActivity long-polls GET /v1/events: it blocks server-side up to wait
// for events past afterSeq and returns (nil, nil) on a quiet timeout. The
// caller's ctx must outlive wait (the request context governs the poll).
func (c *Client) WaitActivity(ctx context.Context, afterSeq int64, wait time.Duration) ([]Event, error) {
	var events []Event
	path := "/v1/events?since=" + strconv.FormatInt(afterSeq, 10) +
		"&wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10)
	if err := c.do(ctx, http.MethodGet, path, nil, &events); err != nil {
		return nil, err
	}
	return events, nil
}

// Metrics fetches the server-side traffic counters.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}

// PrometheusMetrics fetches the server's Prometheus text exposition.
func (c *Client) PrometheusMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("cloud client: build request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("cloud client: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}
