package cloud

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"cloudless/internal/telemetry"
)

// Server exposes a Sim over HTTP with a small JSON API:
//
//	POST   /v1/resources/{type}        create
//	GET    /v1/resources/{type}        list (?region=)
//	GET    /v1/resources/{type}/{id}   get
//	PATCH  /v1/resources/{type}/{id}   update
//	DELETE /v1/resources/{type}/{id}   delete (?principal=)
//	GET    /v1/resources/{type}/{id}/health   readiness probe
//	GET    /v1/activity                activity log (?after=seq)
//	GET    /v1/events                  long-poll event stream (?since=seq&wait_ms=)
//	GET    /v1/metrics                 traffic counters
//	GET    /metrics                    Prometheus text exposition
//	GET    /healthz                    liveness
type Server struct {
	sim *Sim
	log *slog.Logger
	mux *http.ServeMux
}

// NewServer wires a simulator into an HTTP handler.
func NewServer(sim *Sim, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{sim: sim, log: logger, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/resources/{type}", s.handleCreate)
	s.mux.HandleFunc("GET /v1/resources/{type}", s.handleList)
	s.mux.HandleFunc("GET /v1/resources/{type}/{id}", s.handleGet)
	s.mux.HandleFunc("PATCH /v1/resources/{type}/{id}", s.handleUpdate)
	s.mux.HandleFunc("DELETE /v1/resources/{type}/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/resources/{type}/{id}/health", s.handleHealth)
	s.mux.HandleFunc("POST /v1/batch/create", s.handleBatchCreate)
	s.mux.HandleFunc("POST /v1/batch/get", s.handleBatchGet)
	s.mux.HandleFunc("GET /v1/activity", s.handleActivity)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handlePrometheus)
	if sim.TelemetryRegistry() == nil {
		// The server is an ops surface: make sure /metrics has a registry to
		// expose even when the embedder didn't attach one.
		sim.AttachTelemetry(telemetry.NewRegistry())
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	var ae *APIError
	if !errors.As(err, &ae) {
		ae = &APIError{Code: CodeInternal, Message: err.Error()}
	}
	status := ae.Code
	if status < 400 || status > 599 {
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	if status == CodeThrottled {
		// Whole seconds for plain HTTP clients; the JSON body carries the
		// precise hint for the cloudless client.
		secs := int(ae.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	_, _ = w.Write(marshalJSON(ae))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(marshalJSON(v))
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	typ := r.PathValue("type")
	var body wireCreate
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		s.writeError(w, &APIError{Code: CodeInvalid, Op: "create", Type: typ,
			Message: "MalformedRequest: " + err.Error()})
		return
	}
	idemKey := body.IdempotencyKey
	if idemKey == "" {
		idemKey = r.Header.Get("Idempotency-Key")
	}
	res, err := s.sim.Create(r.Context(), CreateRequest{
		Type:           typ,
		Region:         body.Region,
		Attrs:          attrsFromWire(body.Attrs),
		Principal:      principalOf(r, body.Principal),
		IdempotencyKey: idemKey,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.log.Info("created", "type", typ, "id", res.ID, "region", res.Region)
	s.writeJSON(w, http.StatusCreated, toWire(res))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	res, err := s.sim.Get(r.Context(), r.PathValue("type"), r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toWire(res))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	typ := r.PathValue("type")
	q := r.URL.Query()
	// Pagination params switch the response shape from the legacy bare
	// array to the page object; clients that never send them never see it.
	if q.Has("limit") || q.Has("page_token") {
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				s.writeError(w, &APIError{Code: CodeInvalid, Op: "list", Type: typ,
					Message: "MalformedRequest: invalid limit parameter"})
				return
			}
			limit = n
		}
		page, err := s.sim.ListPage(r.Context(), typ, q.Get("region"), limit, q.Get("page_token"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		out := wireListPage{Resources: make([]wireResource, len(page.Resources)), NextPageToken: page.NextPageToken}
		for i, res := range page.Resources {
			out.Resources[i] = toWire(res)
		}
		s.writeJSON(w, http.StatusOK, out)
		return
	}
	list, err := s.sim.List(r.Context(), typ, q.Get("region"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := make([]wireResource, len(list))
	for i, res := range list {
		out[i] = toWire(res)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// maxBatchBody bounds batch request bodies; batches carry up to maxBatchItems
// attribute maps, so they get a larger allowance than single-item calls.
const maxBatchBody = 16 << 20

func (s *Server) handleBatchCreate(w http.ResponseWriter, r *http.Request) {
	var body wireBatchCreate
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBatchBody)).Decode(&body); err != nil {
		s.writeError(w, &APIError{Code: CodeInvalid, Op: "batch_create",
			Message: "MalformedRequest: " + err.Error()})
		return
	}
	reqs := make([]CreateRequest, len(body.Items))
	for i, item := range body.Items {
		reqs[i] = CreateRequest{
			Type:           item.Type,
			Region:         item.Region,
			Attrs:          attrsFromWire(item.Attrs),
			Principal:      principalOf(r, item.Principal),
			IdempotencyKey: item.IdempotencyKey,
		}
	}
	results, err := s.sim.BatchCreate(r.Context(), reqs)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.log.Info("batch create", "items", len(reqs))
	s.writeJSON(w, http.StatusOK, toWireBatchResults(results))
}

func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	var body wireBatchGet
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBatchBody)).Decode(&body); err != nil {
		s.writeError(w, &APIError{Code: CodeInvalid, Op: "batch_get",
			Message: "MalformedRequest: " + err.Error()})
		return
	}
	results, err := s.sim.BatchGet(r.Context(), body.Keys)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toWireBatchResults(results))
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	typ, id := r.PathValue("type"), r.PathValue("id")
	var body wireUpdate
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		s.writeError(w, &APIError{Code: CodeInvalid, Op: "update", Type: typ, ID: id,
			Message: "MalformedRequest: " + err.Error()})
		return
	}
	res, err := s.sim.Update(r.Context(), UpdateRequest{
		Type: typ, ID: id,
		Attrs:     attrsFromWire(body.Attrs),
		Principal: principalOf(r, body.Principal),
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toWire(res))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	typ, id := r.PathValue("type"), r.PathValue("id")
	err := s.sim.Delete(r.Context(), typ, id, principalOf(r, r.URL.Query().Get("principal")))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	rep, err := s.sim.Health(r.Context(), r.PathValue("type"), r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleActivity(w http.ResponseWriter, r *http.Request) {
	after := int64(0)
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			s.writeError(w, &APIError{Code: CodeInvalid, Op: "activity",
				Message: "MalformedRequest: invalid after parameter"})
			return
		}
		after = n
	}
	events, err := s.sim.Activity(r.Context(), after)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if events == nil {
		events = []Event{}
	}
	s.writeJSON(w, http.StatusOK, events)
}

// maxEventWait caps the long-poll hold time so proxies and the server's own
// WriteTimeout never see an indefinitely parked handler.
const maxEventWait = 60 * time.Second

// defaultEventWait is the hold time when the client sends no wait_ms.
const defaultEventWait = 25 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since := int64(0)
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.writeError(w, &APIError{Code: CodeInvalid, Op: "events",
				Message: "MalformedRequest: invalid since parameter"})
			return
		}
		since = n
	}
	wait := defaultEventWait
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			s.writeError(w, &APIError{Code: CodeInvalid, Op: "events",
				Message: "MalformedRequest: invalid wait_ms parameter"})
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxEventWait {
			wait = maxEventWait
		}
	}
	events, err := s.sim.WaitActivity(r.Context(), since, wait)
	if err != nil {
		// Client went away mid-poll; nothing useful to write.
		if r.Context().Err() != nil {
			return
		}
		s.writeError(w, err)
		return
	}
	if events == nil {
		events = []Event{}
	}
	s.writeJSON(w, http.StatusOK, events)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.sim.Metrics())
}

func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.sim.TelemetryRegistry().Prometheus(w)
}

// principalOf prefers the explicit body/query principal, then the
// X-Principal header.
func principalOf(r *http.Request, explicit string) string {
	if explicit != "" {
		return explicit
	}
	return r.Header.Get("X-Principal")
}

// ListenAndServe runs the server until the listener fails. Addr is a
// host:port. The returned http.Server has sane timeouts for a control-plane
// API.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // creates can be slow at scale 1.0
		IdleTimeout:       2 * time.Minute,
	}
	s.log.Info("cloud simulator listening", "addr", addr)
	return srv.ListenAndServe()
}
