package cloud

import (
	"context"
	"testing"
	"time"

	"cloudless/internal/eval"
)

func createVPC(t *testing.T, sim *Sim, name string) *Resource {
	t.Helper()
	res, err := sim.Create(context.Background(), CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Principal: "test",
		Attrs: map[string]eval.Value{
			"name":       eval.String(name),
			"cidr_block": eval.String("10.0.0.0/16"),
		},
	})
	if err != nil {
		t.Fatalf("create %s: %s", name, err)
	}
	return res
}

func TestHealthLifecycleReadyAfterDelay(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0.001
	opts.ReadinessDelay = 60 * time.Second // 60ms wall-clock
	sim := NewSim(opts)

	res := createVPC(t, sim, "main")
	rep, err := sim.Health(context.Background(), "aws_vpc", res.ID)
	if err != nil {
		t.Fatalf("health: %s", err)
	}
	if rep.Status != HealthProvisioning {
		t.Fatalf("fresh resource is %s, want provisioning", rep.Status)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err = sim.Health(context.Background(), "aws_vpc", res.ID)
		if err != nil {
			t.Fatalf("health: %s", err)
		}
		if rep.Status == HealthReady {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resource never turned ready (last %s)", rep.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sim.Metrics().HealthReads < 2 {
		t.Errorf("HealthReads = %d, want >= 2", sim.Metrics().HealthReads)
	}
}

func TestHealthZeroDelayImmediatelyReady(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	sim := NewSim(opts)
	res := createVPC(t, sim, "main")
	rep, err := sim.Health(context.Background(), "aws_vpc", res.ID)
	if err != nil {
		t.Fatalf("health: %s", err)
	}
	if rep.Status != HealthReady {
		t.Fatalf("status = %s, want ready", rep.Status)
	}
}

func TestHealthNotFound(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	sim := NewSim(opts)
	_, err := sim.Health(context.Background(), "aws_vpc", "vpc-nope")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestInjectUnhealthyTargetsNextCreate(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	sim := NewSim(opts)
	sim.InjectUnhealthy(UnhealthySpec{Type: "aws_vpc", Name: "bad"})

	good := createVPC(t, sim, "good") // name filter skips this one
	bad := createVPC(t, sim, "bad")

	rep, _ := sim.Health(context.Background(), "aws_vpc", good.ID)
	if rep.Status != HealthReady {
		t.Errorf("unmatched create is %s, want ready", rep.Status)
	}
	rep, _ = sim.Health(context.Background(), "aws_vpc", bad.ID)
	if rep.Status != HealthFailed {
		t.Errorf("injected create is %s, want failed", rep.Status)
	}
	if rep.Reason == "" {
		t.Error("injected failure carries no reason")
	}
	if !sim.Injections().Empty() {
		t.Errorf("spec not consumed: %+v", sim.Injections())
	}
}

func TestInjectUnhealthyFlapSchedule(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0 // readyAt = creation time: the flap base
	sim := NewSim(opts)
	sim.InjectUnhealthy(UnhealthySpec{Flap: []FlapStep{
		{For: 40 * time.Millisecond, Status: HealthDegraded},
		{For: 40 * time.Millisecond, Status: HealthReady},
	}})
	res := createVPC(t, sim, "flappy")

	seen := map[HealthStatus]bool{}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && (!seen[HealthDegraded] || !seen[HealthReady]) {
		rep, err := sim.Health(context.Background(), "aws_vpc", res.ID)
		if err != nil {
			t.Fatalf("health: %s", err)
		}
		seen[rep.Status] = true
		time.Sleep(3 * time.Millisecond)
	}
	if !seen[HealthDegraded] || !seen[HealthReady] {
		t.Fatalf("flap schedule never cycled: saw %v", seen)
	}
}

func TestSetHealthOverridesAndRepairs(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	sim := NewSim(opts)
	res := createVPC(t, sim, "main")

	sim.SetHealth("aws_vpc", res.ID, HealthDegraded, "operator says so")
	rep, _ := sim.Health(context.Background(), "aws_vpc", res.ID)
	if rep.Status != HealthDegraded || rep.Reason != "operator says so" {
		t.Fatalf("got %+v, want degraded", rep)
	}
	sim.SetHealth("aws_vpc", res.ID, HealthReady, "")
	rep, _ = sim.Health(context.Background(), "aws_vpc", res.ID)
	if rep.Status != HealthReady {
		t.Fatalf("repair did not take: %+v", rep)
	}
}

func TestHealthRecordDroppedOnDelete(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	sim := NewSim(opts)
	sim.InjectUnhealthy(UnhealthySpec{})
	res := createVPC(t, sim, "doomed")
	if err := sim.Delete(context.Background(), "aws_vpc", res.ID, "test"); err != nil {
		t.Fatalf("delete: %s", err)
	}
	if _, err := sim.Health(context.Background(), "aws_vpc", res.ID); !IsNotFound(err) {
		t.Fatalf("health after delete: %v, want 404", err)
	}
}

func TestInjectionsSnapshotAndClear(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	sim := NewSim(opts)
	if !sim.Injections().Empty() {
		t.Fatal("fresh sim has pending injections")
	}
	sim.InjectThrottles(2)
	sim.InjectCrash(CrashAfterOp, 5, func() {})
	sim.InjectUnhealthy(UnhealthySpec{Count: 3, Type: "aws_vpc"})

	st := sim.Injections()
	if st.Throttles != 2 {
		t.Errorf("Throttles = %d, want 2", st.Throttles)
	}
	if st.Crash == nil || st.Crash.Point != CrashAfterOp || st.Crash.Remaining != 5 {
		t.Errorf("Crash = %+v, want after-op/5", st.Crash)
	}
	if len(st.Unhealthy) != 1 || st.Unhealthy[0].Count != 3 {
		t.Errorf("Unhealthy = %+v, want one spec with count 3", st.Unhealthy)
	}
	if st.Empty() {
		t.Error("Empty() with everything armed")
	}

	sim.ClearInjections()
	if got := sim.Injections(); !got.Empty() {
		t.Errorf("after ClearInjections: %+v", got)
	}
}
