package cloud

import "errors"

// Wire shapes for the bulk API:
//
//	POST /v1/batch/create  {"items":[{type, region, attrs, ...}]}  -> {"results":[...]}
//	POST /v1/batch/get     {"keys":[{"type","id"}]}                -> {"results":[...]}
//	GET  /v1/resources/{type}?limit=&page_token=                   -> {"resources":[...], "next_page_token":""}
//
// The paginated list response is an object, not the legacy bare array; the
// server only switches shapes when the client sends a pagination parameter,
// so old clients keep getting arrays and new clients detect old servers by
// the array shape.

// wireBatchCreateItem is one create in a batch body. Unlike the single-create
// POST, the type travels in the body (the batch URL has no {type} segment).
type wireBatchCreateItem struct {
	Type           string         `json:"type"`
	Region         string         `json:"region,omitempty"`
	Attrs          map[string]any `json:"attrs"`
	Principal      string         `json:"principal,omitempty"`
	IdempotencyKey string         `json:"idempotency_key,omitempty"`
}

type wireBatchCreate struct {
	Items []wireBatchCreateItem `json:"items"`
}

type wireBatchGet struct {
	Keys []ResourceKey `json:"keys"`
}

// wireBatchResult carries one item outcome; exactly one field is set.
type wireBatchResult struct {
	Resource *wireResource `json:"resource,omitempty"`
	Error    *APIError     `json:"error,omitempty"`
}

type wireBatchResults struct {
	Results []wireBatchResult `json:"results"`
}

// wireListPage is the object-shaped response of a paginated list.
type wireListPage struct {
	Resources     []wireResource `json:"resources"`
	NextPageToken string         `json:"next_page_token,omitempty"`
}

func toWireBatchResults(results []BatchResult) wireBatchResults {
	out := wireBatchResults{Results: make([]wireBatchResult, len(results))}
	for i, r := range results {
		if r.Err != nil {
			var ae *APIError
			if !errors.As(r.Err, &ae) {
				ae = &APIError{Code: CodeInternal, Message: r.Err.Error()}
			}
			out.Results[i].Error = ae
			continue
		}
		w := toWire(r.Resource)
		out.Results[i].Resource = &w
	}
	return out
}

func fromWireBatchResults(w wireBatchResults) []BatchResult {
	out := make([]BatchResult, len(w.Results))
	for i, r := range w.Results {
		switch {
		case r.Error != nil:
			out[i].Err = r.Error
		case r.Resource != nil:
			out[i].Resource = fromWire(*r.Resource)
		default:
			out[i].Err = &APIError{Code: CodeInternal, Op: "batch",
				Message: "MalformedResponse: batch item carries neither resource nor error"}
		}
	}
	return out
}
