package cloud

import (
	"context"
	"testing"
	"time"

	"cloudless/internal/telemetry"
)

func TestRateLimiterTokenBucket(t *testing.T) {
	l := newRateLimiter(10, 5)
	allowed := 0
	for i := 0; i < 20; i++ {
		if l.Allow() {
			allowed++
		}
	}
	if allowed != 5 {
		t.Fatalf("burst allowed %d calls, want 5", allowed)
	}
}

func TestThrottleCountsReachMetricsRegistry(t *testing.T) {
	opts := DefaultOptions()
	opts.RateLimitOverride = 50 // burst 100 tokens, then ~20ms per token
	sim := NewSim(opts)

	reg := telemetry.NewRegistry()
	sim.AttachTelemetry(reg)

	ctx := context.Background()
	const calls = 110
	for i := 0; i < calls; i++ {
		_, _ = sim.Get(ctx, "aws_vpc", "missing")
	}

	m := sim.Metrics()
	if m.Throttled == 0 {
		t.Fatal("expected throttles beyond the burst, got none")
	}
	got := reg.CounterSum("cloud.throttled")
	if got != m.Throttled {
		t.Fatalf("registry cloud.throttled = %d, sim metrics = %d", got, m.Throttled)
	}
	if api := reg.CounterValue("cloud.api_calls", "op", "get", "type", "aws_vpc"); api != calls {
		t.Fatalf("cloud.api_calls{op=get,type=aws_vpc} = %d, want %d", api, calls)
	}
	// The wait distribution is recorded alongside the count.
	snap := reg.Snapshot()
	var sawWait bool
	for _, mp := range snap {
		if mp.Kind == "histogram" && mp.Count == m.Throttled && mp.Max > 0 &&
			mp.Name == "cloud.throttle_wait_ms{provider=aws}" {
			sawWait = true
		}
	}
	if !sawWait {
		t.Fatalf("cloud.throttle_wait_ms histogram missing or empty: %+v", snap)
	}
}

func TestThrottleCountsViaContextRecorder(t *testing.T) {
	opts := DefaultOptions()
	opts.RateLimitOverride = 50
	sim := NewSim(opts)

	rec := telemetry.NewRecorder(telemetry.Config{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	for i := 0; i < 110; i++ {
		_, _ = sim.Get(ctx, "aws_vpc", "missing")
	}
	if rec.Metrics().CounterSum("cloud.throttled") == 0 {
		t.Fatal("context-carried recorder saw no throttles")
	}
}

func TestCanceledWhileThrottledCounts(t *testing.T) {
	opts := DefaultOptions()
	opts.RateLimitOverride = 1 // burst 2: the third call must wait ~1s
	sim := NewSim(opts)
	reg := telemetry.NewRegistry()
	sim.AttachTelemetry(reg)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var lastErr error
	for i := 0; i < 5; i++ {
		_, err := sim.Get(ctx, "aws_vpc", "missing")
		if err != nil && IsThrottled(err) {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Fatal("expected a throttled error after cancellation")
	}
	if reg.CounterSum("cloud.throttled") == 0 {
		t.Fatal("canceled-while-throttled call not counted")
	}
}
