package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"sort"
	"strconv"
)

// Bulk operations on the HTTP client. Each method degrades gracefully
// against servers that predate the bulk API: a missing batch route falls
// back to per-item calls, and a server that ignores pagination params is
// detected by its legacy array response shape.

var (
	_ BatchCreator = (*Client)(nil)
	_ BatchGetter  = (*Client)(nil)
	_ PageLister   = (*Client)(nil)
)

// routeMissing reports whether err is the mux-level 404/405 of a server
// without the batch routes — distinct from a resource-level 404, whose Op is
// a cloud operation name, not an HTTP method.
func routeMissing(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	return (ae.Code == http.StatusNotFound || ae.Code == http.StatusMethodNotAllowed) &&
		ae.Op == http.MethodPost
}

// BatchCreate posts one bulk request; against an old server it falls back to
// bounded-concurrency single creates.
func (c *Client) BatchCreate(ctx context.Context, reqs []CreateRequest) ([]BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	body := wireBatchCreate{Items: make([]wireBatchCreateItem, len(reqs))}
	for i, req := range reqs {
		body.Items[i] = wireBatchCreateItem{
			Type:           req.Type,
			Region:         req.Region,
			Attrs:          attrsToWire(req.Attrs),
			Principal:      req.Principal,
			IdempotencyKey: req.IdempotencyKey,
		}
	}
	var out wireBatchResults
	err := c.do(ctx, http.MethodPost, "/v1/batch/create", body, &out)
	if err != nil {
		if !routeMissing(err) {
			return nil, err
		}
		results := make([]BatchResult, len(reqs))
		runBounded(ctx, len(reqs), func(i int) {
			res, err := c.Create(ctx, reqs[i])
			results[i] = BatchResult{Resource: res, Err: err}
		})
		fillCanceled(results, ctx)
		return results, ctx.Err()
	}
	return fromWireBatchResults(out), nil
}

// BatchGet posts one bulk read; against an old server it falls back to
// bounded-concurrency single gets.
func (c *Client) BatchGet(ctx context.Context, keys []ResourceKey) ([]BatchResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	var out wireBatchResults
	err := c.do(ctx, http.MethodPost, "/v1/batch/get", wireBatchGet{Keys: keys}, &out)
	if err != nil {
		if !routeMissing(err) {
			return nil, err
		}
		results := make([]BatchResult, len(keys))
		runBounded(ctx, len(keys), func(i int) {
			res, err := c.Get(ctx, keys[i].Type, keys[i].ID)
			results[i] = BatchResult{Resource: res, Err: err}
		})
		fillCanceled(results, ctx)
		return results, ctx.Err()
	}
	return fromWireBatchResults(out), nil
}

// ListPage requests one page. A server that ignores the pagination params
// answers with the legacy bare array; the client detects that shape and
// paginates locally, so new clients work against old servers.
func (c *Client) ListPage(ctx context.Context, typ, region string, limit int, pageToken string) (*ListPageResult, error) {
	q := url.Values{}
	if region != "" {
		q.Set("region", region)
	}
	q.Set("limit", strconv.Itoa(limit))
	if pageToken != "" {
		q.Set("page_token", pageToken)
	}
	path := "/v1/resources/" + url.PathEscape(typ) + "?" + q.Encode()
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, path, nil, &raw); err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var ws []wireResource
		if err := json.Unmarshal(trimmed, &ws); err != nil {
			return nil, &APIError{Code: CodeInternal, Op: "list", Type: typ,
				Message: "MalformedResponse: " + err.Error()}
		}
		all := make([]*Resource, len(ws))
		for i, w := range ws {
			all[i] = fromWire(w)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		return slicePage(all, limit, pageToken), nil
	}
	var page wireListPage
	if err := json.Unmarshal(trimmed, &page); err != nil {
		return nil, &APIError{Code: CodeInternal, Op: "list", Type: typ,
			Message: "MalformedResponse: " + err.Error()}
	}
	out := &ListPageResult{
		Resources:     make([]*Resource, len(page.Resources)),
		NextPageToken: page.NextPageToken,
	}
	for i, w := range page.Resources {
		out.Resources[i] = fromWire(w)
	}
	return out, nil
}
