package cloud

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCoalescerBatchesConcurrentCreates: N callers issuing single Creates
// concurrently through a Coalescer must land in a handful of batch calls —
// the ≥5× calls-per-resource reduction the scale-out applier depends on —
// while every caller still gets its own resource.
func TestCoalescerBatchesConcurrentCreates(t *testing.T) {
	sim := newTestSim()
	co := NewCoalescer(sim, CoalescerOptions{Linger: 25 * time.Millisecond})
	ctx := context.Background()

	const n = 24
	resources := make([]*Resource, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resources[i], errs[i] = co.Create(ctx, CreateRequest{
				Type: "aws_vpc", Region: "us-east-1",
				Attrs: vpcAttrs(fmt.Sprintf("v-%d", i)), Principal: "test",
			})
		}(i)
	}
	wg.Wait()

	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("create %d: %s", i, errs[i])
		}
		if resources[i].Attr("name").AsString() != fmt.Sprintf("v-%d", i) {
			t.Errorf("create %d got resource %q", i, resources[i].Attr("name"))
		}
		seen[resources[i].ID] = true
	}
	if len(seen) != n {
		t.Errorf("distinct IDs = %d, want %d", len(seen), n)
	}
	m := sim.Metrics()
	if m.BatchItems != n {
		t.Errorf("batch items = %d, want %d (some creates went unbatched)", m.BatchItems, n)
	}
	if m.BatchCalls > int64(n/5) {
		t.Errorf("batch calls = %d for %d creates: coalescing below 5x", m.BatchCalls, n)
	}
}

// TestCoalescerBatchesConcurrentGets: same property for reads.
func TestCoalescerBatchesConcurrentGets(t *testing.T) {
	sim := newTestSim()
	ids := make([]string, 20)
	for i := range ids {
		ids[i] = mustCreate(t, sim, "aws_vpc", "us-east-1", vpcAttrs(fmt.Sprintf("v-%d", i))).ID
	}
	base := sim.Metrics()

	co := NewCoalescer(sim, CoalescerOptions{Linger: 25 * time.Millisecond})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := co.Get(ctx, "aws_vpc", ids[i])
			if err == nil && res.ID != ids[i] {
				err = fmt.Errorf("got %q, want %q", res.ID, ids[i])
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("get %d: %s", i, err)
		}
	}
	m := sim.Metrics()
	if got := m.BatchItems - base.BatchItems; got != int64(len(ids)) {
		t.Errorf("batched reads = %d, want %d", got, len(ids))
	}
	if calls := m.BatchCalls - base.BatchCalls; calls > int64(len(ids)/5) {
		t.Errorf("batch calls = %d for %d gets: coalescing below 5x", calls, len(ids))
	}
}

// TestCoalescerIsolatesItemFailures: one bad request inside a window fails
// alone; its batch-mates succeed untouched.
func TestCoalescerIsolatesItemFailures(t *testing.T) {
	sim := newTestSim()
	co := NewCoalescer(sim, CoalescerOptions{Linger: 25 * time.Millisecond})
	ctx := context.Background()

	var wg sync.WaitGroup
	var goodRes *Resource
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodRes, goodErr = co.Create(ctx, CreateRequest{
			Type: "aws_vpc", Region: "us-east-1", Attrs: vpcAttrs("good"), Principal: "test",
		})
	}()
	go func() {
		defer wg.Done()
		_, badErr = co.Create(ctx, CreateRequest{Type: "gcp_thing", Principal: "test"})
	}()
	wg.Wait()

	if goodErr != nil || goodRes == nil {
		t.Fatalf("good create: %v", goodErr)
	}
	if badErr == nil {
		t.Fatal("bad create succeeded")
	}
	if _, err := sim.Get(ctx, "aws_vpc", goodRes.ID); err != nil {
		t.Errorf("good resource missing from cloud: %s", err)
	}
}

// TestCoalescerSingleCallStillWorks: an isolated call rides a batch of one
// after the linger; semantics match a plain Create.
func TestCoalescerSingleCallStillWorks(t *testing.T) {
	sim := newTestSim()
	co := NewCoalescer(sim, CoalescerOptions{Linger: time.Millisecond})
	res, err := co.Create(context.Background(), CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Attrs: vpcAttrs("solo"), Principal: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.Get(context.Background(), "aws_vpc", res.ID)
	if err != nil || got.ID != res.ID {
		t.Fatalf("get after create: %v %v", got, err)
	}
}
