package cloud

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"cloudless/internal/eval"
	"cloudless/internal/schema"
	"cloudless/internal/telemetry"
)

// Options configure a simulator instance.
type Options struct {
	// TimeScale multiplies every modeled latency. 1.0 simulates realistic
	// provisioning times; tests and benchmarks use small values (e.g.
	// 0.0005 turns a 90 s VM creation into 45 ms). Zero disables modeled
	// latency entirely.
	TimeScale float64
	// FailureRate is the probability that any mutating call fails with a
	// retryable internal error (transient fault injection).
	FailureRate float64
	// Seed makes fault injection and jitter deterministic.
	Seed int64
	// QuotaPerTypeRegion bounds how many resources of one type may exist
	// in one region; 0 means the default of 10000.
	QuotaPerTypeRegion int
	// DisableRateLimit turns off API rate limiting.
	DisableRateLimit bool
	// RateLimitOverride, when > 0, replaces every provider's modeled rate.
	RateLimitOverride float64
	// EnforceConstraints controls deploy-time knowledge-base enforcement.
	// On by default (nil Options means enforce); the E6 experiment turns
	// validation off at the IaC layer, not here — the cloud always errors,
	// exactly like a real provider.
	EnforceConstraints bool
	// ReadLatency is the modeled latency of read calls before scaling.
	ReadLatency time.Duration
	// ReadinessDelay is the modeled gap between a create returning and the
	// resource turning ready (health lifecycle). Scaled by TimeScale; zero
	// means resources are ready the moment the create call returns.
	ReadinessDelay time.Duration
}

// DefaultOptions returns options suitable for tests: tiny time scale, no
// faults, constraints enforced.
func DefaultOptions() Options {
	return Options{
		TimeScale:          0,
		FailureRate:        0,
		Seed:               1,
		EnforceConstraints: true,
		ReadLatency:        50 * time.Millisecond,
	}
}

// Metrics counts control-plane traffic; the drift experiments (E7) read it.
type Metrics struct {
	Calls        int64
	Creates      int64
	Reads        int64
	Updates      int64
	Deletes      int64
	Lists        int64
	LogReads     int64
	Throttled    int64
	ThrottleWait time.Duration
	Failures     int64
	// BatchCalls counts batched control-plane calls — each admits (and is
	// rate-limited as) ONE call regardless of item count — and BatchItems
	// the items they carried. The SC experiment reads the ratio as its
	// calls-per-resource figure.
	BatchCalls int64
	BatchItems int64
	// IdemReplays counts creates answered from the idempotency index
	// instead of provisioning a duplicate (CR experiment).
	IdemReplays int64
	// HealthReads counts readiness probes (HG experiment).
	HealthReads int64
}

// Sim is the in-memory cloud simulator. It is safe for concurrent use.
type Sim struct {
	opts Options

	mu        sync.RWMutex
	store     map[string]map[string]*Resource // type -> id -> resource
	idCounter map[string]int
	ipCounter int
	log       []Event
	logSeq    int64
	rng       *rand.Rand
	metrics   Metrics

	limiters map[string]*rateLimiter // per provider
	kb       *schema.KnowledgeBase

	// injectThrottle fails the next N admitted calls with a fast 429 (plus
	// a Retry-After hint), independent of the token buckets — the PV bench
	// and conformance tests use it to script throttling bursts.
	injectThrottle int

	// idem maps idempotency keys to the identity provisioned under them,
	// so a replayed create returns the original resource (see
	// CreateRequest.IdempotencyKey). Real clouds expire these after hours;
	// the sim keeps them for its lifetime.
	idem map[string]idemEntry

	// health tracks per-resource readiness lifecycles, keyed type+"/"+id;
	// unhealthy holds pending InjectUnhealthy specs (see health.go).
	health    map[string]*healthRec
	unhealthy []UnhealthySpec

	// crash, when armed via InjectCrash, simulates the client process dying
	// at an op boundary: the callback fires (killing the journal, cancelling
	// the context) and the call returns ErrCrashed. CrashAfterOp fires after
	// the mutation is durable server-side — the realistic "response lost on
	// the wire" case that leaves an op in doubt.
	crash *crashInjection

	// telemetry, when attached, mirrors the traffic counters into a metrics
	// registry with per-type/op/region labels (E7 attribution). A registry
	// riding the call context takes precedence per call.
	telemetry *telemetry.Registry

	// notify is a broadcast channel for activity-log appends: WaitActivity
	// parks on it, appendEventLocked closes and clears it. Lazily created so
	// the common no-waiter case costs nothing.
	notify chan struct{}
}

var _ Interface = (*Sim)(nil)

// NewSim builds a simulator.
func NewSim(opts Options) *Sim {
	if opts.ReadLatency == 0 {
		opts.ReadLatency = 50 * time.Millisecond
	}
	if opts.QuotaPerTypeRegion == 0 {
		opts.QuotaPerTypeRegion = 10000
	}
	s := &Sim{
		opts:      opts,
		store:     map[string]map[string]*Resource{},
		idCounter: map[string]int{},
		rng:       rand.New(rand.NewSource(opts.Seed)),
		limiters:  map[string]*rateLimiter{},
		kb:        schema.DefaultKB(),
		idem:      map[string]idemEntry{},
		health:    map[string]*healthRec{},
	}
	for _, name := range schema.Providers() {
		p, _ := schema.LookupProvider(name)
		rate := p.APIRateLimit
		if opts.RateLimitOverride > 0 {
			rate = opts.RateLimitOverride
		}
		s.limiters[name] = newRateLimiter(rate, rate*2)
	}
	return s
}

// AttachTelemetry mirrors the simulator's traffic accounting (API calls,
// throttles, injected failures) into the given registry. Callers that thread
// a telemetry.Recorder through ctx get the same counters without attaching.
func (s *Sim) AttachTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.telemetry = reg
}

// TelemetryRegistry returns the attached registry, or nil when none is.
func (s *Sim) TelemetryRegistry() *telemetry.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.telemetry
}

// registryFor resolves the registry to count a call against: the context's
// recorder wins, then the attached registry, else nil (counting disabled).
func (s *Sim) registryFor(ctx context.Context) *telemetry.Registry {
	if rec := telemetry.FromContext(ctx); rec != nil {
		return rec.Metrics()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.telemetry
}

// InjectThrottles makes the next n admitted calls fail fast with a 429
// carrying a Retry-After hint, regardless of the token buckets.
func (s *Sim) InjectThrottles(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injectThrottle += n
}

// idemEntry records what an idempotency key provisioned.
type idemEntry struct {
	typ string
	id  string
}

// CrashPoint identifies where in a mutating operation an injected crash
// fires.
type CrashPoint int

// Crash points. BeforeOp models the client dying before the request reaches
// the control plane (nothing mutated); AfterOp models the far nastier case
// where the mutation is durable server-side but the response is lost — the
// op is in doubt until recovery cross-checks the activity log.
const (
	CrashBeforeOp CrashPoint = iota
	CrashAfterOp
)

// ErrCrashed is returned by a mutating call interrupted by an injected
// crash. It is deliberately not an *APIError and not retryable: the
// simulated process is dead and cannot retry.
var ErrCrashed = fmt.Errorf("cloud: simulated client crash")

type crashInjection struct {
	point  CrashPoint
	afterN int // fires on the Nth mutating op reaching the point (1-based)
	fn     func()
}

// InjectCrash arms a one-shot crash at the given point of the Nth following
// mutating operation (create, update, or delete). When it fires, fn runs
// synchronously (the chaos harness uses it to kill the apply journal and
// cancel the apply context, simulating process death) and the operation
// returns ErrCrashed.
func (s *Sim) InjectCrash(point CrashPoint, afterN int, fn func()) {
	if afterN < 1 {
		afterN = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crash = &crashInjection{point: point, afterN: afterN, fn: fn}
}

// ClearCrash disarms any pending crash injection.
func (s *Sim) ClearCrash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crash = nil
}

// maybeCrash fires an armed crash injection if this mutating op reaches its
// point and countdown.
func (s *Sim) maybeCrash(point CrashPoint) error {
	s.mu.Lock()
	c := s.crash
	if c == nil || c.point != point {
		s.mu.Unlock()
		return nil
	}
	c.afterN--
	if c.afterN > 0 {
		s.mu.Unlock()
		return nil
	}
	s.crash = nil
	s.mu.Unlock()
	if c.fn != nil {
		c.fn()
	}
	return ErrCrashed
}

// Metrics returns a snapshot of the traffic counters.
func (s *Sim) Metrics() Metrics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metrics
}

// ResetMetrics zeroes the traffic counters.
func (s *Sim) ResetMetrics() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = Metrics{}
}

// admit applies rate limiting and failure injection for one call, counting
// the call (and any throttle or injected failure) into the traffic metrics
// and, when telemetry is wired up, the metrics registry.
func (s *Sim) admit(ctx context.Context, op, typ string, mutating bool) error {
	prov, ok := schema.ProviderForType(typ)
	if !ok {
		return &APIError{Code: CodeInvalid, Op: op, Type: typ,
			Message: fmt.Sprintf("UnknownResourceType: no API for resource type %q", typ)}
	}
	s.mu.Lock()
	s.metrics.Calls++
	lim := s.limiters[prov.Name]
	throttled := s.injectThrottle > 0
	if throttled {
		s.injectThrottle--
		s.metrics.Throttled++
	}
	s.mu.Unlock()
	reg := s.registryFor(ctx)
	reg.Counter("cloud.api_calls", "op", op, "type", typ).Inc()
	if throttled {
		reg.Counter("cloud.throttled", "provider", prov.Name).Inc()
		return &APIError{Code: CodeThrottled, Op: op, Type: typ, Retryable: true,
			RetryAfter: 5 * time.Millisecond,
			Message:    "TooManyRequests: request rate exceeded; retry after backoff"}
	}

	if !s.opts.DisableRateLimit {
		waited, err := lim.Wait(ctx)
		if err != nil {
			reg.Counter("cloud.throttled", "provider", prov.Name).Inc()
			return &APIError{Code: CodeThrottled, Op: op, Type: typ, Retryable: true,
				Message: "TooManyRequests: request rate exceeded; canceled while throttled"}
		}
		if waited > 0 {
			s.mu.Lock()
			s.metrics.Throttled++
			s.metrics.ThrottleWait += waited
			s.mu.Unlock()
			reg.Counter("cloud.throttled", "provider", prov.Name).Inc()
			reg.Histogram("cloud.throttle_wait_ms", "provider", prov.Name).
				Observe(float64(waited) / float64(time.Millisecond))
		}
	}
	if mutating && s.opts.FailureRate > 0 {
		s.mu.Lock()
		fail := s.rng.Float64() < s.opts.FailureRate
		if fail {
			s.metrics.Failures++
		}
		s.mu.Unlock()
		if fail {
			reg.Counter("cloud.injected_failures", "type", typ).Inc()
			return &APIError{Code: CodeInternal, Op: op, Type: typ, Retryable: true,
				Message: "InternalError: an internal error occurred; please retry"}
		}
	}
	return nil
}

// sleepScaled models operation latency with ±20% deterministic jitter. It
// reports whether the caller's context expired mid-sleep: read paths abort
// on that (the caller hung up before the response), while mutating paths
// ignore it — a real control plane finishes a provisioning operation even
// if the client disconnects.
func (s *Sim) sleepScaled(ctx context.Context, d time.Duration) error {
	if s.opts.TimeScale <= 0 || d <= 0 {
		return ctx.Err()
	}
	s.mu.Lock()
	jitter := 0.8 + 0.4*s.rng.Float64()
	s.mu.Unlock()
	scaled := time.Duration(float64(d) * s.opts.TimeScale * jitter)
	if scaled <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(scaled)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func shortType(typ string) string {
	if i := strings.Index(typ, "_"); i >= 0 {
		return typ[i+1:]
	}
	return typ
}

// Create provisions a resource, enforcing the same constraints a real cloud
// enforces at deploy time.
func (s *Sim) Create(ctx context.Context, req CreateRequest) (*Resource, error) {
	rs, ok := schema.LookupResource(req.Type)
	if !ok {
		return nil, &APIError{Code: CodeInvalid, Op: "create", Type: req.Type,
			Message: fmt.Sprintf("UnknownResourceType: %q", req.Type)}
	}
	if rs.DataSource {
		return nil, &APIError{Code: CodeInvalid, Op: "create", Type: req.Type,
			Message: "InvalidOperation: data sources cannot be created"}
	}
	if err := s.admit(ctx, "create", req.Type, true); err != nil {
		return nil, err
	}
	if err := s.maybeCrash(CrashBeforeOp); err != nil {
		return nil, err
	}
	out, err := s.provisionOne(ctx, rs, req)
	if err != nil {
		return nil, err
	}
	if err := s.maybeCrash(CrashAfterOp); err != nil {
		return nil, err
	}
	return out, nil
}

// provisionOne runs the post-admission create path: validation, quota,
// identity reservation, provisioning latency, and the activity-log event.
// Create and BatchCreate share it; the batch path admits once per batch and
// then provisions items concurrently, the way real control planes do.
func (s *Sim) provisionOne(ctx context.Context, rs *schema.ResourceSchema, req CreateRequest) (*Resource, error) {
	prov, _ := schema.ProviderForType(req.Type)
	region := req.Region
	if region == "" {
		region = prov.DefaultRegion
	}
	if !contains(prov.Regions, region) {
		return nil, &APIError{Code: CodeInvalid, Op: "create", Type: req.Type,
			Message: fmt.Sprintf("InvalidLocation: region %q is not available for this subscription", region)}
	}

	s.mu.Lock()
	// Idempotency-key replay comes before validation: the original create
	// already owns the unique name this request carries, so validating the
	// replay against it would reject the retry of our own in-flight op.
	if req.IdempotencyKey != "" {
		if ent, ok := s.idem[req.IdempotencyKey]; ok {
			if r := s.store[ent.typ][ent.id]; r != nil {
				s.metrics.IdemReplays++
				out := r.Clone()
				s.mu.Unlock()
				s.registryFor(ctx).Counter("cloud.idem_replays", "type", req.Type).Inc()
				return out, nil
			}
			// The keyed resource was deleted since; fall through and
			// provision a fresh one under the same key.
			delete(s.idem, req.IdempotencyKey)
		}
	}
	if err := s.validateCreateLocked(rs, region, req.Attrs); err != nil {
		s.mu.Unlock()
		return nil, err
	}

	// Quota.
	if bucket := s.store[req.Type]; bucket != nil {
		n := 0
		for _, r := range bucket {
			if r.Region == region {
				n++
			}
		}
		if n >= s.opts.QuotaPerTypeRegion {
			s.mu.Unlock()
			return nil, &APIError{Code: CodeQuota, Op: "create", Type: req.Type,
				Message: fmt.Sprintf("QuotaExceeded: limit of %d %s per region reached", s.opts.QuotaPerTypeRegion, req.Type)}
		}
	}

	// Reserve the identity and make it visible in "creating" state.
	s.idCounter[req.Type]++
	id := fmt.Sprintf("%s-%08d", shortType(req.Type), s.idCounter[req.Type])
	now := time.Now()
	res := &Resource{
		ID:         id,
		Type:       req.Type,
		Region:     region,
		Attrs:      map[string]eval.Value{},
		CreatedAt:  now,
		UpdatedAt:  now,
		Generation: 1,
	}
	for k, v := range req.Attrs {
		res.Attrs[k] = v
	}
	for name, a := range rs.Attrs {
		if _, set := res.Attrs[name]; !set && a.HasDefault {
			res.Attrs[name] = a.Default
		}
	}
	s.fillComputedLocked(rs, res)
	if st := rs.Attr("state"); st != nil && st.Computed {
		res.Attrs["state"] = eval.String("creating")
	}
	if s.store[req.Type] == nil {
		s.store[req.Type] = map[string]*Resource{}
	}
	s.store[req.Type][id] = res
	// Start the readiness lifecycle: born provisioning, with any pending
	// unhealthiness injection stamped now so the outcome is decided by
	// creation order, not probe timing.
	hrec := &healthRec{}
	s.applyUnhealthyLocked(hrec, req.Type, region, stringAttr(req.Attrs, "name"))
	s.health[req.Type+"/"+id] = hrec
	// The idempotency claim is durable as soon as the identity is reserved:
	// a replay racing the provisioning sleep still finds the key.
	if req.IdempotencyKey != "" {
		s.idem[req.IdempotencyKey] = idemEntry{typ: req.Type, id: id}
	}
	s.metrics.Creates++
	s.mu.Unlock()
	s.registryFor(ctx).Counter("cloud.creates", "type", req.Type, "region", region).Inc()

	// Provisioning latency happens outside the lock: real clouds provision
	// many resources concurrently.
	s.sleepScaled(ctx, rs.ProvisionTime)

	s.mu.Lock()
	if st := rs.Attr("state"); st != nil && st.Computed {
		res.Attrs["state"] = eval.String("running")
	}
	res.UpdatedAt = time.Now()
	hrec.provisioned = true
	hrec.readyAt = time.Now().Add(s.scaledFlat(s.opts.ReadinessDelay))
	s.appendEventLocked(OpCreate, res, req.Principal, nil)
	out := res.Clone()
	s.mu.Unlock()
	return out, nil
}

// validateCreateLocked performs deploy-time validation: required attributes,
// allowed values, and the knowledge-base constraint rules.
func (s *Sim) validateCreateLocked(rs *schema.ResourceSchema, region string, attrs map[string]eval.Value) error {
	for _, name := range rs.RequiredAttrs() {
		v, ok := attrs[name]
		if !ok || v.IsNull() {
			return &APIError{Code: CodeInvalid, Op: "create", Type: rs.Type,
				Message: fmt.Sprintf("InvalidParameter: required property %q was not provided", name)}
		}
	}
	for name, v := range attrs {
		a := rs.Attr(name)
		if a == nil {
			return &APIError{Code: CodeInvalid, Op: "create", Type: rs.Type,
				Message: fmt.Sprintf("InvalidParameter: unknown property %q", name)}
		}
		if len(a.OneOf) > 0 && v.Kind() == eval.KindString && !contains(a.OneOf, v.AsString()) {
			return &APIError{Code: CodeInvalid, Op: "create", Type: rs.Type,
				Message: fmt.Sprintf("InvalidParameterValue: %q is not a valid value for %q", v.AsString(), name)}
		}
	}
	// Unique names per (type, region).
	if nameV, ok := attrs["name"]; ok && nameV.Kind() == eval.KindString {
		for _, r := range s.store[rs.Type] {
			if r.Region == region && r.Attr("name").Equal(nameV) {
				return &APIError{Code: CodeConflict, Op: "create", Type: rs.Type,
					Message: fmt.Sprintf("Conflict: a %s named %q already exists in %s", rs.Type, nameV.AsString(), region)}
			}
		}
	}
	if !s.opts.EnforceConstraints {
		return nil
	}
	// Reference resolution: region-scoped, like real clouds. A reference to
	// a resource in another region fails with "not found" — reproducing the
	// misleading error the paper's §3.5 example describes.
	for name, a := range rs.Attrs {
		if a.Semantic.Kind != schema.SemResourceRef {
			continue
		}
		v, ok := attrs[name]
		if !ok || v.IsNull() {
			continue
		}
		for _, id := range refIDs(v) {
			ref := s.findByIDLocked(id)
			if ref == nil || !a.Semantic.Accepts(ref.Type) || ref.Region != region {
				return &APIError{Code: CodeInvalid, Op: "create", Type: rs.Type,
					Message: fmt.Sprintf("ResourceNotFound: %s creation failed because specified %s %q is not found",
						prettyType(rs.Type), prettyAttrTarget(name), id)}
			}
		}
	}
	// Knowledge-base rules.
	for _, rule := range s.kb.RulesFor(rs.Type) {
		if err := s.checkRuleLocked(rule, rs, region, attrs); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) checkRuleLocked(rule *schema.Rule, rs *schema.ResourceSchema, region string, attrs map[string]eval.Value) error {
	switch rule.Kind {
	case schema.RuleSameRegion:
		// Region-scoped reference resolution above already guarantees this;
		// nothing further to check at the cloud level.
		return nil
	case schema.RuleAttrRequiresValue:
		v, set := attrs[rule.Attr]
		if !set || v.IsNull() {
			return nil
		}
		actual, ok := attrs[rule.RequiresAttr]
		if !ok {
			if a := rs.Attr(rule.RequiresAttr); a != nil && a.HasDefault {
				actual = a.Default
			}
		}
		if !actual.Equal(rule.RequiresValue) {
			return &APIError{Code: CodeInvalid, Op: "create", Type: rs.Type,
				Message: fmt.Sprintf("InvalidParameterCombination: property %q may only be set when %q is %s (got %s)",
					rule.Attr, rule.RequiresAttr, rule.RequiresValue, actual)}
		}
		return nil
	case schema.RuleNoCIDROverlapWhenPeered:
		a := s.findByIDLocked(stringAttr(attrs, rule.PeerAttrA))
		b := s.findByIDLocked(stringAttr(attrs, rule.PeerAttrB))
		if a == nil || b == nil {
			return nil // reference errors reported elsewhere
		}
		for _, ca := range cidrList(a.Attr(rule.CIDRAttr)) {
			for _, cb := range cidrList(b.Attr(rule.CIDRAttr)) {
				if over, err := eval.PrefixesOverlap(ca, cb); err == nil && over {
					return &APIError{Code: CodeInvalid, Op: "create", Type: rs.Type,
						Message: fmt.Sprintf("AddressSpaceOverlap: cannot peer networks %s and %s: address space %s overlaps %s",
							a.ID, b.ID, ca, cb)}
				}
			}
		}
		return nil
	case schema.RuleCIDRWithinParent:
		child := stringAttr(attrs, rule.Attr)
		parent := s.findByIDLocked(stringAttr(attrs, rule.RefAttr))
		if child == "" || parent == nil {
			return nil
		}
		for _, pc := range cidrList(parent.Attr(rule.CIDRAttr)) {
			if over, err := eval.PrefixesOverlap(pc, child); err == nil && over {
				// Contained (or at least overlapping the parent space).
				return nil
			}
		}
		return &APIError{Code: CodeInvalid, Op: "create", Type: rs.Type,
			Message: fmt.Sprintf("InvalidAddressRange: range %q is not within the parent network's address space", child)}
	default:
		return nil
	}
}

func prettyType(typ string) string {
	return strings.ReplaceAll(shortType(typ), "_", " ")
}

func prettyAttrTarget(attr string) string {
	a := strings.TrimSuffix(strings.TrimSuffix(attr, "_ids"), "_id")
	return strings.ReplaceAll(a, "_", " ")
}

func refIDs(v eval.Value) []string {
	switch v.Kind() {
	case eval.KindString:
		if v.AsString() == "" {
			return nil
		}
		return []string{v.AsString()}
	case eval.KindList:
		var out []string
		for _, e := range v.AsList() {
			if e.Kind() == eval.KindString && e.AsString() != "" {
				out = append(out, e.AsString())
			}
		}
		return out
	default:
		return nil
	}
}

func stringAttr(attrs map[string]eval.Value, name string) string {
	if v, ok := attrs[name]; ok && v.Kind() == eval.KindString {
		return v.AsString()
	}
	return ""
}

func cidrList(v eval.Value) []string {
	return refIDs(v) // same shape: string or list of strings
}

func (s *Sim) findByIDLocked(id string) *Resource {
	if id == "" {
		return nil
	}
	for _, bucket := range s.store {
		if r, ok := bucket[id]; ok {
			return r
		}
	}
	return nil
}

// fillComputedLocked assigns cloud-side computed attributes.
func (s *Sim) fillComputedLocked(rs *schema.ResourceSchema, res *Resource) {
	for name, a := range rs.Attrs {
		if !a.Computed {
			continue
		}
		if name == "state" {
			continue // handled by the creation lifecycle
		}
		res.Attrs[name] = s.computedValueLocked(name, rs, res)
	}
}

func (s *Sim) computedValueLocked(name string, rs *schema.ResourceSchema, res *Resource) eval.Value {
	switch name {
	case "id":
		return eval.String(res.ID)
	case "arn":
		return eval.String(fmt.Sprintf("arn:sim:%s:%s:%s", rs.Provider, res.Region, res.ID))
	case "private_ip":
		s.ipCounter++
		return eval.String(fmt.Sprintf("10.%d.%d.%d", (s.ipCounter>>16)&0xff, (s.ipCounter>>8)&0xff, s.ipCounter&0xff+1))
	case "public_ip", "ip_address":
		s.ipCounter++
		return eval.String(fmt.Sprintf("52.%d.%d.%d", (s.ipCounter>>16)&0xff, (s.ipCounter>>8)&0xff, s.ipCounter&0xff+1))
	case "mac_address":
		s.ipCounter++
		return eval.String(fmt.Sprintf("02:00:00:%02x:%02x:%02x", (s.ipCounter>>16)&0xff, (s.ipCounter>>8)&0xff, s.ipCounter&0xff))
	case "dns_name", "endpoint", "fqdn", "domain_name":
		return eval.String(fmt.Sprintf("%s.%s.%s.sim.cloud", res.ID, res.Region, rs.Provider))
	case "names": // availability zones
		return eval.Strings(res.Region+"a", res.Region+"b", res.Region+"c")
	default:
		return eval.String(fmt.Sprintf("%s-%s", name, res.ID))
	}
}

// Get fetches a resource by type and ID.
func (s *Sim) Get(ctx context.Context, typ, id string) (*Resource, error) {
	if err := s.admit(ctx, "get", typ, false); err != nil {
		return nil, err
	}
	if err := s.sleepScaled(ctx, s.opts.ReadLatency); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.metrics.Reads++
	r := s.store[typ][id]
	var out *Resource
	if r != nil {
		out = r.Clone()
	}
	s.mu.Unlock()
	if out == nil {
		return nil, &APIError{Code: CodeNotFound, Op: "get", Type: typ, ID: id,
			Message: fmt.Sprintf("ResourceNotFound: %s %q does not exist", prettyType(typ), id)}
	}
	return out, nil
}

// Update mutates attributes in place.
func (s *Sim) Update(ctx context.Context, req UpdateRequest) (*Resource, error) {
	rs, ok := schema.LookupResource(req.Type)
	if !ok {
		return nil, &APIError{Code: CodeInvalid, Op: "update", Type: req.Type,
			Message: fmt.Sprintf("UnknownResourceType: %q", req.Type)}
	}
	if err := s.admit(ctx, "update", req.Type, true); err != nil {
		return nil, err
	}
	if err := s.maybeCrash(CrashBeforeOp); err != nil {
		return nil, err
	}
	s.mu.Lock()
	r := s.store[req.Type][req.ID]
	if r == nil {
		s.mu.Unlock()
		return nil, &APIError{Code: CodeNotFound, Op: "update", Type: req.Type, ID: req.ID,
			Message: fmt.Sprintf("ResourceNotFound: %s %q does not exist", prettyType(req.Type), req.ID)}
	}
	var changed []string
	for name, v := range req.Attrs {
		a := rs.Attr(name)
		if a == nil {
			s.mu.Unlock()
			return nil, &APIError{Code: CodeInvalid, Op: "update", Type: req.Type, ID: req.ID,
				Message: fmt.Sprintf("InvalidParameter: unknown property %q", name)}
		}
		if a.Computed {
			s.mu.Unlock()
			return nil, &APIError{Code: CodeInvalid, Op: "update", Type: req.Type, ID: req.ID,
				Message: fmt.Sprintf("InvalidParameter: property %q is read-only", name)}
		}
		if a.ForceNew {
			s.mu.Unlock()
			return nil, &APIError{Code: CodeConflict, Op: "update", Type: req.Type, ID: req.ID,
				Message: fmt.Sprintf("InvalidOperation: property %q cannot be changed after creation; the resource must be recreated", name)}
		}
		if len(a.OneOf) > 0 && v.Kind() == eval.KindString && !contains(a.OneOf, v.AsString()) {
			s.mu.Unlock()
			return nil, &APIError{Code: CodeInvalid, Op: "update", Type: req.Type, ID: req.ID,
				Message: fmt.Sprintf("InvalidParameterValue: %q is not a valid value for %q", v.AsString(), name)}
		}
		if !r.Attr(name).Equal(v) {
			changed = append(changed, name)
		}
		r.Attrs[name] = v
	}
	sort.Strings(changed)
	s.metrics.Updates++
	s.mu.Unlock()

	s.sleepScaled(ctx, rs.UpdateTime)

	s.mu.Lock()
	r.UpdatedAt = time.Now()
	r.Generation++
	s.appendEventLocked(OpUpdate, r, req.Principal, changed)
	out := r.Clone()
	s.mu.Unlock()
	if err := s.maybeCrash(CrashAfterOp); err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes a resource, refusing when dependents still reference it
// (real clouds' DependencyViolation behaviour, which is what forces IaC
// engines to destroy in reverse dependency order).
func (s *Sim) Delete(ctx context.Context, typ, id, principal string) error {
	rs, ok := schema.LookupResource(typ)
	if !ok {
		return &APIError{Code: CodeInvalid, Op: "delete", Type: typ,
			Message: fmt.Sprintf("UnknownResourceType: %q", typ)}
	}
	if err := s.admit(ctx, "delete", typ, true); err != nil {
		return err
	}
	if err := s.maybeCrash(CrashBeforeOp); err != nil {
		return err
	}
	s.mu.Lock()
	r := s.store[typ][id]
	if r == nil {
		s.mu.Unlock()
		return &APIError{Code: CodeNotFound, Op: "delete", Type: typ, ID: id,
			Message: fmt.Sprintf("ResourceNotFound: %s %q does not exist", prettyType(typ), id)}
	}
	if holder := s.referencedByLocked(id); holder != nil {
		s.mu.Unlock()
		return &APIError{Code: CodeConflict, Op: "delete", Type: typ, ID: id,
			Message: fmt.Sprintf("DependencyViolation: %s %q is in use by %s %q", prettyType(typ), id, prettyType(holder.Type), holder.ID)}
	}
	s.metrics.Deletes++
	s.mu.Unlock()

	s.sleepScaled(ctx, rs.DeleteTime)

	s.mu.Lock()
	delete(s.store[typ], id)
	delete(s.health, typ+"/"+id)
	s.appendEventLocked(OpDelete, r, principal, nil)
	s.mu.Unlock()
	if err := s.maybeCrash(CrashAfterOp); err != nil {
		return err
	}
	return nil
}

// referencedByLocked returns a resource that holds a reference to id.
func (s *Sim) referencedByLocked(id string) *Resource {
	for typ, bucket := range s.store {
		rs, ok := schema.LookupResource(typ)
		if !ok {
			continue
		}
		var refAttrs []string
		for name, a := range rs.Attrs {
			if a.Semantic.Kind == schema.SemResourceRef {
				refAttrs = append(refAttrs, name)
			}
		}
		if len(refAttrs) == 0 {
			continue
		}
		for _, r := range bucket {
			for _, name := range refAttrs {
				for _, ref := range refIDs(r.Attr(name)) {
					if ref == id {
						return r
					}
				}
			}
		}
	}
	return nil
}

// List returns resources of a type, optionally filtered by region, sorted
// by ID for determinism.
func (s *Sim) List(ctx context.Context, typ, region string) ([]*Resource, error) {
	if err := s.admit(ctx, "list", typ, false); err != nil {
		return nil, err
	}
	if err := s.sleepScaled(ctx, s.opts.ReadLatency); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.metrics.Lists++
	var out []*Resource
	for _, r := range s.store[typ] {
		if region == "" || r.Region == region {
			out = append(out, r.Clone())
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Activity returns events after the given sequence number. Activity-log
// reads are deliberately cheap: they bypass rate limiting, which is the
// §3.5 argument for log-native drift detection over API scanning.
func (s *Sim) Activity(ctx context.Context, afterSeq int64) ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.LogReads++
	s.metrics.Calls++
	s.telemetry.Counter("cloud.log_reads").Inc()
	var out []Event
	for _, e := range s.log {
		if e.Seq > afterSeq {
			out = append(out, e)
		}
	}
	return out, nil
}

// LastSeq returns the newest activity sequence number.
func (s *Sim) LastSeq() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logSeq
}

// WaitActivity is the long-poll form of Activity: it blocks up to wait for
// at least one event past afterSeq, returning immediately when events are
// already available and (nil, nil) on a quiet timeout. Cancellation surfaces
// as ctx.Err(). Like Activity, waiting bypasses rate limiting.
func (s *Sim) WaitActivity(ctx context.Context, afterSeq int64, wait time.Duration) ([]Event, error) {
	deadline := time.Now().Add(wait)
	for {
		s.mu.Lock()
		if s.logSeq > afterSeq {
			s.mu.Unlock()
			return s.Activity(ctx, afterSeq)
		}
		if s.notify == nil {
			s.notify = make(chan struct{})
		}
		ch := s.notify
		s.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
			return nil, nil
		case <-ch:
			timer.Stop()
		}
	}
}

func (s *Sim) appendEventLocked(op EventOp, r *Resource, principal string, changed []string) {
	if principal == "" {
		principal = "unknown"
	}
	s.logSeq++
	s.log = append(s.log, Event{
		Seq:       s.logSeq,
		Time:      time.Now(),
		Op:        op,
		Type:      r.Type,
		ID:        r.ID,
		Region:    r.Region,
		Principal: principal,
		Changed:   changed,
	})
	if s.notify != nil {
		close(s.notify)
		s.notify = nil
	}
}

// Count returns how many resources of a type exist (all regions).
func (s *Sim) Count(typ string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.store[typ])
}

// TotalResources returns the number of resources across all types.
func (s *Sim) TotalResources() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, bucket := range s.store {
		n += len(bucket)
	}
	return n
}

func contains(list []string, s string) bool {
	for _, e := range list {
		if e == s {
			return true
		}
	}
	return false
}
