package cloud

import (
	"context"
	"sync"
	"time"
)

// Coalescer wraps an Interface and merges concurrent Create and Get calls
// into batched wire requests (BatchCreate / BatchGet). It is the bridge
// between per-resource callers — the apply walker issues one Create per
// graph node, exactly as the journal and idempotency machinery require —
// and the bulk control-plane surface: calls that arrive within a short
// linger window ride the same batch, so a wave of independent creates
// unblocked together by the walker costs one admitted call instead of one
// per resource.
//
// Single-call semantics are preserved exactly: each caller gets its own
// resource or error (batches fail item-by-item), idempotency keys travel
// per item, and an isolated call just rides a batch of one after the
// linger expires. Update, Delete, List, Activity, and Health pass through
// unbatched.
//
// The batch is dispatched with the context of the call that opened the
// window. Coalescing only helps callers that share a lifecycle (one apply
// run); callers with independent cancellation should use separate
// Coalescers.
type Coalescer struct {
	Interface // pass-through for the unbatched surface
	opts      CoalescerOptions

	mu      sync.Mutex
	creates []pendingOp
	gets    []pendingOp
}

// CoalescerOptions tunes the batching window.
type CoalescerOptions struct {
	// Linger is how long the first call of a window waits for company
	// before the batch is dispatched (default 2ms). Latency cost is at most
	// one linger per graph level; with cloud round-trips in the tens of
	// milliseconds the trade is strongly positive.
	Linger time.Duration
	// MaxItems dispatches a window early once this many calls have joined
	// (default MaxBatchItems).
	MaxItems int
}

// pendingOp is one caller waiting inside a window. Exactly one of the
// request fields is set depending on the queue it sits in.
type pendingOp struct {
	create CreateRequest
	key    ResourceKey
	done   chan BatchResult
}

// NewCoalescer wraps cl. The upstream's own batch implementation is used
// when present (Sim, Client, provider runtime); otherwise dispatch degrades
// to bounded per-item calls and the Coalescer is overhead-neutral.
func NewCoalescer(cl Interface, opts CoalescerOptions) *Coalescer {
	if opts.Linger <= 0 {
		opts.Linger = 2 * time.Millisecond
	}
	if opts.MaxItems <= 0 || opts.MaxItems > MaxBatchItems {
		opts.MaxItems = MaxBatchItems
	}
	return &Coalescer{Interface: cl, opts: opts}
}

// Create enqueues the request into the current window and blocks until the
// batch carrying it lands.
func (c *Coalescer) Create(ctx context.Context, req CreateRequest) (*Resource, error) {
	op := pendingOp{create: req, done: make(chan BatchResult, 1)}
	c.enqueue(ctx, &c.creates, op, c.flushCreates)
	return c.await(ctx, op.done)
}

// Get enqueues the read into the current window and blocks until the batch
// carrying it lands.
func (c *Coalescer) Get(ctx context.Context, typ, id string) (*Resource, error) {
	op := pendingOp{key: ResourceKey{Type: typ, ID: id}, done: make(chan BatchResult, 1)}
	c.enqueue(ctx, &c.gets, op, c.flushGets)
	return c.await(ctx, op.done)
}

// enqueue adds op to a queue, arming the linger timer when it opens a new
// window and flushing inline when the window fills.
func (c *Coalescer) enqueue(ctx context.Context, queue *[]pendingOp, op pendingOp, flush func(context.Context)) {
	c.mu.Lock()
	*queue = append(*queue, op)
	first := len(*queue) == 1
	full := len(*queue) >= c.opts.MaxItems
	c.mu.Unlock()
	switch {
	case full:
		flush(ctx)
	case first:
		time.AfterFunc(c.opts.Linger, func() { flush(ctx) })
	}
}

// await delivers the caller's slice of the batch outcome.
func (c *Coalescer) await(ctx context.Context, done <-chan BatchResult) (*Resource, error) {
	select {
	case r := <-done:
		return r.Resource, r.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flushCreates drains the create window into one BatchCreate. A stale timer
// firing after an early full-flush finds an empty (or younger) queue and
// simply dispatches whatever is there — a smaller batch, never a lost op.
func (c *Coalescer) flushCreates(ctx context.Context) {
	c.mu.Lock()
	batch := c.creates
	c.creates = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	reqs := make([]CreateRequest, len(batch))
	for i, op := range batch {
		reqs[i] = op.create
	}
	results, err := BatchCreate(ctx, c.Interface, reqs)
	deliver(batch, results, err)
}

// flushGets drains the read window into one BatchGet.
func (c *Coalescer) flushGets(ctx context.Context) {
	c.mu.Lock()
	batch := c.gets
	c.gets = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	keys := make([]ResourceKey, len(batch))
	for i, op := range batch {
		keys[i] = op.key
	}
	results, err := BatchGet(ctx, c.Interface, keys)
	deliver(batch, results, err)
}

// deliver hands each waiter its per-item result; a whole-call failure
// (throttle on the batch, transport loss, cancellation) fans out to every
// item that has no result of its own.
func deliver(batch []pendingOp, results []BatchResult, err error) {
	for i, op := range batch {
		r := BatchResult{Err: err}
		if i < len(results) && (results[i].Resource != nil || results[i].Err != nil) {
			r = results[i]
		} else if err == nil {
			r = BatchResult{Err: &APIError{Code: CodeInternal, Op: "batch",
				Message: "InternalError: batch result missing for item"}}
		}
		op.done <- r
	}
}
