package cloud

import (
	"context"
	"sort"
	"sync"
)

// This file defines the bulk control-plane surface: batched creates and
// reads, and paginated listing. Real clouds amortize per-call overhead with
// exactly these shapes (EC2 RunInstances min/max counts, DescribeInstances
// with InstanceIds, paginated Describe* APIs); the scale-out planner and
// applier depend on them so that throughput at 100k resources is bounded by
// provisioning latency, not HTTP round-trips.
//
// Like ActivityWaiter, the batch operations are optional extensions of
// Interface: Sim, Client, and the provider runtime implement them natively,
// while the package-level helpers (BatchCreate, BatchGet, ListPaged,
// ListAll) degrade to per-item calls for any plain Interface, so fakes and
// wrappers keep working unchanged.

// MaxBatchItems bounds one batch request, mirroring real bulk APIs (e.g.
// DescribeInstances' 1000-filter cap). Oversized batches fail wholesale with
// a 400 so callers learn to chunk.
const MaxBatchItems = 256

// ResourceKey identifies one resource for a batched read.
type ResourceKey struct {
	Type string `json:"type"`
	ID   string `json:"id"`
}

// BatchResult is the per-item outcome of a batched operation. Exactly one of
// Resource and Err is set; batched calls fail item-by-item, never wholesale,
// so one invalid request cannot sink its neighbours.
type BatchResult struct {
	Resource *Resource
	Err      error
}

// ListPageResult is one page of a paginated List. NextPageToken is opaque to
// callers; an empty token means the listing is exhausted. Pages order
// resources by (type, id), so a full pagination sweep observes the same
// deterministic order as a plain List.
type ListPageResult struct {
	Resources     []*Resource
	NextPageToken string
}

// BatchCreator is the optional bulk-create extension of Interface. The
// result slice is index-aligned with reqs.
type BatchCreator interface {
	BatchCreate(ctx context.Context, reqs []CreateRequest) ([]BatchResult, error)
}

// BatchGetter is the optional bulk-read extension of Interface. The result
// slice is index-aligned with keys; missing resources surface as per-item
// 404s, not a whole-call error.
type BatchGetter interface {
	BatchGet(ctx context.Context, keys []ResourceKey) ([]BatchResult, error)
}

// PageLister is the optional paginated-list extension of Interface. limit 0
// means server-chosen; pageToken "" starts from the beginning.
type PageLister interface {
	ListPage(ctx context.Context, typ, region string, limit int, pageToken string) (*ListPageResult, error)
}

// fallbackFanOut bounds the per-item concurrency of the degraded batch
// helpers, mirroring the refresh fan-out used by the planner.
const fallbackFanOut = 16

// BatchCreate dispatches reqs through cl.BatchCreate when available and
// falls back to bounded-concurrency single creates otherwise. Results are
// index-aligned with reqs. The returned error is reserved for whole-call
// failures (context cancellation, transport loss); per-item failures land in
// the results.
func BatchCreate(ctx context.Context, cl Interface, reqs []CreateRequest) ([]BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if bc, ok := cl.(BatchCreator); ok {
		return bc.BatchCreate(ctx, reqs)
	}
	results := make([]BatchResult, len(reqs))
	runBounded(ctx, len(reqs), func(i int) {
		res, err := cl.Create(ctx, reqs[i])
		results[i] = BatchResult{Resource: res, Err: err}
	})
	fillCanceled(results, ctx)
	return results, ctx.Err()
}

// BatchGet fetches keys through cl.BatchGet when available and falls back to
// bounded-concurrency single gets otherwise. Results are index-aligned with
// keys; a missing resource is a per-item 404 in the results.
func BatchGet(ctx context.Context, cl Interface, keys []ResourceKey) ([]BatchResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if bg, ok := cl.(BatchGetter); ok {
		return bg.BatchGet(ctx, keys)
	}
	results := make([]BatchResult, len(keys))
	runBounded(ctx, len(keys), func(i int) {
		res, err := cl.Get(ctx, keys[i].Type, keys[i].ID)
		results[i] = BatchResult{Resource: res, Err: err}
	})
	fillCanceled(results, ctx)
	return results, ctx.Err()
}

// ListPaged returns one page through cl.ListPage when available, and
// otherwise emulates pagination client-side over a full List (sorted by ID),
// so page-oriented callers work against any Interface.
func ListPaged(ctx context.Context, cl Interface, typ, region string, limit int, pageToken string) (*ListPageResult, error) {
	if pl, ok := cl.(PageLister); ok {
		return pl.ListPage(ctx, typ, region, limit, pageToken)
	}
	all, err := cl.List(ctx, typ, region)
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return slicePage(all, limit, pageToken), nil
}

// ListAll drains every page of a paginated listing. pageSize 0 lets the
// server choose. It is the standard way for scanners to walk large types
// with bounded per-response payloads.
func ListAll(ctx context.Context, cl Interface, typ, region string, pageSize int) ([]*Resource, error) {
	var out []*Resource
	token := ""
	for {
		page, err := ListPaged(ctx, cl, typ, region, pageSize, token)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Resources...)
		if page.NextPageToken == "" {
			return out, nil
		}
		token = page.NextPageToken
	}
}

// slicePage cuts one page out of an ID-sorted slice using "strictly after
// token" semantics: the token is the last ID of the previous page, so pages
// stay stable when resources are created or deleted between calls.
func slicePage(sorted []*Resource, limit int, pageToken string) *ListPageResult {
	start := 0
	if pageToken != "" {
		start = sort.Search(len(sorted), func(i int) bool { return sorted[i].ID > pageToken })
	}
	rest := sorted[start:]
	if limit <= 0 || limit >= len(rest) {
		return &ListPageResult{Resources: rest}
	}
	page := rest[:limit]
	return &ListPageResult{Resources: page, NextPageToken: page[len(page)-1].ID}
}

// fillCanceled marks items never dispatched (cancellation hit mid-batch) with
// the context error, so no result is silently empty.
func fillCanceled(results []BatchResult, ctx context.Context) {
	if ctx.Err() == nil {
		return
	}
	for i := range results {
		if results[i].Resource == nil && results[i].Err == nil {
			results[i].Err = ctx.Err()
		}
	}
}

// runBounded runs fn(0..n-1) with at most fallbackFanOut concurrent workers.
func runBounded(ctx context.Context, n int, fn func(i int)) {
	workers := fallbackFanOut
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			close(next)
			wg.Wait()
			return
		}
	}
	close(next)
	wg.Wait()
}
