package cloud

import (
	"context"
	"sync"
	"time"
)

// rateLimiter is a token-bucket limiter for the simulated control plane.
// It supports two disciplines, matching the two behaviours real SDKs see:
// Wait (block until a token is available, respecting context cancellation)
// and Allow (non-blocking; a miss maps to HTTP 429).
type rateLimiter struct {
	mu       sync.Mutex
	rate     float64 // tokens per second
	burst    float64
	tokens   float64
	lastFill time.Time
	now      func() time.Time
	// sleeper lets tests and scaled simulations replace real sleeping.
	sleeper func(ctx context.Context, d time.Duration) error
}

// newRateLimiter builds a limiter with the given sustained rate and burst.
func newRateLimiter(rate, burst float64) *rateLimiter {
	l := &rateLimiter{
		rate:   rate,
		burst:  burst,
		tokens: burst,
		now:    time.Now,
		sleeper: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	l.lastFill = l.now()
	return l
}

func (l *rateLimiter) refillLocked() {
	now := l.now()
	elapsed := now.Sub(l.lastFill).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.lastFill = now
	}
}

// Allow consumes a token if one is available.
func (l *rateLimiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked()
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Wait blocks until a token is available or the context is canceled.
// It returns the time spent waiting.
func (l *rateLimiter) Wait(ctx context.Context) (time.Duration, error) {
	var waited time.Duration
	for {
		l.mu.Lock()
		l.refillLocked()
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return waited, nil
		}
		need := (1 - l.tokens) / l.rate
		l.mu.Unlock()
		d := time.Duration(need * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		if err := l.sleeper(ctx, d); err != nil {
			return waited, err
		}
		waited += d
	}
}
