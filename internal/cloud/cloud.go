// Package cloud implements the simulated multi-region cloud substrate that
// Cloudless deploys onto.
//
// The simulator reproduces the control-plane behaviours every mechanism in
// the paper interacts with: resource CRUD with cloud-assigned IDs and
// computed attributes, per-provider API rate limiting with throttling
// (HTTP 429 semantics), realistic per-type provisioning latency, transient
// failure injection, per-region quotas, deploy-time constraint enforcement
// with deliberately vague error messages (the §3.5 motivation for an IaC
// debugger), and an activity log modeled on Azure Activity Log / AWS
// CloudTrail (§3.5 drift detection).
//
// The same API is available in-process (Sim) and over HTTP (Server/Client),
// so experiments can choose between microsecond-scale in-memory calls and a
// real network path.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cloudless/internal/eval"
)

// waitPollBase is the mean pause of WaitActivity's sleep-and-poll fallback;
// the actual pause is jittered across [base/2, 3*base/2).
const waitPollBase = 200 * time.Millisecond

// Resource is one deployed cloud resource.
type Resource struct {
	// ID is the cloud-assigned identifier, e.g. "vm-00000042".
	ID string `json:"id"`
	// Type is the resource type, e.g. "aws_virtual_machine".
	Type string `json:"type"`
	// Region is the region the resource lives in.
	Region string `json:"region"`
	// Attrs holds every attribute, including computed ones.
	Attrs map[string]eval.Value `json:"-"`
	// CreatedAt and UpdatedAt are simulator timestamps.
	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`
	// Generation increments on every mutation; drift comparison uses it as
	// a cheap change hint.
	Generation int `json:"generation"`
}

// Clone returns a deep-enough copy (attribute values are immutable).
func (r *Resource) Clone() *Resource {
	cp := *r
	cp.Attrs = make(map[string]eval.Value, len(r.Attrs))
	for k, v := range r.Attrs {
		cp.Attrs[k] = v
	}
	return &cp
}

// Attr returns an attribute value, or eval.Null when absent.
func (r *Resource) Attr(name string) eval.Value {
	if v, ok := r.Attrs[name]; ok {
		return v
	}
	return eval.Null
}

// CreateRequest asks the cloud to provision a resource.
type CreateRequest struct {
	Type   string
	Region string
	Attrs  map[string]eval.Value
	// Principal identifies the caller for the activity log ("cloudless",
	// "legacy-script", a team name...). Drift detection keys off this.
	Principal string
	// IdempotencyKey, when non-empty, makes the create replay-safe: if a
	// resource was already provisioned under the same key (and still
	// exists), the cloud returns that resource instead of creating a
	// duplicate. This is how a crashed-and-restarted applier retries an
	// in-doubt create without orphaning the first attempt. Mirrors the
	// client-token mechanisms of real clouds (EC2 ClientToken, Azure
	// client-request-id).
	IdempotencyKey string
}

// UpdateRequest mutates attributes of an existing resource.
type UpdateRequest struct {
	Type      string
	ID        string
	Attrs     map[string]eval.Value
	Principal string
}

// API error codes, mirroring HTTP status semantics.
const (
	CodeInvalid   = 400
	CodeNotFound  = 404
	CodeConflict  = 409
	CodeThrottled = 429
	CodeInternal  = 500
	CodeQuota     = 402 // quota exceeded
)

// APIError is the error type every cloud operation returns on failure. Its
// Message is written the way real clouds write them — in cloud-level
// vocabulary that does not reference IaC constructs — because translating
// these messages back to configuration is the diagnoser's job (§3.5).
type APIError struct {
	Code      int    `json:"code"`
	Op        string `json:"op"`   // "create", "get", "update", "delete", "list"
	Type      string `json:"type"` // resource type
	ID        string `json:"id,omitempty"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	// RetryAfter is the server's backpressure hint on 429s: do not retry
	// sooner than this. Zero means no hint.
	RetryAfter time.Duration `json:"retry_after_ns,omitempty"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.ID != "" {
		return fmt.Sprintf("cloud: %s %s %s: %s (code %d)", e.Op, e.Type, e.ID, e.Message, e.Code)
	}
	return fmt.Sprintf("cloud: %s %s: %s (code %d)", e.Op, e.Type, e.Message, e.Code)
}

// IsRetryable reports whether an error is a transient cloud error worth
// retrying (throttling or internal errors).
func IsRetryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable
	}
	return false
}

// IsNotFound reports whether an error is a 404.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeNotFound
}

// IsThrottled reports whether an error is a 429.
func IsThrottled(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeThrottled
}

// EventOp is the operation recorded in an activity-log event.
type EventOp string

// Activity log operations.
const (
	OpCreate EventOp = "create"
	OpUpdate EventOp = "update"
	OpDelete EventOp = "delete"
)

// Event is one activity-log entry.
type Event struct {
	// Seq is a monotonically increasing sequence number; log consumers
	// poll with "everything after seq N".
	Seq       int64     `json:"seq"`
	Time      time.Time `json:"time"`
	Op        EventOp   `json:"op"`
	Type      string    `json:"resource_type"`
	ID        string    `json:"resource_id"`
	Region    string    `json:"region"`
	Principal string    `json:"principal"`
	// Changed lists the attribute names touched by an update.
	Changed []string `json:"changed,omitempty"`
}

// Interface is the cloud control-plane surface consumed by the applier, the
// drift detector, and the porter. Both the in-memory simulator and the HTTP
// client satisfy it.
type Interface interface {
	Create(ctx context.Context, req CreateRequest) (*Resource, error)
	Get(ctx context.Context, typ, id string) (*Resource, error)
	Update(ctx context.Context, req UpdateRequest) (*Resource, error)
	Delete(ctx context.Context, typ, id, principal string) error
	// List returns resources of a type; empty region means all regions.
	List(ctx context.Context, typ, region string) ([]*Resource, error)
	// Activity returns log events with Seq > afterSeq, in order.
	Activity(ctx context.Context, afterSeq int64) ([]Event, error)
	// Health reports a resource's readiness (provisioning/ready/degraded/
	// failed). Guarded applies probe it before declaring an op done.
	Health(ctx context.Context, typ, id string) (*HealthReport, error)
}

// ActivityWaiter is the optional long-poll extension of Interface: block up
// to wait for events past afterSeq, returning (nil, nil) on a quiet timeout.
// Sim and Client implement it natively; WaitActivity degrades gracefully for
// implementations that don't.
type ActivityWaiter interface {
	WaitActivity(ctx context.Context, afterSeq int64, wait time.Duration) ([]Event, error)
}

// WaitActivity long-polls cl when it implements ActivityWaiter and falls
// back to sleep-and-poll otherwise, so event tails work against any
// Interface (including fakes and wrappers that don't forward the extension).
func WaitActivity(ctx context.Context, cl Interface, afterSeq int64, wait time.Duration) ([]Event, error) {
	if aw, ok := cl.(ActivityWaiter); ok {
		return aw.WaitActivity(ctx, afterSeq, wait)
	}
	deadline := time.Now().Add(wait)
	for {
		events, err := cl.Activity(ctx, afterSeq)
		if err != nil || len(events) > 0 {
			return events, err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		// Jittered pause (100-300ms, mean 200ms): many pollers against one
		// non-long-poll backend would otherwise lock into the same fixed
		// cadence and hit the Activity endpoint in synchronized herds.
		pause := waitPollBase/2 + time.Duration(rand.Int63n(int64(waitPollBase)))
		if pause > remaining {
			pause = remaining
		}
		timer := time.NewTimer(pause)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}
