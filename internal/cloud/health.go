// Resource health: the readiness lifecycle that exists between "the API call
// returned" and "the resource actually works". Real clouds expose it as
// instance status checks / provisioning states; the simulator models it as a
// per-resource state machine
//
//	provisioning -> ready | degraded | failed
//
// driven by a configurable readiness delay, optional flap schedules, and
// fault injection (InjectUnhealthy). The guarded apply path (internal/apply,
// internal/guard) probes this endpoint before declaring an op done — the
// paper's §3 point that the lifecycle does not end at the ACK.
package cloud

import (
	"context"
	"fmt"
	"time"
)

// HealthStatus is a resource's readiness state.
type HealthStatus string

// Health states. A resource is born Provisioning, normally turns Ready after
// its readiness delay, and stays there unless an injection or flap schedule
// says otherwise. Degraded and Failed are both "not ready"; Failed is
// terminal while Degraded may recover (flaps).
const (
	HealthProvisioning HealthStatus = "provisioning"
	HealthReady        HealthStatus = "ready"
	HealthDegraded     HealthStatus = "degraded"
	HealthFailed       HealthStatus = "failed"
	HealthUnknown      HealthStatus = "unknown"
)

// Ready reports whether the status is the one healthy terminal state.
func (h HealthStatus) Ready() bool { return h == HealthReady }

// HealthReport is the probe response for one resource.
type HealthReport struct {
	Status    HealthStatus `json:"status"`
	Reason    string       `json:"reason,omitempty"`
	CheckedAt time.Time    `json:"checked_at"`
}

// FlapStep is one leg of a flap schedule: hold Status for the modeled
// duration For (scaled by Options.TimeScale like every other latency). A
// schedule cycles forever, modeling a resource that oscillates between
// states.
type FlapStep struct {
	For    time.Duration
	Status HealthStatus
}

// UnhealthySpec targets upcoming creates with an unhealthy outcome: the next
// Count matching resources never turn ready — after provisioning they land
// in Status (default failed), or cycle through Flap when set. Empty filter
// fields match everything.
type UnhealthySpec struct {
	// Count is how many creates this spec consumes; 0 means 1.
	Count int
	// Type, Region and Name filter which creates are affected. Name matches
	// the "name" attribute.
	Type   string
	Region string
	Name   string
	// Status is the terminal state after provisioning (default failed).
	Status HealthStatus
	// Reason is surfaced in health reports.
	Reason string
	// Flap, when set, overrides Status with a cycling schedule.
	Flap []FlapStep
}

// healthRec tracks one resource's readiness lifecycle.
type healthRec struct {
	provisioned bool      // create call completed server-side
	readyAt     time.Time // when provisioning -> ready (or the flap base)
	status      HealthStatus
	reason      string
	flap        []FlapStep
}

// InjectUnhealthy arms an unhealthiness injection: the next spec.Count
// creates matching the spec's filters produce resources that never turn
// ready. Follows the InjectCrash/InjectThrottles pattern; pending specs are
// visible via Injections and cleared by ClearInjections.
func (s *Sim) InjectUnhealthy(spec UnhealthySpec) {
	if spec.Count <= 0 {
		spec.Count = 1
	}
	if spec.Status == "" {
		spec.Status = HealthFailed
	}
	if spec.Reason == "" {
		spec.Reason = "InjectedFault: resource failed post-provisioning checks"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unhealthy = append(s.unhealthy, spec)
}

// SetHealth overrides a live resource's health directly (tests and the HG
// bench degrade already-created resources with it). Status ready clears any
// injected outcome.
func (s *Sim) SetHealth(typ, id string, status HealthStatus, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.health[typ+"/"+id]
	if rec == nil {
		rec = &healthRec{provisioned: true, readyAt: time.Now()}
		if s.health == nil {
			s.health = map[string]*healthRec{}
		}
		s.health[typ+"/"+id] = rec
	}
	rec.flap = nil
	if status == HealthReady {
		rec.status = ""
		rec.reason = ""
		return
	}
	rec.status = status
	rec.reason = reason
}

// applyUnhealthyLocked consumes the first pending spec matching a create and
// stamps its outcome onto the record.
func (s *Sim) applyUnhealthyLocked(rec *healthRec, typ, region, name string) {
	for i := range s.unhealthy {
		sp := &s.unhealthy[i]
		if sp.Count <= 0 {
			continue
		}
		if sp.Type != "" && sp.Type != typ {
			continue
		}
		if sp.Region != "" && sp.Region != region {
			continue
		}
		if sp.Name != "" && sp.Name != name {
			continue
		}
		sp.Count--
		rec.status = sp.Status
		rec.reason = sp.Reason
		rec.flap = sp.Flap
		if sp.Count == 0 {
			s.compactUnhealthyLocked()
		}
		return
	}
}

func (s *Sim) compactUnhealthyLocked() {
	kept := s.unhealthy[:0]
	for _, sp := range s.unhealthy {
		if sp.Count > 0 {
			kept = append(kept, sp)
		}
	}
	s.unhealthy = kept
}

// scaledFlat is sleepScaled's deterministic cousin: modeled duration times
// TimeScale, no jitter, no sleeping. Readiness deadlines use it so probes
// see a stable schedule.
func (s *Sim) scaledFlat(d time.Duration) time.Duration {
	if s.opts.TimeScale <= 0 || d <= 0 {
		return 0
	}
	return time.Duration(float64(d) * s.opts.TimeScale)
}

// healthLocked computes the current report for a record.
func healthLocked(rec *healthRec, now time.Time) HealthReport {
	rep := HealthReport{Status: HealthReady, CheckedAt: now}
	if rec == nil {
		// Resource predates health tracking (or was seeded directly):
		// consider it ready rather than unknown so probes of legacy state
		// succeed.
		return rep
	}
	if !rec.provisioned || now.Before(rec.readyAt) {
		rep.Status = HealthProvisioning
		return rep
	}
	if len(rec.flap) > 0 {
		var total time.Duration
		for _, st := range rec.flap {
			total += st.For
		}
		if total <= 0 {
			last := rec.flap[len(rec.flap)-1]
			rep.Status = last.Status
			rep.Reason = rec.reason
			return rep
		}
		pos := now.Sub(rec.readyAt) % total
		for _, st := range rec.flap {
			if pos < st.For {
				rep.Status = st.Status
				if !st.Status.Ready() {
					rep.Reason = rec.reason
				}
				return rep
			}
			pos -= st.For
		}
		rep.Status = rec.flap[len(rec.flap)-1].Status
		rep.Reason = rec.reason
		return rep
	}
	if rec.status != "" {
		rep.Status = rec.status
		rep.Reason = rec.reason
	}
	return rep
}

// Health reports a resource's readiness. It is a read: rate-limited like any
// probe a real agent would issue, but cheaper than a full Get.
func (s *Sim) Health(ctx context.Context, typ, id string) (*HealthReport, error) {
	if err := s.admit(ctx, "health", typ, false); err != nil {
		return nil, err
	}
	if err := s.sleepScaled(ctx, s.opts.ReadLatency/4); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.HealthReads++
	if s.store[typ][id] == nil {
		return nil, &APIError{Code: CodeNotFound, Op: "health", Type: typ, ID: id,
			Message: fmt.Sprintf("ResourceNotFound: %s %q does not exist", prettyType(typ), id)}
	}
	rep := healthLocked(s.health[typ+"/"+id], time.Now())
	return &rep, nil
}

// CrashInfo describes a pending crash injection.
type CrashInfo struct {
	Point CrashPoint
	// Remaining is the countdown: the injection fires on the Remaining-th
	// mutating op from now.
	Remaining int
}

// InjectionState is a snapshot of every armed fault injector. Chaos tests
// assert a trial consumed its faults by checking the state drained.
type InjectionState struct {
	// Throttles is how many injected 429s remain.
	Throttles int
	// Crash is the pending crash injection, if armed.
	Crash *CrashInfo
	// Unhealthy lists pending unhealthiness specs with their remaining
	// counts.
	Unhealthy []UnhealthySpec
}

// Empty reports whether no injections are pending.
func (is InjectionState) Empty() bool {
	return is.Throttles == 0 && is.Crash == nil && len(is.Unhealthy) == 0
}

// Injections returns a snapshot of all pending fault injections.
func (s *Sim) Injections() InjectionState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := InjectionState{Throttles: s.injectThrottle}
	if s.crash != nil {
		st.Crash = &CrashInfo{Point: s.crash.point, Remaining: s.crash.afterN}
	}
	for _, sp := range s.unhealthy {
		if sp.Count > 0 {
			st.Unhealthy = append(st.Unhealthy, sp)
		}
	}
	return st
}

// ClearInjections disarms every pending injection: throttles, crash, and
// unhealthiness. Already-created unhealthy resources keep their state (use
// SetHealth to repair them).
func (s *Sim) ClearInjections() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injectThrottle = 0
	s.crash = nil
	s.unhealthy = nil
}
