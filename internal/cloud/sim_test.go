package cloud

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudless/internal/eval"
)

func newTestSim() *Sim {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	return NewSim(opts)
}

func mustCreate(t *testing.T, s Interface, typ, region string, attrs map[string]eval.Value) *Resource {
	t.Helper()
	r, err := s.Create(context.Background(), CreateRequest{
		Type: typ, Region: region, Attrs: attrs, Principal: "test",
	})
	if err != nil {
		t.Fatalf("create %s: %s", typ, err)
	}
	return r
}

func vpcAttrs(name string) map[string]eval.Value {
	return map[string]eval.Value{
		"name":       eval.String(name),
		"cidr_block": eval.String("10.0.0.0/16"),
	}
}

func TestCreateAssignsComputedAttributes(t *testing.T) {
	s := newTestSim()
	vpc := mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("main"))
	if vpc.ID == "" || !strings.HasPrefix(vpc.ID, "vpc-") {
		t.Errorf("id = %q", vpc.ID)
	}
	if vpc.Attr("id").AsString() != vpc.ID {
		t.Error("id attribute not set")
	}
	if !strings.Contains(vpc.Attr("arn").AsString(), vpc.ID) {
		t.Errorf("arn = %v", vpc.Attr("arn"))
	}
	// Defaults applied.
	if !vpc.Attr("enable_dns").Equal(eval.True) {
		t.Errorf("enable_dns default = %v", vpc.Attr("enable_dns"))
	}
	if vpc.Generation != 1 {
		t.Errorf("generation = %d", vpc.Generation)
	}
}

func TestCreateRejectsMissingRequired(t *testing.T) {
	s := newTestSim()
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("x")},
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeInvalid {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(ae.Message, "cidr_block") {
		t.Errorf("message = %q", ae.Message)
	}
}

func TestCreateRejectsUnknownTypeRegionAttr(t *testing.T) {
	s := newTestSim()
	ctx := context.Background()
	if _, err := s.Create(ctx, CreateRequest{Type: "gcp_thing"}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := s.Create(ctx, CreateRequest{Type: "aws_vpc", Region: "mars-north-1", Attrs: vpcAttrs("x")}); err == nil {
		t.Error("unknown region accepted")
	}
	attrs := vpcAttrs("y")
	attrs["bogus"] = eval.Int(1)
	if _, err := s.Create(ctx, CreateRequest{Type: "aws_vpc", Region: "us-east-1", Attrs: attrs}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestCreateRejectsBadEnumValue(t *testing.T) {
	s := newTestSim()
	vpc := mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("v"))
	subnet := mustCreate(t, s, "aws_subnet", "us-east-1", map[string]eval.Value{
		"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("10.0.1.0/24"),
	})
	nic := mustCreate(t, s, "aws_network_interface", "us-east-1", map[string]eval.Value{
		"subnet_id": eval.String(subnet.ID),
	})
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "aws_virtual_machine", Region: "us-east-1",
		Attrs: map[string]eval.Value{
			"name":          eval.String("vm"),
			"nic_ids":       eval.Strings(nic.ID),
			"instance_type": eval.String("t9.mega"),
		},
	})
	if err == nil || !strings.Contains(err.Error(), "t9.mega") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateNameConflict(t *testing.T) {
	s := newTestSim()
	mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("dup"))
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Attrs: vpcAttrs("dup"),
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeConflict {
		t.Fatalf("err = %v", err)
	}
	// Same name in another region is fine.
	mustCreate(t, s, "aws_vpc", "us-west-2", map[string]eval.Value{
		"name": eval.String("dup"), "cidr_block": eval.String("10.1.0.0/16"),
	})
}

// TestCrossRegionReferenceReproducesPaperError reproduces the paper's §3.5
// example: a VM whose NIC lives in a different region fails with a
// misleading "NIC is not found" message, even though the NIC exists.
func TestCrossRegionReferenceReproducesPaperError(t *testing.T) {
	s := newTestSim()
	rg := mustCreate(t, s, "azure_resource_group", "westus", map[string]eval.Value{
		"name": eval.String("rg"), "location": eval.String("westus"),
	})
	vnet := mustCreate(t, s, "azure_virtual_network", "westus", map[string]eval.Value{
		"name": eval.String("vnet"), "resource_group": eval.String(rg.ID),
		"address_space": eval.Strings("10.0.0.0/16"),
	})
	subnet := mustCreate(t, s, "azure_subnet", "westus", map[string]eval.Value{
		"virtual_network_id": eval.String(vnet.ID), "address_prefix": eval.String("10.0.1.0/24"),
	})
	nic := mustCreate(t, s, "azure_network_interface", "westus", map[string]eval.Value{
		"name": eval.String("nic"), "subnet_id": eval.String(subnet.ID),
	})
	// VM in a DIFFERENT region referencing the westus NIC.
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "azure_virtual_machine", Region: "eastus",
		Attrs: map[string]eval.Value{
			"name":    eval.String("vm1"),
			"nic_ids": eval.Strings(nic.ID),
		},
	})
	if err == nil {
		t.Fatal("cross-region NIC reference must fail at deploy time")
	}
	if !strings.Contains(err.Error(), "not found") {
		t.Errorf("expected the misleading 'not found' cloud error, got: %s", err)
	}
}

func TestPasswordCoRequirementEnforced(t *testing.T) {
	s := newTestSim()
	rg := mustCreate(t, s, "azure_resource_group", "eastus", map[string]eval.Value{
		"name": eval.String("rg"), "location": eval.String("eastus"),
	})
	vnet := mustCreate(t, s, "azure_virtual_network", "eastus", map[string]eval.Value{
		"name": eval.String("v"), "resource_group": eval.String(rg.ID),
		"address_space": eval.Strings("10.0.0.0/16"),
	})
	subnet := mustCreate(t, s, "azure_subnet", "eastus", map[string]eval.Value{
		"virtual_network_id": eval.String(vnet.ID), "address_prefix": eval.String("10.0.1.0/24"),
	})
	nic := mustCreate(t, s, "azure_network_interface", "eastus", map[string]eval.Value{
		"name": eval.String("n"), "subnet_id": eval.String(subnet.ID),
	})
	// Password without disable_password=false must fail (default is true).
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "azure_virtual_machine", Region: "eastus",
		Attrs: map[string]eval.Value{
			"name":           eval.String("vm"),
			"nic_ids":        eval.Strings(nic.ID),
			"admin_password": eval.String("hunter2"),
		},
	})
	if err == nil || !strings.Contains(err.Error(), "disable_password") {
		t.Fatalf("err = %v", err)
	}
	// With the co-requirement satisfied it succeeds.
	mustCreate(t, s, "azure_virtual_machine", "eastus", map[string]eval.Value{
		"name":             eval.String("vm"),
		"nic_ids":          eval.Strings(nic.ID),
		"admin_password":   eval.String("hunter2"),
		"disable_password": eval.False,
	})
}

func TestPeeringCIDROverlapRejected(t *testing.T) {
	s := newTestSim()
	rg := mustCreate(t, s, "azure_resource_group", "eastus", map[string]eval.Value{
		"name": eval.String("rg"), "location": eval.String("eastus"),
	})
	mk := func(name, cidr string) *Resource {
		return mustCreate(t, s, "azure_virtual_network", "eastus", map[string]eval.Value{
			"name": eval.String(name), "resource_group": eval.String(rg.ID),
			"address_space": eval.Strings(cidr),
		})
	}
	a := mk("a", "10.0.0.0/16")
	b := mk("b", "10.0.128.0/17") // overlaps a
	c := mk("c", "10.1.0.0/16")   // disjoint
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "azure_vnet_peering", Region: "eastus",
		Attrs: map[string]eval.Value{
			"vnet_a_id": eval.String(a.ID), "vnet_b_id": eval.String(b.ID),
		},
	})
	if err == nil || !strings.Contains(err.Error(), "verlap") {
		t.Fatalf("overlapping peering accepted: %v", err)
	}
	mustCreate(t, s, "azure_vnet_peering", "eastus", map[string]eval.Value{
		"vnet_a_id": eval.String(a.ID), "vnet_b_id": eval.String(c.ID),
	})
}

func TestSubnetCIDRWithinVPC(t *testing.T) {
	s := newTestSim()
	vpc := mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("v"))
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "aws_subnet", Region: "us-east-1",
		Attrs: map[string]eval.Value{
			"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("192.168.0.0/24"),
		},
	})
	if err == nil {
		t.Fatal("out-of-range subnet accepted")
	}
}

func TestUpdateLifecycle(t *testing.T) {
	s := newTestSim()
	vpc := mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("v"))
	upd, err := s.Update(context.Background(), UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs:     map[string]eval.Value{"enable_dns": eval.False},
		Principal: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !upd.Attr("enable_dns").Equal(eval.False) || upd.Generation != 2 {
		t.Errorf("update result: %v gen=%d", upd.Attr("enable_dns"), upd.Generation)
	}
	// ForceNew attribute cannot be updated in place.
	_, err = s.Update(context.Background(), UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs: map[string]eval.Value{"cidr_block": eval.String("10.9.0.0/16")},
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeConflict {
		t.Fatalf("force-new update: %v", err)
	}
	// Computed attribute cannot be written.
	_, err = s.Update(context.Background(), UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs: map[string]eval.Value{"id": eval.String("vpc-hax")},
	})
	if err == nil {
		t.Error("computed attribute write accepted")
	}
}

func TestDeleteDependencyViolation(t *testing.T) {
	s := newTestSim()
	vpc := mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("v"))
	subnet := mustCreate(t, s, "aws_subnet", "us-east-1", map[string]eval.Value{
		"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("10.0.1.0/24"),
	})
	err := s.Delete(context.Background(), "aws_vpc", vpc.ID, "test")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeConflict {
		t.Fatalf("expected DependencyViolation, got %v", err)
	}
	if err := s.Delete(context.Background(), "aws_subnet", subnet.ID, "test"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(context.Background(), "aws_vpc", vpc.ID, "test"); err != nil {
		t.Fatalf("delete after removing dependent: %v", err)
	}
	if _, err := s.Get(context.Background(), "aws_vpc", vpc.ID); !IsNotFound(err) {
		t.Errorf("get after delete = %v", err)
	}
}

func TestActivityLog(t *testing.T) {
	s := newTestSim()
	ctx := context.Background()
	vpc := mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("v"))
	_, _ = s.Update(ctx, UpdateRequest{Type: "aws_vpc", ID: vpc.ID,
		Attrs: map[string]eval.Value{"enable_dns": eval.False}, Principal: "legacy-script"})
	_ = s.Delete(ctx, "aws_vpc", vpc.ID, "test")

	events, err := s.Activity(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Op != OpCreate || events[1].Op != OpUpdate || events[2].Op != OpDelete {
		t.Errorf("ops = %v %v %v", events[0].Op, events[1].Op, events[2].Op)
	}
	if events[1].Principal != "legacy-script" {
		t.Errorf("principal = %q", events[1].Principal)
	}
	if len(events[1].Changed) != 1 || events[1].Changed[0] != "enable_dns" {
		t.Errorf("changed = %v", events[1].Changed)
	}
	// Incremental polling.
	tail, _ := s.Activity(ctx, events[1].Seq)
	if len(tail) != 1 || tail[0].Op != OpDelete {
		t.Errorf("tail = %v", tail)
	}
}

func TestFailureInjectionDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	opts.FailureRate = 0.5
	opts.Seed = 42
	run := func() []bool {
		s := NewSim(opts)
		var outcomes []bool
		for i := 0; i < 20; i++ {
			_, err := s.Create(context.Background(), CreateRequest{
				Type: "aws_vpc", Region: "us-east-1",
				Attrs: map[string]eval.Value{
					"name":       eval.String(fmt.Sprintf("v%d", i)),
					"cidr_block": eval.String("10.0.0.0/16"),
				},
			})
			outcomes = append(outcomes, err == nil)
			if err != nil && !IsRetryable(err) {
				t.Fatalf("injected failure must be retryable: %v", err)
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("failure injection not deterministic under a fixed seed")
		}
	}
	saw := false
	for _, ok := range a {
		if !ok {
			saw = true
		}
	}
	if !saw {
		t.Error("no failures injected at rate 0.5")
	}
}

func TestQuotaEnforced(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	opts.QuotaPerTypeRegion = 3
	s := NewSim(opts)
	for i := 0; i < 3; i++ {
		mustCreate(t, s, "aws_vpc", "us-east-1", map[string]eval.Value{
			"name": eval.String(fmt.Sprintf("v%d", i)), "cidr_block": eval.String("10.0.0.0/16"),
		})
	}
	_, err := s.Create(context.Background(), CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("v3"), "cidr_block": eval.String("10.0.0.0/16")},
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeQuota {
		t.Fatalf("err = %v", err)
	}
}

func TestRateLimiterThrottles(t *testing.T) {
	l := newRateLimiter(10, 2)
	if !l.Allow() || !l.Allow() {
		t.Fatal("burst tokens missing")
	}
	if l.Allow() {
		t.Fatal("limiter over-admitted")
	}
	start := time.Now()
	waited, err := l.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if waited == 0 && time.Since(start) < 10*time.Millisecond {
		t.Error("Wait returned without waiting for a token")
	}
}

func TestRateLimiterWaitCancel(t *testing.T) {
	l := newRateLimiter(0.1, 1)
	l.Allow()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Wait(ctx); err == nil {
		t.Fatal("Wait must respect cancellation")
	}
}

func TestSimRateLimitingMetrics(t *testing.T) {
	opts := DefaultOptions()
	opts.RateLimitOverride = 50
	s := NewSim(opts)
	ctx := context.Background()
	for i := 0; i < 150; i++ {
		_, _ = s.Get(ctx, "aws_vpc", "nope") // misses are fine; they still hit the limiter
	}
	m := s.Metrics()
	if m.Throttled == 0 || m.ThrottleWait == 0 {
		t.Errorf("expected throttling at 150 calls against 50 rps: %+v", m)
	}
	if m.Calls != 150 {
		t.Errorf("calls = %d", m.Calls)
	}
}

func TestConcurrentCreates(t *testing.T) {
	s := newTestSim()
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Create(context.Background(), CreateRequest{
				Type: "aws_vpc", Region: "us-east-1",
				Attrs: map[string]eval.Value{
					"name":       eval.String(fmt.Sprintf("v%02d", i)),
					"cidr_block": eval.String("10.0.0.0/16"),
				},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("create %d: %s", i, err)
		}
	}
	if s.Count("aws_vpc") != 32 {
		t.Errorf("count = %d", s.Count("aws_vpc"))
	}
	// IDs must be unique.
	list, _ := s.List(context.Background(), "aws_vpc", "")
	seen := map[string]bool{}
	for _, r := range list {
		if seen[r.ID] {
			t.Fatalf("duplicate ID %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestListByRegion(t *testing.T) {
	s := newTestSim()
	mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("a"))
	mustCreate(t, s, "aws_vpc", "us-west-2", map[string]eval.Value{
		"name": eval.String("b"), "cidr_block": eval.String("10.1.0.0/16"),
	})
	east, _ := s.List(context.Background(), "aws_vpc", "us-east-1")
	all, _ := s.List(context.Background(), "aws_vpc", "")
	if len(east) != 1 || len(all) != 2 {
		t.Errorf("east=%d all=%d", len(east), len(all))
	}
}

func TestProvisioningLatencyScales(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0.0005 // 15s VPC create -> ~7.5ms
	opts.ReadLatency = 0
	s := NewSim(opts)
	start := time.Now()
	mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("v"))
	elapsed := time.Since(start)
	if elapsed < 2*time.Millisecond {
		t.Errorf("latency model not applied: %v", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("latency model mis-scaled: %v", elapsed)
	}
}

func TestDataSourceCannotBeCreated(t *testing.T) {
	s := newTestSim()
	_, err := s.Create(context.Background(), CreateRequest{Type: "aws_region", Region: "us-east-1"})
	if err == nil {
		t.Fatal("data source create accepted")
	}
}

func TestIdempotentCreateReplay(t *testing.T) {
	s := newTestSim()
	ctx := context.Background()
	req := CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Attrs: vpcAttrs("idem"),
		Principal: "test", IdempotencyKey: "job-1/aws_vpc.idem",
	}
	first, err := s.Create(ctx, req)
	if err != nil {
		t.Fatalf("create: %s", err)
	}
	// A retry of the same request must return the original resource, not a
	// duplicate — even though the name now "conflicts" with itself.
	second, err := s.Create(ctx, req)
	if err != nil {
		t.Fatalf("replay: %s", err)
	}
	if second.ID != first.ID {
		t.Errorf("replay returned %s, want %s", second.ID, first.ID)
	}
	if s.Count("aws_vpc") != 1 {
		t.Errorf("count = %d, want 1", s.Count("aws_vpc"))
	}
	m := s.Metrics()
	if m.Creates != 1 || m.IdemReplays != 1 {
		t.Errorf("creates=%d idem_replays=%d, want 1/1", m.Creates, m.IdemReplays)
	}
	// Only one create event: a replay is not a second provisioning.
	events, _ := s.Activity(ctx, 0)
	if len(events) != 1 {
		t.Errorf("%d activity events, want 1", len(events))
	}

	// A different key with a different name provisions a fresh resource.
	other := req
	other.IdempotencyKey = "job-1/aws_vpc.other"
	other.Attrs = vpcAttrs("other")
	third, err := s.Create(ctx, other)
	if err != nil {
		t.Fatalf("different key: %s", err)
	}
	if third.ID == first.ID {
		t.Error("different key replayed the first resource")
	}

	// After the keyed resource is deleted, the same key provisions anew.
	if err := s.Delete(ctx, "aws_vpc", first.ID, "test"); err != nil {
		t.Fatalf("delete: %s", err)
	}
	fresh, err := s.Create(ctx, req)
	if err != nil {
		t.Fatalf("recreate: %s", err)
	}
	if fresh.ID == first.ID {
		t.Error("key replayed a deleted resource")
	}
}

func TestInjectCrashBeforeOp(t *testing.T) {
	s := newTestSim()
	ctx := context.Background()
	fired := false
	s.InjectCrash(CrashBeforeOp, 1, func() { fired = true })
	_, err := s.Create(ctx, CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Attrs: vpcAttrs("c"), Principal: "test",
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !fired {
		t.Error("crash callback did not fire")
	}
	// Before-op crash: nothing mutated, nothing logged.
	if s.Count("aws_vpc") != 0 {
		t.Errorf("count = %d, want 0", s.Count("aws_vpc"))
	}
	if s.LastSeq() != 0 {
		t.Errorf("activity seq = %d, want 0", s.LastSeq())
	}
	// The injection is one-shot: the retry succeeds.
	mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("c"))
}

func TestInjectCrashAfterOpLeavesInDoubtResource(t *testing.T) {
	s := newTestSim()
	ctx := context.Background()
	s.InjectCrash(CrashAfterOp, 2, nil) // fire on the second mutating op
	mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("a"))
	_, err := s.Create(ctx, CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Attrs: vpcAttrs("b"),
		Principal: "test", IdempotencyKey: "k-b",
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// After-op crash: the mutation is durable server-side (the in-doubt
	// case) and visible in the activity log...
	if s.Count("aws_vpc") != 2 {
		t.Errorf("count = %d, want 2", s.Count("aws_vpc"))
	}
	events, _ := s.Activity(ctx, 0)
	if len(events) != 2 {
		t.Fatalf("%d activity events, want 2", len(events))
	}
	// ...and an idempotent retry recovers the resource the response lost.
	got, err := s.Create(ctx, CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Attrs: vpcAttrs("b"),
		Principal: "test", IdempotencyKey: "k-b",
	})
	if err != nil {
		t.Fatalf("retry: %s", err)
	}
	if got.ID != events[1].ID {
		t.Errorf("retry returned %s, want the in-doubt resource %s", got.ID, events[1].ID)
	}
}

func TestInjectCrashDuringDelete(t *testing.T) {
	s := newTestSim()
	ctx := context.Background()
	vpc := mustCreate(t, s, "aws_vpc", "us-east-1", vpcAttrs("d"))
	s.InjectCrash(CrashAfterOp, 1, nil)
	err := s.Delete(ctx, "aws_vpc", vpc.ID, "test")
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Deletion went through server-side; the retry sees 404, which a
	// crash-safe applier must tolerate.
	if s.Count("aws_vpc") != 0 {
		t.Errorf("count = %d, want 0", s.Count("aws_vpc"))
	}
	if err := s.Delete(ctx, "aws_vpc", vpc.ID, "test"); !IsNotFound(err) {
		t.Errorf("retry err = %v, want 404", err)
	}
}
