package cloud

import (
	"encoding/json"
	"time"

	"cloudless/internal/eval"
)

// wireResource is the JSON representation of a Resource. Attribute values
// travel as plain JSON with the unknown sentinel preserved.
type wireResource struct {
	ID         string         `json:"id"`
	Type       string         `json:"type"`
	Region     string         `json:"region"`
	Attrs      map[string]any `json:"attrs"`
	CreatedAt  time.Time      `json:"created_at"`
	UpdatedAt  time.Time      `json:"updated_at"`
	Generation int            `json:"generation"`
}

func toWire(r *Resource) wireResource {
	attrs := make(map[string]any, len(r.Attrs))
	for k, v := range r.Attrs {
		attrs[k] = eval.ToGo(v)
	}
	return wireResource{
		ID: r.ID, Type: r.Type, Region: r.Region, Attrs: attrs,
		CreatedAt: r.CreatedAt, UpdatedAt: r.UpdatedAt, Generation: r.Generation,
	}
}

func fromWire(w wireResource) *Resource {
	attrs := make(map[string]eval.Value, len(w.Attrs))
	for k, v := range w.Attrs {
		attrs[k] = eval.FromGoWithUnknowns(v)
	}
	return &Resource{
		ID: w.ID, Type: w.Type, Region: w.Region, Attrs: attrs,
		CreatedAt: w.CreatedAt, UpdatedAt: w.UpdatedAt, Generation: w.Generation,
	}
}

// wireCreate is the POST body for resource creation. The idempotency key
// also travels as the Idempotency-Key header; the body field wins when both
// are present.
type wireCreate struct {
	Region         string         `json:"region,omitempty"`
	Attrs          map[string]any `json:"attrs"`
	Principal      string         `json:"principal,omitempty"`
	IdempotencyKey string         `json:"idempotency_key,omitempty"`
}

// wireUpdate is the PATCH body for resource updates.
type wireUpdate struct {
	Attrs     map[string]any `json:"attrs"`
	Principal string         `json:"principal,omitempty"`
}

func attrsToWire(attrs map[string]eval.Value) map[string]any {
	out := make(map[string]any, len(attrs))
	for k, v := range attrs {
		out[k] = eval.ToGo(v)
	}
	return out
}

func attrsFromWire(attrs map[string]any) map[string]eval.Value {
	out := make(map[string]eval.Value, len(attrs))
	for k, v := range attrs {
		out[k] = eval.FromGoWithUnknowns(v)
	}
	return out
}

func marshalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Wire types contain only marshalable values; failure is a bug.
		panic("cloud: marshal: " + err.Error())
	}
	return b
}
