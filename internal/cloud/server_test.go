package cloud

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cloudless/internal/eval"
)

func newTestServer(t *testing.T) (*Client, *Sim) {
	t.Helper()
	sim := newTestSim()
	srv := httptest.NewServer(NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil))))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client()), sim
}

func TestHTTPRoundTrip(t *testing.T) {
	client, sim := newTestServer(t)
	ctx := context.Background()

	vpc, err := client.Create(ctx, CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs:     vpcAttrs("over-http"),
		Principal: "integration",
	})
	if err != nil {
		t.Fatal(err)
	}
	if vpc.ID == "" || vpc.Attr("cidr_block").AsString() != "10.0.0.0/16" {
		t.Errorf("resource = %+v", vpc)
	}

	got, err := client.Get(ctx, "aws_vpc", vpc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attr("enable_dns").Equal(eval.True) {
		t.Errorf("defaults lost over the wire: %v", got.Attr("enable_dns"))
	}

	upd, err := client.Update(ctx, UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs: map[string]eval.Value{"enable_dns": eval.False},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !upd.Attr("enable_dns").Equal(eval.False) {
		t.Errorf("update lost: %v", upd.Attr("enable_dns"))
	}

	list, err := client.List(ctx, "aws_vpc", "us-east-1")
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %v, %v", list, err)
	}

	events, err := client.Activity(ctx, 0)
	if err != nil || len(events) != 2 {
		t.Fatalf("activity = %v, %v", events, err)
	}

	if err := client.Delete(ctx, "aws_vpc", vpc.ID, "integration"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(ctx, "aws_vpc", vpc.ID); !IsNotFound(err) {
		t.Errorf("get after delete = %v", err)
	}

	m, err := client.Metrics(ctx)
	if err != nil || m.Calls == 0 {
		t.Errorf("metrics = %+v, %v", m, err)
	}
	_ = sim
}

func TestHTTPErrorFidelity(t *testing.T) {
	client, _ := newTestServer(t)
	ctx := context.Background()
	// A deploy-time constraint failure must arrive as a structured APIError
	// with the original cloud message intact — the diagnoser parses these.
	_, err := client.Create(ctx, CreateRequest{
		Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("x")},
	})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err type = %T", err)
	}
	if ae.Code != CodeInvalid || !strings.Contains(ae.Message, "cidr_block") {
		t.Errorf("error = %+v", ae)
	}
}

func TestHTTPMalformedBody(t *testing.T) {
	sim := newTestSim()
	srv := httptest.NewServer(NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil))))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/resources/aws_vpc", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	sim := newTestSim()
	srv := httptest.NewServer(NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil))))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestHTTPPrincipalHeader(t *testing.T) {
	sim := newTestSim()
	srv := httptest.NewServer(NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil))))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/resources/aws_vpc",
		strings.NewReader(`{"region":"us-east-1","attrs":{"name":"h","cidr_block":"10.0.0.0/16"}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Principal", "header-principal")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	events, _ := sim.Activity(context.Background(), 0)
	if len(events) != 1 || events[0].Principal != "header-principal" {
		t.Errorf("events = %+v", events)
	}
}

func TestUnknownValueSurvivesWire(t *testing.T) {
	// Unknown values can appear in planned attribute payloads that tools
	// exchange; the sentinel must survive the JSON wire format.
	w := toWire(&Resource{
		ID: "x", Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"pending": eval.Unknown},
	})
	back := fromWire(w)
	if !back.Attr("pending").IsUnknown() {
		t.Errorf("unknown lost over the wire: %v", back.Attr("pending"))
	}
}
