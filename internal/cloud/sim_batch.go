package cloud

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"cloudless/internal/schema"
)

// Batch operations on the simulator. Each batch admits exactly once — one
// rate-limiter token, one metrics.Calls increment, one throttle-injection
// slot — which is the whole point of batching: per-call overhead is paid per
// batch, while per-item work (validation, provisioning latency) is paid per
// item, concurrently, the way a real control plane fans provisioning out.

var (
	_ BatchCreator = (*Sim)(nil)
	_ BatchGetter  = (*Sim)(nil)
	_ PageLister   = (*Sim)(nil)
)

// admitType picks the type a batch is admitted (rate-limited, metered)
// under: the first item whose provider is known. Items of unknown types must
// fail item-by-item, not poison the admission of their batch-mates.
func admitType(reqs []CreateRequest) string {
	for _, r := range reqs {
		if _, ok := schema.ProviderForType(r.Type); ok {
			return r.Type
		}
	}
	return reqs[0].Type
}

// BatchCreate provisions up to MaxBatchItems resources under a single
// admitted call. Items succeed or fail independently; results are
// index-aligned with reqs.
func (s *Sim) BatchCreate(ctx context.Context, reqs []CreateRequest) ([]BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) > MaxBatchItems {
		return nil, &APIError{Code: CodeInvalid, Op: "batch_create", Type: reqs[0].Type,
			Message: fmt.Sprintf("BatchTooLarge: %d items exceeds the limit of %d per call", len(reqs), MaxBatchItems)}
	}
	if err := s.admit(ctx, "batch_create", admitType(reqs), true); err != nil {
		return nil, err
	}
	if err := s.maybeCrash(CrashBeforeOp); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.metrics.BatchCalls++
	s.metrics.BatchItems += int64(len(reqs))
	s.mu.Unlock()

	results := make([]BatchResult, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		rs, ok := schema.LookupResource(reqs[i].Type)
		if !ok {
			results[i] = BatchResult{Err: &APIError{Code: CodeInvalid, Op: "create", Type: reqs[i].Type,
				Message: fmt.Sprintf("UnknownResourceType: %q", reqs[i].Type)}}
			continue
		}
		if rs.DataSource {
			results[i] = BatchResult{Err: &APIError{Code: CodeInvalid, Op: "create", Type: reqs[i].Type,
				Message: "InvalidOperation: data sources cannot be created"}}
			continue
		}
		wg.Add(1)
		go func(i int, rs *schema.ResourceSchema) {
			defer wg.Done()
			res, err := s.provisionOne(ctx, rs, reqs[i])
			results[i] = BatchResult{Resource: res, Err: err}
		}(i, rs)
	}
	wg.Wait()
	if err := s.maybeCrash(CrashAfterOp); err != nil {
		return nil, err
	}
	return results, nil
}

// BatchGet reads up to MaxBatchItems resources under a single admitted call
// and one modeled read round-trip. Missing resources are per-item 404s.
func (s *Sim) BatchGet(ctx context.Context, keys []ResourceKey) ([]BatchResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(keys) > MaxBatchItems {
		return nil, &APIError{Code: CodeInvalid, Op: "batch_get", Type: keys[0].Type,
			Message: fmt.Sprintf("BatchTooLarge: %d items exceeds the limit of %d per call", len(keys), MaxBatchItems)}
	}
	if err := s.admit(ctx, "batch_get", keys[0].Type, false); err != nil {
		return nil, err
	}
	if err := s.sleepScaled(ctx, s.opts.ReadLatency); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.metrics.BatchCalls++
	s.metrics.BatchItems += int64(len(keys))
	s.metrics.Reads += int64(len(keys))
	results := make([]BatchResult, len(keys))
	for i, k := range keys {
		if r := s.store[k.Type][k.ID]; r != nil {
			results[i] = BatchResult{Resource: r.Clone()}
		} else {
			results[i] = BatchResult{Err: &APIError{Code: CodeNotFound, Op: "get", Type: k.Type, ID: k.ID,
				Message: fmt.Sprintf("ResourceNotFound: %s %q does not exist", prettyType(k.Type), k.ID)}}
		}
	}
	s.mu.Unlock()
	return results, nil
}

// ListPage returns one ID-ordered page of a type's resources. The page token
// is the last ID of the previous page ("strictly after" semantics), so
// concurrent creates and deletes never skip or duplicate surviving entries.
func (s *Sim) ListPage(ctx context.Context, typ, region string, limit int, pageToken string) (*ListPageResult, error) {
	if err := s.admit(ctx, "list", typ, false); err != nil {
		return nil, err
	}
	if err := s.sleepScaled(ctx, s.opts.ReadLatency); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.metrics.Lists++
	var all []*Resource
	for _, r := range s.store[typ] {
		if region == "" || r.Region == region {
			all = append(all, r.Clone())
		}
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return slicePage(all, limit, pageToken), nil
}
