// Package drift detects and reconciles "resource drift": cloud changes made
// outside IaC control (§3.5). It implements both detection strategies the
// paper contrasts — the driftctl-style full API scan, which burns rate-
// limited control-plane calls, and the cloudless-native activity-log watcher,
// which reads the (cheap, incrementally-pollable) audit log — plus a
// reconciliation step that either adopts the drift into state, reverts it in
// the cloud, or surfaces it for human attention.
package drift

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	evbus "cloudless/internal/events"
	"cloudless/internal/provider"
	"cloudless/internal/schema"
	"cloudless/internal/state"
)

// Kind classifies a drift item.
type Kind int

// Drift kinds.
const (
	// Modified: a managed resource's attributes changed out-of-band.
	Modified Kind = iota
	// Deleted: a managed resource disappeared out-of-band.
	Deleted
	// Unmanaged: a resource exists in the cloud but not in state.
	Unmanaged
)

var kindNames = map[Kind]string{Modified: "modified", Deleted: "deleted", Unmanaged: "unmanaged"}

// String names the kind.
func (k Kind) String() string { return kindNames[k] }

// Item is one detected divergence between state and cloud.
type Item struct {
	Kind Kind
	// Addr is the state address ("" for unmanaged resources).
	Addr string
	Type string
	ID   string
	// ChangedAttrs lists modified attribute names, sorted.
	ChangedAttrs []string
	// Actor is the principal that caused the drift when known (from the
	// activity log; full scans cannot attribute).
	Actor string
	// CloudAttrs is the current cloud-side attribute set (nil for Deleted).
	CloudAttrs map[string]eval.Value
}

// Report is the outcome of one detection pass.
type Report struct {
	Items []Item
	// APICalls is the number of rate-limited control-plane calls spent.
	APICalls int
	// LogReads is the number of activity-log reads (cheap) spent.
	LogReads int
	// Elapsed is the wall time of the pass.
	Elapsed time.Duration
	// Method names the strategy ("full-scan", "activity-log" or "scoped").
	Method string
	// BaseSerial is the golden-state serial the report was computed
	// against. Reconciling a report whose base has since advanced would
	// revert against a moved baseline; consumers compare this against the
	// current serial and fail with *ErrStaleReport instead.
	BaseSerial int
}

// ErrStaleReport mirrors statedb's *StaleBaseError for drift artifacts: the
// report was detected against a golden-state serial that has since advanced,
// so acting on it would revert changes that post-date the detection.
type ErrStaleReport struct {
	// ReportSerial is the serial the drift report was computed against.
	ReportSerial int
	// CurrentSerial is the golden state's serial now.
	CurrentSerial int
}

func (e *ErrStaleReport) Error() string {
	return fmt.Sprintf("drift: stale report: detected against state serial %d but the state is now at serial %d; re-detect and retry",
		e.ReportSerial, e.CurrentSerial)
}

// HasDrift reports whether anything diverged.
func (r *Report) HasDrift() bool { return len(r.Items) > 0 }

// publishItems announces each detection on the context's event bus, tagged
// with the detection method in Wave ("full-scan" / "activity-log").
func publishItems(ctx context.Context, method string, items []Item) {
	bus := evbus.FromContext(ctx)
	if bus == nil {
		return
	}
	for _, it := range items {
		bus.Publish(evbus.Event{Kind: "drift.detected", Action: it.Kind.String(),
			Addr: it.Addr, Type: it.Type, ID: it.ID, Principal: it.Actor,
			Wave: method, N: int64(len(it.ChangedAttrs))})
	}
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Addr != items[j].Addr {
			return items[i].Addr < items[j].Addr
		}
		return items[i].ID < items[j].ID
	})
}

// diffAttrs returns configuration-relevant attribute names that differ.
// Computed attributes are excluded: they belong to the cloud.
func diffAttrs(typ string, recorded, current map[string]eval.Value) []string {
	rs, ok := schema.LookupResource(typ)
	var changed []string
	for name, have := range recorded {
		if ok {
			if a := rs.Attr(name); a != nil && a.Computed {
				continue
			}
		}
		cur, exists := current[name]
		if !exists || !cur.Equal(have) {
			changed = append(changed, name)
		}
	}
	for name := range current {
		if _, exists := recorded[name]; !exists {
			if ok {
				if a := rs.Attr(name); a != nil && a.Computed {
					continue
				}
			}
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)
	return changed
}

// scanFanOut bounds concurrent List calls during a full scan. The provider
// runtime's AIMD gate adapts the effective cloud concurrency below this; the
// bound here only keeps the goroutine count proportionate.
const scanFanOut = 16

// scanPageSize bounds one listing response during a full scan. Large fleets
// are walked page by page (cloud.ListPaged, "strictly after" tokens) so no
// single response has to carry 100k resources; small fleets still cost one
// call per (type, region), exactly as before pagination.
const scanPageSize = 1000

// listJob drains one (type, region) listing page by page, counting every
// control-plane round-trip into calls.
func listJob(ctx context.Context, cl cloud.Interface, typ, region string, calls *atomic.Int64) ([]*cloud.Resource, error) {
	var out []*cloud.Resource
	token := ""
	for {
		calls.Add(1)
		page, err := cloud.ListPaged(ctx, cl, typ, region, scanPageSize, token)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Resources...)
		if page.NextPageToken == "" {
			return out, nil
		}
		token = page.NextPageToken
	}
}

// FullScan detects drift the way industry tools like driftctl do: list every
// resource of every type in every region through the rate-limited cloud API
// and compare against state. Thorough but expensive — the E7 experiment
// measures exactly how expensive. Listing is paginated (scanPageSize per
// response) and fans out through the provider runtime (which coalesces
// identical Lists across concurrent scanners); reads are marked fresh,
// because the whole point of a scan is
// observing out-of-band change no cache TTL can bound. Results are compared
// in deterministic (type, region) order regardless of arrival order.
func FullScan(ctx context.Context, cl cloud.Interface, st *state.State) (*Report, error) {
	start := time.Now()
	rep := &Report{Method: "full-scan", BaseSerial: st.Serial}

	type scanJob struct {
		typ, region string
	}
	var jobs []scanJob
	for _, provName := range schema.Providers() {
		prov, _ := schema.LookupProvider(provName)
		types := make([]string, 0, len(prov.Resources))
		for typ, rs := range prov.Resources {
			if !rs.DataSource {
				types = append(types, typ)
			}
		}
		sort.Strings(types)
		for _, typ := range types {
			for _, region := range prov.Regions {
				jobs = append(jobs, scanJob{typ: typ, region: region})
			}
		}
	}

	scanCtx, cancel := context.WithCancel(provider.WithFresh(ctx))
	defer cancel()
	lists := make([][]*cloud.Resource, len(jobs))
	errs := make([]error, len(jobs))
	var apiCalls atomic.Int64
	// Workers claim jobs from an ordered cursor rather than racing a
	// semaphore: every scan walks the (type, region) list in the same order,
	// so concurrent scanners stay in lockstep and their Lists coalesce in
	// the provider runtime instead of interleaving disjoint job ranges.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := scanFanOut
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if scanCtx.Err() != nil {
					errs[i] = scanCtx.Err()
					continue
				}
				lists[i], errs[i] = listJob(scanCtx, cl, jobs[i].typ, jobs[i].region, &apiCalls)
				if errs[i] != nil {
					cancel() // no point finishing the sweep
				}
			}
		}()
	}
	wg.Wait()

	rep.APICalls = int(apiCalls.Load())
	// Report the first real failure, not the context cancellations that
	// aborting the rest of the sweep produced.
	var firstErr error
	for i, job := range jobs {
		err := errs[i]
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("drift scan %s in %s: %w", job.typ, job.region, err)
		if firstErr == nil {
			firstErr = wrapped
		}
		if ctx.Err() == nil && !errors.Is(err, context.Canceled) {
			firstErr = wrapped
			break
		}
	}
	if firstErr != nil {
		return rep, firstErr
	}
	seen := map[string]bool{} // cloud IDs seen during the scan
	for i := range jobs {
		for _, res := range lists[i] {
			seen[res.ID] = true
			rs := st.ByID(res.ID)
			if rs == nil {
				rep.Items = append(rep.Items, Item{
					Kind: Unmanaged, Type: res.Type, ID: res.ID,
					CloudAttrs: res.Attrs,
				})
				continue
			}
			if changed := diffAttrs(res.Type, rs.Attrs, res.Attrs); len(changed) > 0 {
				rep.Items = append(rep.Items, Item{
					Kind: Modified, Addr: rs.Addr, Type: res.Type, ID: res.ID,
					ChangedAttrs: changed, CloudAttrs: res.Attrs,
				})
			}
		}
	}
	for _, addr := range st.Addrs() {
		rs := st.Get(addr)
		if !seen[rs.ID] {
			rep.Items = append(rep.Items, Item{
				Kind: Deleted, Addr: addr, Type: rs.Type, ID: rs.ID,
			})
		}
	}
	sortItems(rep.Items)
	publishItems(ctx, rep.Method, rep.Items)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Watcher is the cloudless-native detector: it tails the activity log and
// reacts only to events from principals other than its own, resolving each
// to a targeted Get instead of scanning the world.
type Watcher struct {
	cl cloud.Interface
	// Principal is "us": events by this principal are expected and skipped.
	Principal string
	lastSeq   int64
}

// NewWatcher builds a watcher starting after the given log sequence number
// (use the cloud's current tail so pre-existing history is not replayed).
func NewWatcher(cl cloud.Interface, principal string, afterSeq int64) *Watcher {
	return &Watcher{cl: cl, Principal: principal, lastSeq: afterSeq}
}

// LastSeq returns the watcher's log cursor.
func (w *Watcher) LastSeq() int64 { return w.lastSeq }

// Poll reads new activity-log events and turns foreign ones into drift
// items, advancing the cursor.
func (w *Watcher) Poll(ctx context.Context, st *state.State) (*Report, error) {
	start := time.Now()
	rep := &Report{Method: "activity-log", BaseSerial: st.Serial}
	events, err := w.cl.Activity(ctx, w.lastSeq)
	rep.LogReads++
	if err != nil {
		return rep, fmt.Errorf("drift watch: %w", err)
	}
	// Coalesce events per resource: the last event wins.
	type agg struct {
		ev      cloud.Event
		changed map[string]bool
	}
	byID := map[string]*agg{}
	var order []string
	for _, ev := range events {
		if ev.Seq > w.lastSeq {
			w.lastSeq = ev.Seq
		}
		if ev.Principal == w.Principal {
			continue
		}
		a := byID[ev.ID]
		if a == nil {
			a = &agg{changed: map[string]bool{}}
			byID[ev.ID] = a
			order = append(order, ev.ID)
		}
		a.ev = ev
		for _, c := range ev.Changed {
			a.changed[c] = true
		}
	}
	// First pass: decide which foreign events need a verifying read — an
	// OpCreate of an unmanaged ID or an OpUpdate of a managed one. The
	// reads then go out as batched gets (one admitted call per
	// MaxBatchItems chunk) instead of one Get per event, which is what
	// keeps a busy poll cheap on a 100k-resource fleet.
	var keys []cloud.ResourceKey
	for _, id := range order {
		a := byID[id]
		rs := st.ByID(id)
		if (a.ev.Op == cloud.OpCreate && rs == nil) || (a.ev.Op == cloud.OpUpdate && rs != nil) {
			keys = append(keys, cloud.ResourceKey{Type: a.ev.Type, ID: id})
		}
	}
	verified := make(map[string]cloud.BatchResult, len(keys))
	_, batched := w.cl.(cloud.BatchGetter)
	for start := 0; start < len(keys); start += cloud.MaxBatchItems {
		end := start + cloud.MaxBatchItems
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[start:end]
		results, err := cloud.BatchGet(ctx, w.cl, chunk)
		if batched {
			rep.APICalls++
		} else {
			rep.APICalls += len(chunk)
		}
		if err != nil {
			return rep, fmt.Errorf("drift watch: %w", err)
		}
		for i, k := range chunk {
			verified[k.ID] = results[i]
		}
	}
	for _, id := range order {
		a := byID[id]
		rs := st.ByID(id)
		switch a.ev.Op {
		case cloud.OpDelete:
			if rs != nil {
				rep.Items = append(rep.Items, Item{
					Kind: Deleted, Addr: rs.Addr, Type: a.ev.Type, ID: id, Actor: a.ev.Principal,
				})
			}
		case cloud.OpCreate:
			if rs == nil {
				got := verified[id]
				if got.Err != nil {
					if cloud.IsNotFound(got.Err) {
						continue // created and deleted between polls
					}
					return rep, got.Err
				}
				rep.Items = append(rep.Items, Item{
					Kind: Unmanaged, Type: a.ev.Type, ID: id, Actor: a.ev.Principal,
					CloudAttrs: got.Resource.Attrs,
				})
			}
		case cloud.OpUpdate:
			if rs == nil {
				continue // churn on an unmanaged resource
			}
			got := verified[id]
			if got.Err != nil {
				if cloud.IsNotFound(got.Err) {
					rep.Items = append(rep.Items, Item{
						Kind: Deleted, Addr: rs.Addr, Type: a.ev.Type, ID: id, Actor: a.ev.Principal,
					})
					continue
				}
				return rep, got.Err
			}
			changed := diffAttrs(a.ev.Type, rs.Attrs, got.Resource.Attrs)
			if len(changed) == 0 {
				continue // e.g. changed back before we looked
			}
			rep.Items = append(rep.Items, Item{
				Kind: Modified, Addr: rs.Addr, Type: a.ev.Type, ID: id,
				ChangedAttrs: changed, Actor: a.ev.Principal, CloudAttrs: got.Resource.Attrs,
			})
		}
	}
	sortItems(rep.Items)
	publishItems(ctx, rep.Method, rep.Items)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ScanAddrs is the reconciler's scoped verifier: it re-reads just the given
// state addresses from the cloud (fresh, batched like Watcher.Poll's verify
// pass) and reports which of them actually drifted. Where a full scan costs
// one paginated List per (type, region), a scoped scan costs one batched Get
// per MaxBatchItems chunk of suspects — the difference the RC experiment
// measures. Addresses absent from state are skipped (already repaired or
// never managed); unmanaged resources are by construction invisible to a
// scoped scan, which is why the reconciler keeps a low-frequency FullScan
// safety net.
func ScanAddrs(ctx context.Context, cl cloud.Interface, st *state.State, addrs []string) (*Report, error) {
	start := time.Now()
	rep := &Report{Method: "scoped", BaseSerial: st.Serial}

	var keys []cloud.ResourceKey
	var records []*state.ResourceState
	seen := map[string]bool{}
	for _, addr := range addrs {
		if seen[addr] {
			continue
		}
		seen[addr] = true
		rs := st.Get(addr)
		if rs == nil {
			continue
		}
		keys = append(keys, cloud.ResourceKey{Type: rs.Type, ID: rs.ID})
		records = append(records, rs)
	}
	fctx := provider.WithFresh(ctx)
	_, batched := cl.(cloud.BatchGetter)
	for i := 0; i < len(keys); i += cloud.MaxBatchItems {
		end := i + cloud.MaxBatchItems
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[i:end]
		results, err := cloud.BatchGet(fctx, cl, chunk)
		if batched {
			rep.APICalls++
		} else {
			rep.APICalls += len(chunk)
		}
		if err != nil {
			return rep, fmt.Errorf("drift scoped scan: %w", err)
		}
		for j, rs := range records[i:end] {
			got := results[j]
			if got.Err != nil {
				if cloud.IsNotFound(got.Err) {
					rep.Items = append(rep.Items, Item{
						Kind: Deleted, Addr: rs.Addr, Type: rs.Type, ID: rs.ID,
					})
					continue
				}
				return rep, fmt.Errorf("drift scoped scan %s: %w", rs.Addr, got.Err)
			}
			if changed := diffAttrs(rs.Type, rs.Attrs, got.Resource.Attrs); len(changed) > 0 {
				rep.Items = append(rep.Items, Item{
					Kind: Modified, Addr: rs.Addr, Type: rs.Type, ID: rs.ID,
					ChangedAttrs: changed, CloudAttrs: got.Resource.Attrs,
				})
			}
		}
	}
	sortItems(rep.Items)
	publishItems(ctx, rep.Method, rep.Items)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Action is what reconciliation does with one drift item.
type Action int

// Reconciliation actions.
const (
	// Adopt updates the recorded state to match the cloud (the
	// "regenerate the IaC-level program to reflect the latest deployment"
	// path).
	Adopt Action = iota
	// Revert pushes the recorded state back to the cloud, undoing the
	// out-of-band change.
	Revert
	// Notify leaves the drift in place for a human.
	Notify
)

var actionNames = map[Action]string{Adopt: "adopt", Revert: "revert", Notify: "notify"}

// String names the action.
func (a Action) String() string { return actionNames[a] }

// Policy chooses an action per drift item.
type Policy func(Item) Action

// AdoptAll and RevertAll are the two obvious policies.
func AdoptAll(Item) Action { return Adopt }

// RevertAll undoes every modification (deletions are re-created by the next
// apply; reconciliation removes them from state so the planner sees them).
func RevertAll(Item) Action { return Revert }

// ReconcileResult summarizes a reconciliation pass.
type ReconcileResult struct {
	State    *state.State
	Adopted  []string
	Reverted []string
	Notified []string
	Errors   map[string]error
}

// Reconcile applies a policy to a drift report, returning an updated state.
func Reconcile(ctx context.Context, cl cloud.Interface, st *state.State, rep *Report, policy Policy, principal string) *ReconcileResult {
	out := &ReconcileResult{State: st.Clone(), Errors: map[string]error{}}
	for _, item := range rep.Items {
		key := item.Addr
		if key == "" {
			key = item.ID
		}
		switch policy(item) {
		case Adopt:
			switch item.Kind {
			case Deleted:
				out.State.Remove(item.Addr)
			case Modified:
				rs := out.State.Get(item.Addr)
				if rs != nil && item.CloudAttrs != nil {
					rs.Attrs = item.CloudAttrs
					rs.UpdatedAt = time.Now()
				}
			case Unmanaged:
				// Adopting unmanaged resources into configuration is the
				// porter's job (§3.1); reconciliation records them under a
				// synthetic import address so they are at least tracked.
				addr := fmt.Sprintf("%s.imported_%s", item.Type, sanitize(item.ID))
				out.State.Set(&state.ResourceState{
					Addr: addr, Type: item.Type, ID: item.ID,
					Attrs: item.CloudAttrs, UpdatedAt: time.Now(),
				})
			}
			out.Adopted = append(out.Adopted, key)
		case Revert:
			switch item.Kind {
			case Modified:
				rs := out.State.Get(item.Addr)
				if rs == nil {
					continue
				}
				attrs := map[string]eval.Value{}
				schemaRS, _ := schema.LookupResource(item.Type)
				for _, name := range item.ChangedAttrs {
					if schemaRS != nil {
						if a := schemaRS.Attr(name); a == nil || a.Computed || a.ForceNew {
							continue
						}
					}
					if v, ok := rs.Attrs[name]; ok {
						attrs[name] = v
					}
				}
				if len(attrs) == 0 {
					out.Notified = append(out.Notified, key)
					continue
				}
				if _, err := cl.Update(ctx, cloud.UpdateRequest{
					Type: item.Type, ID: item.ID, Attrs: attrs, Principal: principal,
				}); err != nil {
					out.Errors[key] = err
					continue
				}
				out.Reverted = append(out.Reverted, key)
			case Deleted:
				// Cannot revert a deletion in place: drop it from state so
				// the next plan re-creates it.
				out.State.Remove(item.Addr)
				out.Reverted = append(out.Reverted, key)
			case Unmanaged:
				if err := cl.Delete(ctx, item.Type, item.ID, principal); err != nil {
					out.Errors[key] = err
					continue
				}
				out.Reverted = append(out.Reverted, key)
			}
		default:
			out.Notified = append(out.Notified, key)
		}
	}
	return out
}

func sanitize(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
