package drift

import (
	"context"
	"fmt"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

const baseConfig = `
resource "aws_vpc" "main" {
  name       = "main"
  cidr_block = "10.0.0.0/16"
}
resource "aws_subnet" "s" {
  name       = "s"
  vpc_id     = aws_vpc.main.id
  cidr_block = "10.0.1.0/24"
}
`

// deployBase stands up the base configuration and returns sim + state.
func deployBase(t *testing.T) (*cloud.Sim, *state.State) {
	t.Helper()
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	m, diags := config.Load(map[string]string{"main.ccl": baseConfig})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	res := apply.Apply(context.Background(), sim, p, apply.Options{Principal: "cloudless"})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return sim, res.State
}

func TestFullScanCleanInfrastructure(t *testing.T) {
	sim, st := deployBase(t)
	rep, err := FullScan(context.Background(), sim, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasDrift() {
		t.Fatalf("clean infra reported drift: %+v", rep.Items)
	}
	// The scan burned one List per (type, region) pair.
	if rep.APICalls < 50 {
		t.Errorf("full scan used only %d API calls; expected a full type×region sweep", rep.APICalls)
	}
}

func TestFullScanDetectsAllDriftKinds(t *testing.T) {
	sim, st := deployBase(t)
	ctx := context.Background()

	// Modified out-of-band.
	vpc := st.Get("aws_vpc.main")
	if _, err := sim.Update(ctx, cloud.UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs:     map[string]eval.Value{"enable_dns": eval.False},
		Principal: "legacy-script",
	}); err != nil {
		t.Fatal(err)
	}
	// Deleted out-of-band.
	sub := st.Get("aws_subnet.s")
	if err := sim.Delete(ctx, "aws_subnet", sub.ID, "legacy-script"); err != nil {
		t.Fatal(err)
	}
	// Created out-of-band (unmanaged).
	if _, err := sim.Create(ctx, cloud.CreateRequest{
		Type: "aws_storage_bucket", Region: "us-east-1",
		Attrs:     map[string]eval.Value{"name": eval.String("rogue")},
		Principal: "legacy-script",
	}); err != nil {
		t.Fatal(err)
	}

	rep, err := FullScan(ctx, sim, st)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, it := range rep.Items {
		kinds[it.Kind]++
	}
	if kinds[Modified] != 1 || kinds[Deleted] != 1 || kinds[Unmanaged] != 1 {
		t.Fatalf("kinds = %v, items = %+v", kinds, rep.Items)
	}
	for _, it := range rep.Items {
		if it.Kind == Modified {
			if len(it.ChangedAttrs) != 1 || it.ChangedAttrs[0] != "enable_dns" {
				t.Errorf("changed attrs = %v", it.ChangedAttrs)
			}
		}
	}
}

func TestWatcherDetectsDriftWithAttribution(t *testing.T) {
	sim, st := deployBase(t)
	ctx := context.Background()
	w := NewWatcher(sim, "cloudless", sim.LastSeq())

	// No drift yet.
	rep, err := w.Poll(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasDrift() {
		t.Fatalf("unexpected drift: %+v", rep.Items)
	}

	vpc := st.Get("aws_vpc.main")
	if _, err := sim.Update(ctx, cloud.UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs:     map[string]eval.Value{"enable_dns": eval.False},
		Principal: "team-networking",
	}); err != nil {
		t.Fatal(err)
	}

	rep, err = w.Poll(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != 1 {
		t.Fatalf("items = %+v", rep.Items)
	}
	it := rep.Items[0]
	if it.Kind != Modified || it.Addr != "aws_vpc.main" || it.Actor != "team-networking" {
		t.Errorf("item = %+v", it)
	}
	// The watcher spent one targeted Get, not a world scan.
	if it2 := rep.APICalls; it2 != 1 {
		t.Errorf("API calls = %d, want 1", it2)
	}
	// Cursor advanced: re-polling finds nothing new.
	rep, _ = w.Poll(ctx, st)
	if rep.HasDrift() {
		t.Error("drift reported twice for the same event")
	}
}

func TestWatcherIgnoresOwnChanges(t *testing.T) {
	sim, st := deployBase(t)
	ctx := context.Background()
	w := NewWatcher(sim, "cloudless", sim.LastSeq())
	vpc := st.Get("aws_vpc.main")
	if _, err := sim.Update(ctx, cloud.UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs:     map[string]eval.Value{"enable_dns": eval.False},
		Principal: "cloudless", // our own apply
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := w.Poll(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasDrift() {
		t.Fatalf("own change reported as drift: %+v", rep.Items)
	}
}

func TestWatcherCoalescesAndDetectsDeletion(t *testing.T) {
	sim, st := deployBase(t)
	ctx := context.Background()
	w := NewWatcher(sim, "cloudless", sim.LastSeq())
	sub := st.Get("aws_subnet.s")
	// Update then delete: only the deletion should surface.
	_, _ = sim.Update(ctx, cloud.UpdateRequest{Type: "aws_subnet", ID: sub.ID,
		Attrs: map[string]eval.Value{"name": eval.String("x")}, Principal: "ops"})
	_ = sim.Delete(ctx, "aws_subnet", sub.ID, "ops")
	rep, err := w.Poll(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != 1 || rep.Items[0].Kind != Deleted {
		t.Fatalf("items = %+v", rep.Items)
	}
}

func TestReconcileAdopt(t *testing.T) {
	sim, st := deployBase(t)
	ctx := context.Background()
	vpc := st.Get("aws_vpc.main")
	_, _ = sim.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: vpc.ID,
		Attrs: map[string]eval.Value{"enable_dns": eval.False}, Principal: "ops"})

	rep, _ := FullScan(ctx, sim, st)
	res := Reconcile(ctx, sim, st, rep, AdoptAll, "cloudless")
	if len(res.Adopted) != 1 {
		t.Fatalf("adopted = %v errs = %v", res.Adopted, res.Errors)
	}
	if !res.State.Get("aws_vpc.main").Attr("enable_dns").Equal(eval.False) {
		t.Error("state did not adopt the cloud value")
	}
	// After adoption, a rescan is clean.
	rep2, _ := FullScan(ctx, sim, res.State)
	if rep2.HasDrift() {
		t.Errorf("drift remains after adopt: %+v", rep2.Items)
	}
}

func TestReconcileRevert(t *testing.T) {
	sim, st := deployBase(t)
	ctx := context.Background()
	vpc := st.Get("aws_vpc.main")
	_, _ = sim.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: vpc.ID,
		Attrs: map[string]eval.Value{"enable_dns": eval.False}, Principal: "ops"})

	rep, _ := FullScan(ctx, sim, st)
	res := Reconcile(ctx, sim, st, rep, RevertAll, "cloudless")
	if len(res.Reverted) != 1 {
		t.Fatalf("reverted = %v errs = %v", res.Reverted, res.Errors)
	}
	cur, err := sim.Get(ctx, "aws_vpc", vpc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Attr("enable_dns").Equal(eval.True) {
		t.Error("cloud value not reverted")
	}
}

func TestReconcileRevertDeletesUnmanaged(t *testing.T) {
	sim, st := deployBase(t)
	ctx := context.Background()
	rogue, err := sim.Create(ctx, cloud.CreateRequest{
		Type: "aws_storage_bucket", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("rogue")}, Principal: "ops",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := FullScan(ctx, sim, st)
	res := Reconcile(ctx, sim, st, rep, RevertAll, "cloudless")
	if len(res.Reverted) != 1 {
		t.Fatalf("reverted = %v errs = %v", res.Reverted, res.Errors)
	}
	if _, err := sim.Get(ctx, "aws_storage_bucket", rogue.ID); !cloud.IsNotFound(err) {
		t.Error("unmanaged resource not removed")
	}
}

func TestFullScanVsWatcherAPICost(t *testing.T) {
	// The E7 claim in miniature: for one drift event, the log watcher
	// spends ~1 API call; the full scan spends hundreds.
	sim, st := deployBase(t)
	ctx := context.Background()
	w := NewWatcher(sim, "cloudless", sim.LastSeq())
	vpc := st.Get("aws_vpc.main")
	_, _ = sim.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: vpc.ID,
		Attrs: map[string]eval.Value{"enable_dns": eval.False}, Principal: "ops"})

	scan, _ := FullScan(ctx, sim, st)
	watch, _ := w.Poll(ctx, st)
	if len(scan.Items) != 1 || len(watch.Items) != 1 {
		t.Fatalf("both must find the drift: scan=%d watch=%d", len(scan.Items), len(watch.Items))
	}
	if watch.APICalls*10 > scan.APICalls {
		t.Errorf("watcher (%d calls) should be >10x cheaper than scan (%d calls)",
			watch.APICalls, scan.APICalls)
	}
}

// TestWatcherPollBatchesVerifyingGets: a poll that has to verify many
// foreign events must spend one batched call per MaxBatchItems chunk, not
// one Get per event.
func TestWatcherPollBatchesVerifyingGets(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	ctx := context.Background()

	// 30 managed VPCs.
	st := state.New()
	ids := make([]string, 30)
	for i := range ids {
		res, err := sim.Create(ctx, cloud.CreateRequest{
			Type: "aws_vpc", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"name":       eval.String(fmt.Sprintf("v-%d", i)),
				"cidr_block": eval.String("10.0.0.0/16"),
			},
			Principal: "cloudless",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = res.ID
		st.Set(&state.ResourceState{
			Addr: fmt.Sprintf("aws_vpc.v[%d]", i), Type: "aws_vpc",
			ID: res.ID, Region: res.Region, Attrs: res.Attrs,
		})
	}
	w := NewWatcher(sim, "cloudless", sim.LastSeq())

	// A foreign principal touches every one of them.
	for _, id := range ids {
		if _, err := sim.Update(ctx, cloud.UpdateRequest{
			Type: "aws_vpc", ID: id,
			Attrs:     map[string]eval.Value{"enable_dns": eval.False},
			Principal: "legacy-script",
		}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := w.Poll(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != len(ids) {
		t.Fatalf("items = %d, want %d", len(rep.Items), len(ids))
	}
	for _, it := range rep.Items {
		if it.Kind != Modified || it.Actor != "legacy-script" {
			t.Errorf("item = %+v", it)
		}
	}
	// 30 verifications in one batched call (sim implements BatchGetter).
	if rep.APICalls != 1 {
		t.Errorf("poll spent %d API calls verifying %d events, want 1", rep.APICalls, len(ids))
	}
	if got := sim.Metrics().BatchItems; got != int64(len(ids)) {
		t.Errorf("batched items = %d, want %d", got, len(ids))
	}
}

// TestFullScanPaginatesLargeTypes: a type whose population exceeds one page
// is walked page by page, every resource observed exactly once.
func TestFullScanPaginatesLargeTypes(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)
	ctx := context.Background()

	st := state.New()
	const n = scanPageSize + 50
	for start := 0; start < n; start += cloud.MaxBatchItems {
		end := start + cloud.MaxBatchItems
		if end > n {
			end = n
		}
		reqs := make([]cloud.CreateRequest, 0, end-start)
		for i := start; i < end; i++ {
			reqs = append(reqs, cloud.CreateRequest{
				Type: "aws_storage_bucket", Region: "us-east-1",
				Attrs:     map[string]eval.Value{"name": eval.String(fmt.Sprintf("b-%06d", i))},
				Principal: "cloudless",
			})
		}
		results, err := sim.BatchCreate(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		for j, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			st.Set(&state.ResourceState{
				Addr: fmt.Sprintf("aws_storage_bucket.b[%d]", start+j), Type: "aws_storage_bucket",
				ID: r.Resource.ID, Region: r.Resource.Region, Attrs: r.Resource.Attrs,
			})
		}
	}

	rep, err := FullScan(ctx, sim, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasDrift() {
		t.Fatalf("clean fleet reported drift: %d items", len(rep.Items))
	}
	// The bucket type needed two pages; every other (type, region) one.
	if rep.APICalls < 51 {
		t.Errorf("scan used %d API calls; expected at least one page per (type, region) plus the overflow page", rep.APICalls)
	}
}
