package cloudless_test

import (
	"context"
	"fmt"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/plan"
	"cloudless/internal/rollback"
	"cloudless/internal/schema"
	"cloudless/internal/state"
	"cloudless/internal/validate"
	"cloudless/internal/workload"
)

func expandFiles(t *testing.T, files map[string]string) *config.Expansion {
	t.Helper()
	m, diags := config.Load(files)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	return ex
}

// TestApplyFixpointProperty: for a spread of randomized workloads, applying
// a plan and replanning yields zero pending changes — the core correctness
// invariant of any IaC engine.
func TestApplyFixpointProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			files := workload.RandomDAG(24, seed)
			ex := expandFiles(t, files)
			sim := newSim()
			p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			res := apply.Apply(context.Background(), sim, p, apply.Options{Principal: "cloudless"})
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			// Replan against the produced state AND against a cloud refresh:
			// both must be no-ops.
			for _, opts := range []plan.Options{{}, {Refresh: true, Cloud: sim}} {
				p2, diags := plan.Compute(context.Background(), ex, res.State, opts)
				if diags.HasErrors() {
					t.Fatal(diags.Error())
				}
				if p2.PendingCount() != 0 {
					for a, c := range p2.Changes {
						if c.Action != plan.ActionNoop {
							t.Logf("%s -> %s (%v)", a, c.Action, c.ChangedAttrs)
						}
					}
					t.Fatalf("not a fixpoint (refresh=%v): %s", opts.Refresh, p2.Summary())
				}
			}
			// And destroy leaves both cloud and state empty.
			dres := apply.Destroy(context.Background(), sim, res.State, apply.Options{Principal: "cloudless"})
			if err := dres.Err(); err != nil {
				t.Fatal(err)
			}
			if sim.TotalResources() != 0 || dres.State.Len() != 0 {
				t.Fatalf("destroy incomplete: cloud=%d state=%d", sim.TotalResources(), dres.State.Len())
			}
		})
	}
}

// TestIncrementalPlanSoundnessProperty: for random config deltas, the
// incremental plan scoped to the changed resources finds exactly the same
// changes as a full plan.
func TestIncrementalPlanSoundnessProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			files := workload.RandomDAG(20, seed)
			ex := expandFiles(t, files)
			sim := newSim()
			p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			res := apply.Apply(context.Background(), sim, p, apply.Options{Principal: "cloudless"})
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			st := res.State

			// Delta: rename one VM (deterministically chosen per seed).
			target := fmt.Sprintf("aws_virtual_machine.r%d", int(seed)%3)
			if st.Get(target) == nil {
				t.Skipf("workload %d has no %s", seed, target)
			}
			files["rand.ccl"] = replaceOnce(files["rand.ccl"],
				fmt.Sprintf(`name    = "r-vm-%d"`, int(seed)%3),
				fmt.Sprintf(`name    = "r-vm-%d-renamed"`, int(seed)%3))
			ex2 := expandFiles(t, files)

			full, diags := plan.Compute(context.Background(), ex2, st, plan.Options{})
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			incr, diags := plan.Compute(context.Background(), ex2, st, plan.Options{
				ImpactScope: []string{target},
			})
			if diags.HasErrors() {
				t.Fatal(diags.Error())
			}
			// Same pending operations.
			if full.PendingCount() != incr.PendingCount() {
				t.Fatalf("full=%s incr=%s", full.Summary(), incr.Summary())
			}
			for addr, fc := range full.Changes {
				if fc.Action == plan.ActionNoop {
					continue
				}
				ic, ok := incr.Changes[addr]
				if !ok || ic.Action != fc.Action {
					t.Errorf("%s: full=%s incr=%v", addr, fc.Action, ic)
				}
			}
			// And the incremental plan did strictly less evaluation work.
			if incr.EvaluatedInstances >= full.EvaluatedInstances {
				t.Errorf("incremental evaluated %d >= full %d",
					incr.EvaluatedInstances, full.EvaluatedInstances)
			}
		})
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

// TestRollbackRestoresProperty: deploy v1, apply a batch of updates (v2),
// roll back, and verify every configurable attribute matches v1 again —
// both in state and in the cloud.
func TestRollbackRestoresProperty(t *testing.T) {
	sim := newSim()
	ctx := context.Background()
	files := workload.WebTier("app", 2, 6)
	ex := expandFiles(t, files)
	p, diags := plan.Compute(ctx, ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	res := apply.Apply(ctx, sim, p, apply.Options{Principal: "cloudless"})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	v1 := res.State.Clone()

	// v2: rename all VMs via a real apply.
	files["app.ccl"] = replaceOnce(files["app.ccl"], `"app-web-${count.index}"`, `"app-web-v2-${count.index}"`)
	ex2 := expandFiles(t, files)
	p2, diags := plan.Compute(ctx, ex2, v1, plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	res2 := apply.Apply(ctx, sim, p2, apply.Options{Principal: "cloudless"})
	if err := res2.Err(); err != nil {
		t.Fatal(err)
	}
	v2 := res2.State

	rp := rollback.Compute(v2, v1)
	if rp.Redeployments != 0 {
		t.Fatalf("renames should revert in place: %s", rp.Summary())
	}
	after, err := rollback.Execute(ctx, sim, v2, v1, rp, "cloudless")
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range v1.Addrs() {
		want := v1.Get(addr)
		got := after.Get(addr)
		if got == nil {
			t.Fatalf("%s missing after rollback", addr)
		}
		rs, _ := schema.LookupResource(want.Type)
		for name, wv := range want.Attrs {
			if a := rs.Attr(name); a == nil || a.Computed {
				continue
			}
			if !got.Attr(name).Equal(wv) {
				t.Errorf("%s.%s = %v, want %v", addr, name, got.Attr(name), wv)
			}
			// The cloud agrees with the state.
			live, err := sim.Get(ctx, want.Type, got.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !live.Attr(name).Equal(wv) {
				t.Errorf("cloud %s.%s = %v, want %v", addr, name, live.Attr(name), wv)
			}
		}
	}
}

// TestValidatedWorkloadsDeployProperty: everything the validator passes
// deploys cleanly; the compile-time check is not vacuous.
func TestValidatedWorkloadsDeployProperty(t *testing.T) {
	workloads := []map[string]string{
		workload.WebTier("a", 2, 5),
		workload.Microservices(3, 2),
		workload.SkewedLatency(6),
		workload.RandomDAG(15, 99),
	}
	for i, files := range workloads {
		ex := expandFiles(t, files)
		if res := validate.Validate(ex, nil); res.HasErrors() {
			t.Fatalf("workload %d: validation errors %+v", i, res.Errors())
		}
		sim := newSim()
		p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
		if diags.HasErrors() {
			t.Fatal(diags.Error())
		}
		res := apply.Apply(context.Background(), sim, p, apply.Options{Principal: "cloudless"})
		if err := res.Err(); err != nil {
			t.Fatalf("workload %d failed to deploy after passing validation: %s", i, err)
		}
	}
}

// TestCloudStateConsistencyUnderConcurrentApplies: two stacks with disjoint
// configurations share one cloud; both apply concurrently; both succeed and
// the cloud holds exactly the union.
func TestCloudStateConsistencyUnderConcurrentApplies(t *testing.T) {
	sim := newSim()
	ctx := context.Background()
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			files := workload.WebTier(fmt.Sprintf("team%d", i), 2, 4)
			m, diags := config.Load(files)
			if diags.HasErrors() {
				done <- diags
				return
			}
			ex, diags := config.Expand(m, nil, nil)
			if diags.HasErrors() {
				done <- diags
				return
			}
			p, diags := plan.Compute(ctx, ex, state.New(), plan.Options{})
			if diags.HasErrors() {
				done <- diags
				return
			}
			res := apply.Apply(ctx, sim, p, apply.Options{Principal: fmt.Sprintf("team%d", i)})
			done <- res.Err()
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.Count("aws_virtual_machine"); got != 8 {
		t.Errorf("VMs = %d, want 8", got)
	}
	_ = cloud.DefaultOptions()
}
