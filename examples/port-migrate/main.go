// Port & migrate (§3.1): an enterprise built its cloud footprint with raw
// API calls ("ClickOps"); no IaC exists. The porter scans the live cloud and
// generates a CCL program plus matching state — first naively (one block per
// resource, aztfy-style), then with the program optimizer (pruned defaults,
// linked references, count compaction, module extraction) — and proves
// fidelity by showing the generated program plans clean against the live
// infrastructure.
//
//	go run ./examples/port-migrate
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/port"
)

func main() {
	ctx := context.Background()
	opts := cloud.DefaultOptions()
	opts.TimeScale = 0 // instant control plane for the demo
	opts.DisableRateLimit = true
	sim := cloud.NewSim(opts)

	// --- The legacy, non-IaC infrastructure: three identical tenant
	// stacks plus a fleet of uniformly-named NICs, created by raw API
	// calls the way a portal or shell script would.
	for tenant := 0; tenant < 3; tenant++ {
		vpc, err := sim.Create(ctx, cloud.CreateRequest{
			Type: "aws_vpc", Region: "us-east-1", Principal: "clickops",
			Attrs: map[string]eval.Value{
				"name":       eval.String(fmt.Sprintf("tenant-%d", tenant)),
				"cidr_block": eval.String(fmt.Sprintf("10.%d.0.0/16", tenant)),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sim.Create(ctx, cloud.CreateRequest{
			Type: "aws_subnet", Region: "us-east-1", Principal: "clickops",
			Attrs: map[string]eval.Value{
				"vpc_id":     eval.String(vpc.ID),
				"cidr_block": eval.String(fmt.Sprintf("10.%d.1.0/24", tenant)),
			},
		}); err != nil {
			log.Fatal(err)
		}
	}
	shared, err := sim.Create(ctx, cloud.CreateRequest{
		Type: "aws_vpc", Region: "us-east-1", Principal: "clickops",
		Attrs: map[string]eval.Value{
			"name":       eval.String("shared"),
			"cidr_block": eval.String("10.100.0.0/16"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sub, err := sim.Create(ctx, cloud.CreateRequest{
		Type: "aws_subnet", Region: "us-east-1", Principal: "clickops",
		Attrs: map[string]eval.Value{
			"vpc_id":     eval.String(shared.ID),
			"cidr_block": eval.String("10.100.1.0/24"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := sim.Create(ctx, cloud.CreateRequest{
			Type: "aws_network_interface", Region: "us-east-1", Principal: "clickops",
			Attrs: map[string]eval.Value{
				"name":      eval.String(fmt.Sprintf("fleet-nic-%d", i)),
				"subnet_id": eval.String(sub.ID),
			},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("legacy cloud: %d resources created outside IaC\n\n", sim.TotalResources())

	// --- Naive port (what static-template tools produce).
	naive, err := port.Import(ctx, sim, port.ImportOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive port:     %3d lines, %2d blocks, compaction %.1fx\n",
		naive.Metrics.Lines, naive.Metrics.Blocks, naive.Metrics.CompactionRatio)

	// --- Optimized port with module extraction.
	optimized, err := port.Import(ctx, sim, port.ImportOptions{ExtractModules: true})
	if err != nil {
		log.Fatal(err)
	}
	m := optimized.Metrics
	fmt.Printf("optimized port: %3d lines, %2d blocks, compaction %.1fx, %d module(s), %.0f%% references linked\n\n",
		m.Lines, m.Blocks, m.CompactionRatio, m.ModuleCount, m.ReferenceRatio*100)

	fmt.Println("generated main.ccl:")
	fmt.Println(indent(optimized.Files["main.ccl"]))
	for name, src := range optimized.Files {
		if strings.HasPrefix(name, "modules/") {
			fmt.Printf("generated %s:\n%s", name, indent(src))
		}
	}

	// --- Fidelity proof: the generated program + state plan clean against
	// the live cloud (a no-op plan means the port captured everything).
	resolver := config.MapResolver{}
	for name, src := range optimized.Files {
		if strings.HasPrefix(name, "modules/") {
			resolver["./"+strings.TrimSuffix(name, "/main.ccl")] = map[string]string{"main.ccl": src}
		}
	}
	mod, diags := config.Load(map[string]string{"main.ccl": optimized.Files["main.ccl"]})
	if diags.HasErrors() {
		log.Fatalf("generated program does not load: %s", diags.Error())
	}
	ex, diags := config.Expand(mod, nil, resolver)
	if diags.HasErrors() {
		log.Fatalf("generated program does not expand: %s", diags.Error())
	}
	p, diags := plan.Compute(ctx, ex, optimized.State, plan.Options{Refresh: true, Cloud: sim})
	if diags.HasErrors() {
		log.Fatalf("plan: %s", diags.Error())
	}
	fmt.Printf("fidelity check: plan against live cloud = %s\n", p.Summary())
	if p.PendingCount() != 0 {
		log.Fatal("ported program is not a fixpoint!")
	}
	fmt.Println("✓ the infrastructure is now fully under IaC management")
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("    ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
