// Drift repair (§3.5): a deployment drifts when a legacy script modifies
// and deletes resources behind the IaC framework's back. The activity-log
// watcher detects both events with attribution and a single targeted API
// call; reconciliation reverts the modification, and a follow-up plan
// recreates the deleted resource. For contrast, the example also runs the
// driftctl-style full scan and prints its API bill.
//
//	go run ./examples/drift-repair
package main

import (
	"context"
	"fmt"
	"log"

	cloudless "cloudless"
	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
)

const infra = `
resource "aws_vpc" "prod" {
  name       = "prod"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "prod" {
  name       = "prod-subnet"
  vpc_id     = aws_vpc.prod.id
  cidr_block = "10.0.1.0/24"
}

resource "aws_storage_bucket" "logs" {
  name       = "prod-logs"
  versioning = true
}
`

func main() {
	ctx := context.Background()
	opts := cloud.DefaultOptions()
	opts.TimeScale = 0.0002
	sim := cloud.NewSim(opts)

	stack, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": infra},
		Cloud:   sim,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := stack.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := stack.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("✓ deployed 3 resources")

	// Prime the watcher at the current log position.
	if _, err := stack.WatchDrift(ctx); err != nil {
		log.Fatal(err)
	}

	// A legacy script mutates the infrastructure out-of-band.
	st := stack.DB().Snapshot()
	vpc := st.Get("aws_vpc.prod")
	if _, err := sim.Update(ctx, cloud.UpdateRequest{
		Type: "aws_vpc", ID: vpc.ID,
		Attrs:     map[string]eval.Value{"enable_dns": eval.False},
		Principal: "legacy-cron-job",
	}); err != nil {
		log.Fatal(err)
	}
	bucket := st.Get("aws_storage_bucket.logs")
	if err := sim.Delete(ctx, "aws_storage_bucket", bucket.ID, "cleanup-script"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("… legacy scripts changed the VPC and deleted the log bucket out-of-band")

	// Cost comparison: full scan vs activity log.
	sim.ResetMetrics()
	scan, err := stack.ScanDrift(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full scan:    found %d drift item(s) with %d API calls\n", len(scan.Items), scan.APICalls)

	watch, err := stack.WatchDrift(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activity log: found %d drift item(s) with %d API call(s) + %d log read(s)\n",
		len(watch.Items), watch.APICalls, watch.LogReads)
	for _, it := range watch.Items {
		fmt.Printf("  %s %s by %q\n", it.Kind, it.Addr, it.Actor)
	}

	// Repair: revert the modification, drop the deleted bucket from state…
	if _, err := stack.ReconcileDrift(ctx, watch, drift.Revert); err != nil {
		log.Fatal(err)
	}
	// …and let the next plan recreate it.
	p2, err := stack.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair plan: %s\n", p2.Summary())
	if _, _, err := stack.Apply(ctx, p2, cloudless.ApplyOptions{}); err != nil {
		log.Fatal(err)
	}

	// Verify the world is back in shape.
	final, err := stack.ScanDrift(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if final.HasDrift() {
		log.Fatalf("drift remains: %+v", final.Items)
	}
	fmt.Println("✓ infrastructure reconciled: no drift remains")
}
