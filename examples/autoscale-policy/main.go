// Autoscale policy (§3.6): the paper's own example of a policy that today's
// clouds cannot express — "scale out the number of VPN tunnels if traffic
// throughput is close to their capacity". The policy observes an arbitrary
// metric, its scale action evolves an IaC variable, and an incremental plan
// applies the change.
//
//	go run ./examples/autoscale-policy
package main

import (
	"context"
	"fmt"
	"log"

	cloudless "cloudless"
	"cloudless/internal/cloud"
)

const infra = `
variable "tunnel_count" {
  type    = number
  default = 2
}

resource "aws_vpc" "edge" {
  name       = "edge"
  cidr_block = "10.8.0.0/16"
}

resource "aws_vpn_gateway" "edge" {
  vpc_id = aws_vpc.edge.id
}

resource "aws_vpn_tunnel" "edge" {
  count          = var.tunnel_count
  vpn_gateway_id = aws_vpn_gateway.edge.id
  peer_ip        = "198.51.100.${count.index}"
}

output "tunnels" { value = aws_vpn_tunnel.edge[*].id }
`

const policies = `
policy "vpn-scale-out" {
  phase = "operate"
  when  = metric.tunnel_utilization > 0.8
  scale {
    variable = "tunnel_count"
    delta    = 1
    max      = 6
  }
  notify { message = "tunnels near capacity (${metric.tunnel_utilization}); scaling out" }
}

policy "vpn-scale-in" {
  phase = "operate"
  when  = metric.tunnel_utilization < 0.25
  scale {
    variable = "tunnel_count"
    delta    = -1
    min      = 2
  }
}
`

func main() {
	ctx := context.Background()
	opts := cloud.DefaultOptions()
	opts.TimeScale = 0.0001
	sim := cloud.NewSim(opts)

	stack, err := cloudless.Open(cloudless.Options{
		Sources:  map[string]string{"main.ccl": infra},
		Cloud:    sim,
		Policies: policies,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := stack.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := stack.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed with %d tunnels\n\n", sim.Count("aws_vpn_tunnel"))

	// A synthetic utilization trace: rising load, a spike, then quiet.
	trace := []float64{0.45, 0.72, 0.88, 0.93, 0.91, 0.60, 0.30, 0.18, 0.12, 0.10}
	for tick, util := range trace {
		decisions, err := stack.Observe(map[string]any{"tunnel_utilization": util})
		if err != nil {
			log.Fatal(err)
		}
		if len(decisions) == 0 {
			fmt.Printf("t=%d  util=%.2f  steady (%d tunnels)\n", tick, util, sim.Count("aws_vpn_tunnel"))
			continue
		}
		for _, d := range decisions {
			fmt.Printf("t=%d  util=%.2f  %s\n", tick, util, d)
		}
		// The controller enacts the decision with an incremental plan
		// confined to the tunnels' impact scope.
		ip, err := stack.PlanIncremental(ctx, "aws_vpn_tunnel.edge")
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := stack.Apply(ctx, ip, cloudless.ApplyOptions{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("      -> applied: now %d tunnels\n", sim.Count("aws_vpn_tunnel"))
	}

	if n := sim.Count("aws_vpn_tunnel"); n != 2 {
		log.Fatalf("expected to settle back at 2 tunnels, have %d", n)
	}
	fmt.Println("\nsettled back at the scale-in floor of 2 tunnels")
}
