// Multicloud: one configuration spanning the AWS-like and Azure-like
// providers, demonstrating compile-time catching of the paper's three §3.2
// cloud-constraint examples — a VM/NIC region mismatch, a password without
// its co-requirement, and overlapping peered address spaces — and then the
// corrected deployment.
//
//	go run ./examples/multicloud
package main

import (
	"context"
	"fmt"
	"log"

	cloudless "cloudless"
	"cloudless/internal/cloud"
)

// broken seeds all three §3.2 violations.
const broken = `
provider "azure" { location = "eastus" }

resource "azure_resource_group" "rg" {
  name     = "demo"
  location = "eastus"
}

resource "azure_virtual_network" "a" {
  name           = "net-a"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}

resource "azure_virtual_network" "b" {
  name           = "net-b"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.128.0/17"] # BUG 3: overlaps net-a
}

resource "azure_vnet_peering" "ab" {
  vnet_a_id = azure_virtual_network.a.id
  vnet_b_id = azure_virtual_network.b.id
}

resource "azure_subnet" "s" {
  virtual_network_id = azure_virtual_network.a.id
  address_prefix     = "10.0.1.0/24"
}

resource "azure_network_interface" "nic" {
  name      = "app-nic"
  subnet_id = azure_subnet.s.id
}

resource "azure_virtual_machine" "vm" {
  name           = "app-vm"
  location       = "westus" # BUG 1: NIC is in eastus
  nic_ids        = [azure_network_interface.nic.id]
  admin_password = "hunter2" # BUG 2: disable_password defaults to true
}

resource "aws_storage_bucket" "assets" {
  name   = "demo-assets"
  region = "us-east-1"
}
`

// fixed corrects all three.
const fixed = `
provider "azure" { location = "eastus" }

resource "azure_resource_group" "rg" {
  name     = "demo"
  location = "eastus"
}

resource "azure_virtual_network" "a" {
  name           = "net-a"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}

resource "azure_virtual_network" "b" {
  name           = "net-b"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.1.0.0/16"]
}

resource "azure_vnet_peering" "ab" {
  vnet_a_id = azure_virtual_network.a.id
  vnet_b_id = azure_virtual_network.b.id
}

resource "azure_subnet" "s" {
  virtual_network_id = azure_virtual_network.a.id
  address_prefix     = "10.0.1.0/24"
}

resource "azure_network_interface" "nic" {
  name      = "app-nic"
  subnet_id = azure_subnet.s.id
}

resource "azure_virtual_machine" "vm" {
  name             = "app-vm"
  nic_ids          = [azure_network_interface.nic.id]
  admin_password   = "hunter2"
  disable_password = false
}

resource "aws_storage_bucket" "assets" {
  name   = "demo-assets"
  region = "us-east-1"
}

output "bucket_domain" { value = aws_storage_bucket.assets.domain_name }
output "vm_ip"         { value = azure_virtual_machine.vm.private_ip }
`

func main() {
	ctx := context.Background()
	opts := cloud.DefaultOptions()
	opts.TimeScale = 0.0002
	sim := cloud.NewSim(opts)

	fmt.Println("=== validating the broken configuration ===")
	brokenStack, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": broken},
		Cloud:   sim,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := brokenStack.Validate()
	for _, f := range res.Errors() {
		fmt.Println(" ", f.Error())
	}
	if !res.HasErrors() {
		log.Fatal("expected the three seeded violations to be caught")
	}
	fmt.Printf("caught %d violation(s) at compile time — zero API calls spent\n\n", len(res.Errors()))

	fmt.Println("=== deploying the fixed configuration across both clouds ===")
	stack, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": fixed},
		Cloud:   sim,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res := stack.Validate(); res.HasErrors() {
		log.Fatalf("fixed config should be clean: %+v", res.Errors())
	}
	p, err := stack.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s\n", p.Summary())
	ares, diagnoses, err := stack.Apply(ctx, p, cloudless.ApplyOptions{})
	for _, d := range diagnoses {
		fmt.Print(d.String())
	}
	if err != nil {
		log.Fatalf("apply: %s", err)
	}
	fmt.Printf("applied %d resources across aws + azure in %s\n", ares.Applied, ares.Elapsed.Round(1e6))
	for k, v := range stack.Outputs() {
		fmt.Printf("  %s = %v\n", k, v)
	}
}
