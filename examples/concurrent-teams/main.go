// Concurrent teams (§3.4): multiple DevOps teams update a shared
// infrastructure at the same time. Under today's whole-infrastructure lock
// their disjoint updates serialize; under Cloudless's per-resource locks
// they run in parallel while a deliberately conflicting pair still
// serializes correctly (no lost updates).
//
//	go run ./examples/concurrent-teams
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
)

const teams = 6
const resourcesPerTeam = 4

// seedState pre-populates a golden state: each team owns its buckets.
func seedState() *state.State {
	st := state.New()
	for t := 0; t < teams; t++ {
		for r := 0; r < resourcesPerTeam; r++ {
			addr := fmt.Sprintf("aws_storage_bucket.t%dr%d", t, r)
			st.Set(&state.ResourceState{
				Addr: addr, Type: "aws_storage_bucket",
				ID: fmt.Sprintf("bkt-%d-%d", t, r), Region: "us-east-1",
				Attrs: map[string]eval.Value{"name": eval.String(addr), "versioning": eval.False},
			})
		}
	}
	return st
}

// teamWork simulates one team's update transaction: lock its resources,
// "work" against the cloud for a while, write, commit.
func teamWork(ctx context.Context, db *statedb.DB, team int, cloudWork time.Duration) error {
	txn := db.Begin(fmt.Sprintf("team-%d", team))
	var addrs []string
	for r := 0; r < resourcesPerTeam; r++ {
		addrs = append(addrs, fmt.Sprintf("aws_storage_bucket.t%dr%d", team, r))
	}
	if err := txn.Lock(ctx, addrs...); err != nil {
		return err
	}
	time.Sleep(cloudWork) // stand-in for the physical cloud updates
	for _, a := range addrs {
		rs, err := txn.Get(a)
		if err != nil {
			txn.Abort()
			return err
		}
		rs.Attrs["versioning"] = eval.True
		if err := txn.Put(rs); err != nil {
			txn.Abort()
			return err
		}
	}
	_, err := txn.Commit()
	return err
}

func run(mode statedb.LockMode, label string) time.Duration {
	db := statedb.Open(seedState(), mode)
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < teams; t++ {
		wg.Add(1)
		go func(team int) {
			defer wg.Done()
			if err := teamWork(context.Background(), db, team, 30*time.Millisecond); err != nil {
				log.Fatalf("%s team %d: %s", label, team, err)
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stats := db.Locks().Stats()
	fmt.Printf("%-22s %d teams finished in %-8s (contended acquisitions: %d)\n",
		label+":", teams, elapsed.Round(time.Millisecond), stats.Contended)
	return elapsed
}

func main() {
	_ = cloud.DefaultOptions() // the cloud itself is out of the picture here

	fmt.Printf("%d teams, %d disjoint resources each, ~30ms of cloud work per team\n\n", teams, resourcesPerTeam)
	global := run(statedb.GlobalLock, "global lock (today)")
	granular := run(statedb.ResourceLock, "per-resource locks")
	fmt.Printf("\nspeedup from granular locking: %.1fx\n", float64(global)/float64(granular))

	// Conflicting updates still serialize: two teams increment a shared
	// counter 200 times each; per-resource locks must not lose any update.
	db := statedb.Open(func() *state.State {
		st := state.New()
		st.Set(&state.ResourceState{Addr: "aws_storage_bucket.shared", Type: "aws_storage_bucket",
			ID: "bkt-shared", Attrs: map[string]eval.Value{"n": eval.Int(0)}})
		return st
	}(), statedb.ResourceLock)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				txn := db.Begin("inc")
				if err := txn.Lock(context.Background(), "aws_storage_bucket.shared"); err != nil {
					log.Fatal(err)
				}
				rs, _ := txn.Get("aws_storage_bucket.shared")
				rs.Attrs["n"] = eval.Int(rs.Attr("n").AsInt() + 1)
				_ = txn.Put(rs)
				if _, err := txn.Commit(); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	final := db.Snapshot().Get("aws_storage_bucket.shared").Attr("n").AsInt()
	fmt.Printf("conflicting updates: 2 teams × 200 increments = %d (expected 400, no lost updates)\n", final)
}
