// Quickstart: the Cloudless paper's Figure 2 program, end to end.
//
// The program declares a data source, a variable, a network interface, and
// a virtual machine (plus the VPC/subnet substrate the NIC needs). We
// validate it, plan it, apply it against the in-process cloud simulator,
// and read the outputs.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	cloudless "cloudless"
	"cloudless/internal/cloud"
)

// figure2 is the paper's example, extended with the subnet/VPC substrate a
// NIC requires in any real cloud.
const figure2 = `
/* Simplified Terraform code snippet (paper Figure 2) */

data "aws_region" "current" {}

variable "vmName" {
  type    = string
  default = "cloudless"
}

resource "aws_vpc" "main" {
  name       = "quickstart"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "main" {
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, 0)
}

resource "aws_network_interface" "n1" {
  name      = "example-nic"
  region    = data.aws_region.current.name
  subnet_id = aws_subnet.main.id
}

resource "aws_virtual_machine" "vm1" {
  name    = var.vmName
  nic_ids = [aws_network_interface.n1.id]
}

output "vm_id"      { value = aws_virtual_machine.vm1.id }
output "private_ip" { value = aws_virtual_machine.vm1.private_ip }
`

func main() {
	ctx := context.Background()

	// An in-process simulated cloud with a fast latency model.
	opts := cloud.DefaultOptions()
	opts.TimeScale = 0.0005 // 90s VM create -> ~45ms
	sim := cloud.NewSim(opts)

	stack, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": figure2},
		Cloud:   sim,
		Vars:    map[string]any{"vmName": "cloudless-demo"},
	})
	if err != nil {
		log.Fatalf("open: %s", err)
	}

	// 1. Validate: semantic types + cloud-level constraints, before any
	//    API call.
	if res := stack.Validate(); res.HasErrors() {
		for _, f := range res.Errors() {
			fmt.Println(f.Error())
		}
		log.Fatal("validation failed")
	}
	fmt.Println("✓ validated: no semantic or cloud-level violations")

	// 2. Plan.
	p, err := stack.Plan(ctx)
	if err != nil {
		log.Fatalf("plan: %s", err)
	}
	fmt.Printf("✓ plan: %s\n", p.Summary())

	// 3. Apply with the critical-path scheduler.
	res, diagnoses, err := stack.Apply(ctx, p, cloudless.ApplyOptions{
		Scheduler: cloudless.SchedulerCriticalPath,
	})
	for _, d := range diagnoses {
		fmt.Print(d.String())
	}
	if err != nil {
		log.Fatalf("apply: %s", err)
	}
	fmt.Printf("✓ applied %d resources in %s\n", res.Applied, res.Elapsed.Round(1e6))

	// 4. Outputs.
	for k, v := range stack.Outputs() {
		fmt.Printf("  %s = %v\n", k, v)
	}

	// 5. A second plan is a no-op: the infrastructure matches the program.
	p2, err := stack.Plan(ctx)
	if err != nil {
		log.Fatalf("replan: %s", err)
	}
	fmt.Printf("✓ replan: %s\n", p2.Summary())
}
