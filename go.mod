module cloudless

go 1.22
