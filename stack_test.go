package cloudless_test

import (
	"context"
	"io"
	"log/slog"
	"strings"
	"testing"

	cloudless "cloudless"
	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
)

func newSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

const stackConfig = `
variable "vm_count" {
  type    = number
  default = 2
}

resource "aws_vpc" "net" {
  name       = "net"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.net.id
  cidr_block = cidrsubnet(aws_vpc.net.cidr_block, 8, 1)
}

resource "aws_network_interface" "web" {
  count     = var.vm_count
  name      = "web-nic-${count.index}"
  subnet_id = aws_subnet.app.id
}

resource "aws_virtual_machine" "web" {
  count   = var.vm_count
  name    = "web-${count.index}"
  nic_ids = [aws_network_interface.web[count.index].id]
}

output "vm_ids" { value = aws_virtual_machine.web[*].id }
`

func openStack(t *testing.T, sim cloud.Interface, policies string) *cloudless.Stack {
	t.Helper()
	s, err := cloudless.Open(cloudless.Options{
		Sources:  map[string]string{"main.ccl": stackConfig},
		Cloud:    sim,
		Policies: policies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFigure1Lifecycle walks the paper's Figure 1 loop end to end:
// validate -> plan -> apply -> update -> drift detect -> repair ->
// policy-driven evolution -> rollback -> destroy.
func TestFigure1Lifecycle(t *testing.T) {
	sim := newSim()
	ctx := context.Background()
	s := openStack(t, sim, `
policy "budget" {
  phase = "plan"
  when  = plan.monthly_cost > 10000
  deny { message = "over budget" }
}
policy "scale-on-load" {
  phase = "operate"
  when  = metric.nic_load > 0.8
  scale {
    variable = "vm_count"
    delta    = 1
    max      = 5
  }
}
`)

	// Validate.
	if res := s.Validate(); res.HasErrors() {
		t.Fatalf("validate: %+v", res.Errors())
	}

	// Plan + apply.
	p, err := s.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.Creates != 6 {
		t.Fatalf("plan: %s", p.Summary())
	}
	res, diagnoses, err := s.Apply(ctx, p, cloudless.ApplyOptions{Scheduler: cloudless.SchedulerCriticalPath})
	if err != nil {
		t.Fatalf("apply: %s (diagnoses: %v)", err, diagnoses)
	}
	if res.Applied != 6 {
		t.Errorf("applied = %d", res.Applied)
	}
	vmIDs := s.Outputs()["vm_ids"].([]any)
	if len(vmIDs) != 2 {
		t.Errorf("vm_ids = %v", vmIDs)
	}
	serialAfterDeploy := s.DB().Serial()

	// Re-plan: no-op.
	p2, err := s.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PendingCount() != 0 {
		t.Fatalf("replan: %s", p2.Summary())
	}

	// Drift: out-of-band change, detected via activity log, then reverted.
	vpcState := s.DB().Snapshot().Get("aws_vpc.net")
	if _, err := sim.Update(ctx, cloud.UpdateRequest{
		Type: "aws_vpc", ID: vpcState.ID,
		Attrs:     map[string]eval.Value{"enable_dns": eval.False},
		Principal: "legacy-script",
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.WatchDrift(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != 1 || rep.Items[0].Actor != "legacy-script" {
		t.Fatalf("drift = %+v", rep.Items)
	}
	if _, err := s.ReconcileDrift(ctx, rep, drift.Revert); err != nil {
		t.Fatal(err)
	}
	live, _ := sim.Get(ctx, "aws_vpc", vpcState.ID)
	if !live.Attr("enable_dns").Equal(eval.True) {
		t.Error("drift not reverted in cloud")
	}

	// Policy-driven evolution: high load scales vm_count 2 -> 3; an
	// incremental plan confined to the web resources applies it.
	decs, err := s.Observe(map[string]any{"nic_load": 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 1 {
		t.Fatalf("decisions = %+v", decs)
	}
	if v, _ := s.Var("vm_count"); v.(float64) != 3 {
		t.Fatalf("vm_count = %v", v)
	}
	p3, err := s.PlanIncremental(ctx, "aws_network_interface.web", "aws_virtual_machine.web")
	if err != nil {
		t.Fatal(err)
	}
	if p3.Creates != 2 { // one nic + one vm
		t.Fatalf("incremental plan: %s", p3.Summary())
	}
	if _, _, err := s.Apply(ctx, p3, cloudless.ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	if sim.Count("aws_virtual_machine") != 3 {
		t.Errorf("cloud has %d VMs", sim.Count("aws_virtual_machine"))
	}

	// Time machine: roll back to the 2-VM deployment.
	rp, target, err := s.PlanRollback(serialAfterDeploy)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExecuteRollback(ctx, rp, target); err != nil {
		t.Fatalf("rollback: %s", err)
	}
	if sim.Count("aws_virtual_machine") != 2 {
		t.Errorf("after rollback: %d VMs", sim.Count("aws_virtual_machine"))
	}

	// Destroy.
	if _, err := s.Destroy(ctx); err != nil {
		t.Fatalf("destroy: %s", err)
	}
	if sim.TotalResources() != 0 {
		t.Errorf("cloud not empty: %d", sim.TotalResources())
	}
}

func TestPolicyDeniesApply(t *testing.T) {
	sim := newSim()
	s := openStack(t, sim, `
policy "freeze" {
  phase = "plan"
  when  = plan.creates > 0
  deny { message = "change freeze in effect" }
}
`)
	p, err := s.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Apply(context.Background(), p, cloudless.ApplyOptions{})
	var denied *cloudless.ErrPolicyDenied
	if !errorsAs(err, &denied) || !strings.Contains(denied.Message, "freeze") {
		t.Fatalf("err = %v", err)
	}
	// Nothing was created.
	if sim.TotalResources() != 0 {
		t.Error("denied apply still created resources")
	}
	// SkipPolicyCheck bypasses.
	if _, _, err := s.Apply(context.Background(), p, cloudless.ApplyOptions{SkipPolicyCheck: true}); err != nil {
		t.Fatal(err)
	}
}

func errorsAs(err error, target any) bool {
	if err == nil {
		return false
	}
	if t, ok := target.(**cloudless.ErrPolicyDenied); ok {
		if e, ok := err.(*cloudless.ErrPolicyDenied); ok {
			*t = e
			return true
		}
	}
	return false
}

func TestApplyProducesDiagnosesOnFailure(t *testing.T) {
	// Constraint violations reach the user as IaC-level diagnoses.
	sim := newSim()
	src := `
resource "aws_vpc" "a" {
  name       = "net"
  cidr_block = "10.0.0.0/16"
}
resource "aws_vpc" "b" {
  name       = "net"
  cidr_block = "10.1.0.0/16"
}
`
	s, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": src},
		Cloud:   sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, diagnoses, err := s.Apply(context.Background(), p, cloudless.ApplyOptions{})
	if err == nil {
		t.Fatal("duplicate names must fail at the cloud")
	}
	if len(diagnoses) != 1 {
		t.Fatalf("diagnoses = %+v", diagnoses)
	}
	if !strings.Contains(diagnoses[0].RootCause, "unique per region") {
		t.Errorf("root cause = %q", diagnoses[0].RootCause)
	}
}

func TestOpenValidatesOptions(t *testing.T) {
	if _, err := cloudless.Open(cloudless.Options{Sources: map[string]string{"m.ccl": ""}}); err == nil {
		t.Error("missing cloud accepted")
	}
	if _, err := cloudless.Open(cloudless.Options{Cloud: newSim()}); err == nil {
		t.Error("missing sources accepted")
	}
	if _, err := cloudless.Open(cloudless.Options{
		Cloud:   newSim(),
		Sources: map[string]string{"m.ccl": "resource \"aws_vpc\" {"},
	}); err == nil {
		t.Error("syntax errors accepted")
	}
}

func TestStackOverHTTP(t *testing.T) {
	// The whole facade also works against the cloud over a real network
	// path: HTTP server + client.
	sim := newSim()
	srv := cloud.NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil)))
	httpSrv := newHTTPServer(t, srv)
	client := cloud.NewClient(httpSrv, nil)

	s, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": stackConfig},
		Cloud:   client,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply(context.Background(), p, cloudless.ApplyOptions{}); err != nil {
		t.Fatalf("apply over HTTP: %s", err)
	}
	if sim.Count("aws_virtual_machine") != 2 {
		t.Errorf("VMs = %d", sim.Count("aws_virtual_machine"))
	}
}

func TestSensitiveOutputRedaction(t *testing.T) {
	sim := newSim()
	src := `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "eastus"
}
resource "azure_sql_server" "db" {
  name           = "db"
  admin_password = "s3cret!"
}
output "fqdn"     { value = azure_sql_server.db.fqdn }
output "password" {
  value     = azure_sql_server.db.id
  sensitive = true
}
`
	s, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": src},
		Cloud:   sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply(context.Background(), p, cloudless.ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	if !s.OutputIsSensitive("password") || s.OutputIsSensitive("fqdn") {
		t.Error("sensitivity flags wrong")
	}
	disp := s.DisplayOutputs()
	if disp["password"] != "(sensitive)" {
		t.Errorf("display password = %v", disp["password"])
	}
	if disp["fqdn"] == "(sensitive)" {
		t.Error("non-sensitive output redacted")
	}
	// The real value is still recorded for machine consumers.
	if s.Outputs()["password"] == "(sensitive)" {
		t.Error("raw output redacted in state")
	}
}
