package cloudless_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	cloudless "cloudless"
	"cloudless/internal/telemetry"
)

// TestTraceNeverContainsSecrets drives a full traced lifecycle with a
// sensitive resource attribute AND a sensitive output, exports the trace to
// disk, and proves the secret values appear nowhere in the file — only the
// redaction marker does.
func TestTraceNeverContainsSecrets(t *testing.T) {
	const attrSecret = "hunter2-attr-secret"
	src := `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "eastus"
}
resource "azure_sql_server" "db" {
  name           = "db"
  admin_password = "` + attrSecret + `"
}
output "fqdn"   { value = azure_sql_server.db.fqdn }
output "db_id" {
  value     = azure_sql_server.db.id
  sensitive = true
}
`
	rec := telemetry.NewRecorder(telemetry.Config{})
	s, err := cloudless.Open(cloudless.Options{
		Sources:   map[string]string{"main.ccl": src},
		Cloud:     newSim(),
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s.Validate()
	p, err := s.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := rec.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trace := string(data)

	if strings.Contains(trace, attrSecret) {
		t.Error("trace file leaks the sensitive resource attribute")
	}
	// The sensitive output's real value (the server id) must not appear as
	// an output attribute; it may legitimately appear as a resource id in
	// op spans, so check the output attr specifically.
	if !strings.Contains(trace, telemetry.Redacted) {
		t.Error("trace file contains no redaction marker at all")
	}
	tr, err := telemetry.ReadChromeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var checkedOutput, checkedAttr bool
	for _, ev := range tr.TraceEvents {
		if v, ok := ev.Args["output.db_id"]; ok {
			checkedOutput = true
			if v != telemetry.Redacted {
				t.Errorf("sensitive output recorded as %v", v)
			}
		}
		if v, ok := ev.Args["attr.admin_password"]; ok {
			checkedAttr = true
			if v != telemetry.Redacted {
				t.Errorf("sensitive attr recorded as %v", v)
			}
		}
		if v, ok := ev.Args["output.fqdn"]; ok && v == telemetry.Redacted {
			t.Error("non-sensitive output redacted")
		}
	}
	if !checkedOutput {
		t.Error("lifecycle span did not record the output attribute")
	}
	if !checkedAttr {
		t.Error("op span did not record the sensitive attribute")
	}

	// The lifecycle spans cover the run: validate, plan, and apply all
	// appear in the same trace.
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"lifecycle.validate", "lifecycle.plan", "lifecycle.apply", "apply.op", "plan.compute"} {
		if !names[want] {
			t.Errorf("trace missing %s span", want)
		}
	}
}
