package cloudless_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	cloudless "cloudless"
)

// TestStackCloseDrains is the draining-close regression test: Close must
// wait for in-flight lifecycle operations instead of yanking the engine out
// from under them, refuse operations arriving afterwards with the typed
// *ErrStackClosed, and stay idempotent. Run under -race this also proves the
// drain gate itself is data-race free.
func TestStackCloseDrains(t *testing.T) {
	sim := newSim()
	s := openStack(t, sim, "")
	ctx := context.Background()
	p, err := s.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]error, 10)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if i == 0 {
				_, _, results[i] = s.Apply(ctx, p, cloudless.ApplyOptions{})
				return
			}
			_, results[i] = s.Plan(ctx)
		}(i)
	}
	close(start)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	// Every racing op either completed before the drain finished or was
	// refused up front with the typed error — never a torn half-run.
	var closed *cloudless.ErrStackClosed
	for i, err := range results {
		if err != nil && !errors.As(err, &closed) {
			t.Errorf("op %d: unexpected error %v", i, err)
		}
	}

	// Post-close: typed refusals everywhere, and Close is idempotent.
	if _, err := s.Plan(ctx); !errors.As(err, &closed) {
		t.Fatalf("Plan after Close: got %v, want *ErrStackClosed", err)
	}
	if _, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{}); !errors.As(err, &closed) {
		t.Fatalf("Apply after Close: got %v, want *ErrStackClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.CloseContext(ctx); err != nil {
		t.Fatalf("CloseContext after Close: %v", err)
	}
}

// TestStackCloseContextHonorsDeadline: a Close with an already-expired
// context must not release resources out from under an in-flight op; it
// reports the deadline error while the operation keeps running, and a later
// unbounded Close finishes the drain.
func TestStackCloseContextHonorsDeadline(t *testing.T) {
	sim := newSim()
	s := openStack(t, sim, "")
	ctx := context.Background()
	p, err := s.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}

	applyStarted := make(chan struct{})
	applyDone := make(chan error, 1)
	go func() {
		_, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{
			OnEvent: func(e cloudless.Event) {
				if e.Kind == "apply.run_start" {
					close(applyStarted)
				}
			},
		})
		applyDone <- err
	}()
	<-applyStarted

	expired, cancel := context.WithCancel(ctx)
	cancel()
	if err := s.CloseContext(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("CloseContext(expired) = %v, want context.Canceled", err)
	}
	// The in-flight apply must still complete cleanly: its engine was not
	// released mid-run.
	if err := <-applyDone; err != nil {
		t.Fatalf("apply interrupted by timed-out close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
}
