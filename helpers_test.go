package cloudless_test

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// newHTTPServer wires an http.Handler into a test server and returns its URL.
func newHTTPServer(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}
