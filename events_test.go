package cloudless_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	cloudless "cloudless"
	"cloudless/internal/cloud"
	"cloudless/internal/events"
)

const eventsConfig = `
resource "aws_vpc" "main" {
  name       = "ev"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "app" {
  name       = "ev-app"
  vpc_id     = aws_vpc.main.id
  cidr_block = "10.0.1.0/24"
}
`

func openEventStack(t *testing.T, journal string) *cloudless.Stack {
	t.Helper()
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0 // instant cloud
	s, err := cloudless.Open(cloudless.Options{
		Sources:     map[string]string{"main.ccl": eventsConfig},
		Cloud:       cloud.NewSim(opts),
		JournalPath: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func applyOnce(t *testing.T, s *cloudless.Stack, opts cloudless.ApplyOptions) {
	t.Helper()
	p, err := s.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeSeesApplyLifecycle asserts the facade's live event stream
// carries the full apply lifecycle, in order, with monotonic sequence
// numbers.
func TestSubscribeSeesApplyLifecycle(t *testing.T) {
	s := openEventStack(t, "")
	sub := s.Subscribe(cloudless.EventFilter{Kinds: []string{"apply."}})
	defer sub.Close()

	applyOnce(t, s, cloudless.ApplyOptions{})

	var kinds []string
	lastSeq := int64(0)
	collect := true
	for collect {
		select {
		case e := <-sub.C():
			if e.Seq <= lastSeq {
				t.Fatalf("seq went backwards: %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			kinds = append(kinds, e.Kind)
			if e.Kind == "apply.run_finish" {
				collect = false
			}
		default:
			collect = false
		}
	}

	if len(kinds) == 0 || kinds[0] != "apply.run_start" {
		t.Fatalf("first event = %v, want apply.run_start (all: %v)", kinds, kinds)
	}
	if kinds[len(kinds)-1] != "apply.run_finish" {
		t.Fatalf("last event = %s, want apply.run_finish", kinds[len(kinds)-1])
	}
	count := map[string]int{}
	for _, k := range kinds {
		count[k]++
	}
	if count["apply.wave_start"] != 1 || count["apply.wave_finish"] != 1 {
		t.Fatalf("wave events = %v", count)
	}
	// Two resources: two begins, two dones, zero fails.
	if count["apply.op_begin"] != 2 || count["apply.op_done"] != 2 || count["apply.op_fail"] != 0 {
		t.Fatalf("op events = %v", count)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d events on an idle subscriber", sub.Dropped())
	}
}

// TestOnEventCallbackSeesWholeRun asserts ApplyOptions.OnEvent observes the
// complete run — Apply drains the pump before returning.
func TestOnEventCallbackSeesWholeRun(t *testing.T) {
	s := openEventStack(t, "")
	var mu sync.Mutex
	var kinds []string
	applyOnce(t, s, cloudless.ApplyOptions{OnEvent: func(e cloudless.Event) {
		mu.Lock()
		kinds = append(kinds, e.Kind)
		mu.Unlock()
	}})
	mu.Lock()
	defer mu.Unlock()
	want := map[string]bool{"apply.run_start": false, "apply.op_done": false,
		"apply.run_finish": false, "provider.stats": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("OnEvent never saw %s (got %v)", k, kinds)
		}
	}
}

// TestFlightRecorderArtifact asserts a journaled stack leaves a readable
// JSONL event artifact next to the journal covering the last run.
func TestFlightRecorderArtifact(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	s := openEventStack(t, journal)
	applyOnce(t, s, cloudless.ApplyOptions{})

	path := s.FlightRecorderPath()
	if path != journal+".events.jsonl" {
		t.Fatalf("flight path = %q", path)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := events.ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("flight log empty")
	}
	if evs[0].Kind != "apply.run_start" {
		t.Fatalf("flight log starts with %s, want apply.run_start", evs[0].Kind)
	}
	sawFinish := false
	for _, e := range evs {
		if e.Kind == "apply.run_finish" {
			sawFinish = true
		}
	}
	if !sawFinish {
		t.Fatal("flight log missing apply.run_finish")
	}
}

// TestDriftEventsOnBus asserts out-of-band change shows up as
// drift.detected events on the stack bus.
func TestDriftEventsOnBus(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0
	sim := cloud.NewSim(opts)
	s, err := cloudless.Open(cloudless.Options{
		Sources: map[string]string{"main.ccl": eventsConfig},
		Cloud:   sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applyOnce(t, s, cloudless.ApplyOptions{})

	sub := s.Subscribe(cloudless.EventFilter{Kinds: []string{"drift.detected"}})
	defer sub.Close()

	// Out-of-band delete by another principal.
	st := s.DB().Snapshot()
	rs := st.Get("aws_subnet.app")
	if rs == nil {
		t.Fatal("subnet not in state")
	}
	if err := sim.Delete(context.Background(), rs.Type, rs.ID, "intruder"); err != nil {
		t.Fatal(err)
	}
	rep, err := s.WatchDrift(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasDrift() {
		t.Fatal("expected drift")
	}
	select {
	case e := <-sub.C():
		if e.Kind != "drift.detected" || e.Action != "deleted" || e.Principal != "intruder" {
			t.Fatalf("drift event = %+v", e)
		}
	default:
		t.Fatal("no drift.detected event on bus")
	}
}
