package cloudless_test

// Facade-level crash safety: a stack opened with JournalPath journals every
// apply; a crash mid-apply leaves a journal that the next stack (same cloud,
// same state) recovers automatically at Plan time, converging to exactly the
// desired resources.

import (
	"context"
	"path/filepath"
	"testing"

	cloudless "cloudless"
	"cloudless/internal/cloud"
)

func openJournaled(t *testing.T, sim cloud.Interface, journalPath string, initial *cloudless.State) *cloudless.Stack {
	t.Helper()
	s, err := cloudless.Open(cloudless.Options{
		Sources:      map[string]string{"main.ccl": stackConfig},
		Cloud:        sim,
		JournalPath:  journalPath,
		InitialState: initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStackJournalDiscardedAfterCleanApply(t *testing.T) {
	sim := newSim()
	journalPath := filepath.Join(t.TempDir(), "apply.journal")
	s := openJournaled(t, sim, journalPath, nil)
	defer s.Close()
	ctx := context.Background()

	p, err := s.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
		t.Fatalf("apply: %s", err)
	}
	if s.HasStaleJournal() {
		t.Error("journal survived a clean apply")
	}
}

func TestStackCrashMidApplyRecoversOnNextPlan(t *testing.T) {
	sim := newSim()
	journalPath := filepath.Join(t.TempDir(), "apply.journal")
	ctx := context.Background()

	// First "process": crash after the 3rd mutating op lands (its response
	// is lost, leaving the op in doubt).
	s1 := openJournaled(t, sim, journalPath, nil)
	p, err := s1.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	applyCtx, cancel := context.WithCancel(ctx)
	sim.InjectCrash(cloud.CrashAfterOp, 3, cancel)
	_, _, err = s1.Apply(applyCtx, p, cloudless.ApplyOptions{})
	sim.ClearCrash()
	cancel()
	if err == nil {
		t.Fatal("apply succeeded despite injected crash")
	}
	if !s1.HasStaleJournal() {
		t.Fatal("no journal left behind by the crashed apply")
	}
	// The crashed process's partial commit is its surviving state file.
	survived := s1.DB().Snapshot()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second "process": a plain Plan auto-recovers the journal first, then
	// a normal apply finishes the run.
	s2 := openJournaled(t, sim, journalPath, survived)
	defer s2.Close()
	if !s2.HasStaleJournal() {
		t.Fatal("stale journal not visible to the restarted stack")
	}
	p2, err := s2.Plan(ctx)
	if err != nil {
		t.Fatalf("plan with stale journal: %s", err)
	}
	if s2.HasStaleJournal() {
		t.Error("plan did not recover the stale journal")
	}
	if p2.PendingCount() > 0 {
		if _, _, err := s2.Apply(ctx, p2, cloudless.ApplyOptions{}); err != nil {
			t.Fatalf("continuation apply: %s", err)
		}
	}

	// Converged: cloud and state agree exactly, and re-planning is a noop.
	final := s2.DB().Snapshot()
	if got := sim.TotalResources(); got != final.Len() {
		t.Errorf("cloud holds %d resources, state %d", got, final.Len())
	}
	for _, addr := range final.Addrs() {
		rs := final.Get(addr)
		if _, err := sim.Get(ctx, rs.Type, rs.ID); err != nil {
			t.Errorf("state entry %s missing from cloud: %s", addr, err)
		}
	}
	p3, err := s2.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p3.PendingCount() != 0 {
		t.Errorf("re-plan has %d pending changes, want 0", p3.PendingCount())
	}
}

func TestStackApplyWithStaleJournalReturnsTypedError(t *testing.T) {
	sim := newSim()
	journalPath := filepath.Join(t.TempDir(), "apply.journal")
	ctx := context.Background()

	s1 := openJournaled(t, sim, journalPath, nil)
	p, err := s1.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	applyCtx, cancel := context.WithCancel(ctx)
	sim.InjectCrash(cloud.CrashBeforeOp, 2, cancel)
	_, _, _ = s1.Apply(applyCtx, p, cloudless.ApplyOptions{})
	sim.ClearCrash()
	cancel()
	survived := s1.DB().Snapshot()
	s1.Close()

	// Feeding the stale plan straight into Apply on a fresh stack recovers
	// first and demands a re-plan instead of double-applying.
	s2 := openJournaled(t, sim, journalPath, survived)
	defer s2.Close()
	_, _, err = s2.Apply(ctx, p, cloudless.ApplyOptions{})
	if _, ok := err.(*cloudless.ErrJournalRecovered); !ok {
		t.Fatalf("err = %v, want *ErrJournalRecovered", err)
	}
	if s2.HasStaleJournal() {
		t.Error("apply did not recover the stale journal")
	}
	p2, err := s2.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PendingCount() > 0 {
		if _, _, err := s2.Apply(ctx, p2, cloudless.ApplyOptions{}); err != nil {
			t.Fatalf("re-planned apply: %s", err)
		}
	}
	if got, want := sim.TotalResources(), s2.DB().Snapshot().Len(); got != want {
		t.Errorf("cloud holds %d resources, state %d", got, want)
	}
}
