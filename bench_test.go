// Benchmarks E1–E10: one per experiment in DESIGN.md's experiment index.
// Each benchmark exercises the cloudless mechanism against the baseline the
// paper criticizes; cmd/benchharness prints the corresponding tables with
// full parameter sweeps.
package cloudless_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/policy"
	"cloudless/internal/port"
	"cloudless/internal/rollback"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
	"cloudless/internal/validate"
	"cloudless/internal/workload"
)

func mustExpand(b *testing.B, files map[string]string) *config.Expansion {
	b.Helper()
	m, diags := config.Load(files)
	if diags.HasErrors() {
		b.Fatal(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		b.Fatal(diags.Error())
	}
	return ex
}

func mustPlan(b *testing.B, ex *config.Expansion, prior *state.State, opts plan.Options) *plan.Plan {
	b.Helper()
	p, diags := plan.Compute(context.Background(), ex, prior, opts)
	if diags.HasErrors() {
		b.Fatal(diags.Error())
	}
	return p
}

func benchSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

// deployWorkload applies a workload to a fresh sim and returns sim + state.
func deployWorkload(b *testing.B, files map[string]string) (*cloud.Sim, *state.State, *config.Expansion) {
	b.Helper()
	sim := benchSim()
	ex := mustExpand(b, files)
	p := mustPlan(b, ex, state.New(), plan.Options{})
	res := apply.Apply(context.Background(), sim, p, apply.Options{Principal: "cloudless"})
	if err := res.Err(); err != nil {
		b.Fatal(err)
	}
	return sim, res.State, ex
}

// BenchmarkE1Deployment measures simulated deployment makespan of a 100-
// resource web topology: sequential baseline vs parallel walks. The metric
// reported is simulated seconds (from the latency model), not wall time.
func BenchmarkE1Deployment(b *testing.B) {
	ex := mustExpand(b, workload.WebTier("web", 4, 40))
	p := mustPlan(b, ex, state.New(), plan.Options{})
	cases := []struct {
		name  string
		conc  int
		sched apply.Scheduler
	}{
		{"sequential", 1, apply.FIFOScheduler},
		{"baseline-fifo-10", 10, apply.FIFOScheduler},
		{"cloudless-cp-10", 10, apply.CriticalPathScheduler},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				res, err := apply.SimulateSchedule(p.Graph, p.Costs(), c.conc, c.sched)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(makespan.Seconds(), "simulated-sec")
		})
	}
}

// BenchmarkE2Scheduling measures FIFO vs critical-path-first on the skewed
// topology under tight concurrency.
func BenchmarkE2Scheduling(b *testing.B) {
	ex := mustExpand(b, workload.SkewedLatency(24))
	p := mustPlan(b, ex, state.New(), plan.Options{})
	for _, sched := range []apply.Scheduler{apply.FIFOScheduler, apply.CriticalPathScheduler} {
		b.Run(sched.String(), func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				res, err := apply.SimulateSchedule(p.Graph, p.Costs(), 2, sched)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(makespan.Seconds(), "simulated-sec")
		})
	}
}

// BenchmarkE3Incremental compares full replan (refresh everything, evaluate
// everything) with impact-scope incremental planning for a 1-resource delta.
func BenchmarkE3Incremental(b *testing.B) {
	files := workload.WebTier("web", 4, 60)
	sim, st, _ := deployWorkload(b, files)
	// Delta: the configuration renames the VMs (a one-resource change).
	files["web.ccl"] = strings.Replace(files["web.ccl"],
		`name    = "web-web-${count.index}"`,
		`name    = "web-web-v2-${count.index}"`, 1)
	ex := mustExpand(b, files)

	b.Run("baseline-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := mustPlan(b, ex, st, plan.Options{Refresh: true, Cloud: sim})
			if p.Updates != 60 {
				b.Fatalf("plan: %s", p.Summary())
			}
			b.ReportMetric(float64(p.RefreshReads), "refresh-reads")
			b.ReportMetric(float64(p.EvaluatedInstances), "evaluated")
		}
	})
	b.Run("cloudless-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := mustPlan(b, ex, st, plan.Options{
				Refresh: true, Cloud: sim,
				ImpactScope: []string{"aws_virtual_machine.web"},
			})
			if p.Updates != 60 {
				b.Fatalf("plan: %s", p.Summary())
			}
			b.ReportMetric(float64(p.RefreshReads), "refresh-reads")
			b.ReportMetric(float64(p.EvaluatedInstances), "evaluated")
		}
	})
}

// BenchmarkE4Locking measures concurrent disjoint team updates under the
// global lock vs per-resource locks.
func BenchmarkE4Locking(b *testing.B) {
	const teams = 8
	work := 2 * time.Millisecond
	seed := func() *state.State {
		st := state.New()
		for t := 0; t < teams; t++ {
			addr := fmt.Sprintf("aws_storage_bucket.t%d", t)
			st.Set(&state.ResourceState{Addr: addr, Type: "aws_storage_bucket",
				ID: fmt.Sprintf("b%d", t), Attrs: map[string]eval.Value{"n": eval.Int(0)}})
		}
		return st
	}
	for _, mode := range []statedb.LockMode{statedb.GlobalLock, statedb.ResourceLock} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := statedb.Open(seed(), mode)
				done := make(chan error, teams)
				for t := 0; t < teams; t++ {
					go func(team int) {
						txn := db.Begin("bench")
						addr := fmt.Sprintf("aws_storage_bucket.t%d", team)
						if err := txn.Lock(context.Background(), addr); err != nil {
							done <- err
							return
						}
						time.Sleep(work)
						rs, _ := txn.Get(addr)
						rs.Attrs["n"] = eval.Int(rs.Attr("n").AsInt() + 1)
						_ = txn.Put(rs)
						_, err := txn.Commit()
						done <- err
					}(t)
				}
				for t := 0; t < teams; t++ {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE5Transactions measures transaction commit throughput under
// contention on a single hot resource.
func BenchmarkE5Transactions(b *testing.B) {
	st := state.New()
	st.Set(&state.ResourceState{Addr: "aws_storage_bucket.hot", Type: "aws_storage_bucket",
		ID: "hot", Attrs: map[string]eval.Value{"n": eval.Int(0)}})
	db := statedb.Open(st, statedb.ResourceLock)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			txn := db.Begin("inc")
			if err := txn.Lock(context.Background(), "aws_storage_bucket.hot"); err != nil {
				b.Fatal(err)
			}
			rs, _ := txn.Get("aws_storage_bucket.hot")
			rs.Attrs["n"] = eval.Int(rs.Attr("n").AsInt() + 1)
			_ = txn.Put(rs)
			if _, err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// invalidAzureConfig seeds the paper's region-mismatch violation.
const invalidAzureConfig = `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "westus"
}
resource "azure_virtual_network" "v" {
  name           = "v"
  location       = "westus"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}
resource "azure_subnet" "s" {
  virtual_network_id = azure_virtual_network.v.id
  address_prefix     = "10.0.1.0/24"
  location           = "westus"
}
resource "azure_network_interface" "nic" {
  name      = "nic"
  location  = "westus"
  subnet_id = azure_subnet.s.id
}
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "eastus"
  nic_ids  = [azure_network_interface.nic.id]
}
`

// BenchmarkE6Validation measures the cost of catching a cloud-level
// violation at compile time (cloudless validate) vs at deploy time
// (baseline: plan + apply until the cloud errors out).
func BenchmarkE6Validation(b *testing.B) {
	ex := mustExpand(b, map[string]string{"main.ccl": invalidAzureConfig})
	b.Run("cloudless-compile-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := validate.Validate(ex, nil)
			if !res.HasErrors() {
				b.Fatal("violation not caught")
			}
		}
		b.ReportMetric(0, "api-calls")
	})
	b.Run("baseline-deploy-time", func(b *testing.B) {
		var calls float64
		for i := 0; i < b.N; i++ {
			sim := benchSim()
			p := mustPlan(b, ex, state.New(), plan.Options{})
			res := apply.Apply(context.Background(), sim, p, apply.Options{
				ContinueOnError: true, MaxRetries: 1,
			})
			if res.Err() == nil {
				b.Fatal("deploy should fail")
			}
			calls = float64(sim.Metrics().Calls)
		}
		b.ReportMetric(calls, "api-calls")
	})
}

// BenchmarkE7Drift compares full-scan vs activity-log drift detection on a
// deployed fleet with one drift event.
func BenchmarkE7Drift(b *testing.B) {
	sim, st, _ := deployWorkload(b, workload.Microservices(8, 3))
	ctx := context.Background()
	vpc := st.Get("aws_vpc.mesh")
	w := drift.NewWatcher(sim, "cloudless", sim.LastSeq())
	seq := 0
	driftOnce := func() {
		seq++
		_, err := sim.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: vpc.ID,
			Attrs: map[string]eval.Value{"name": eval.String(fmt.Sprintf("rogue-%d", seq))}, Principal: "rogue"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("full-scan", func(b *testing.B) {
		var calls float64
		for i := 0; i < b.N; i++ {
			driftOnce()
			rep, err := drift.FullScan(ctx, sim, st)
			if err != nil || !rep.HasDrift() {
				b.Fatalf("%v %v", rep, err)
			}
			calls = float64(rep.APICalls)
		}
		b.ReportMetric(calls, "api-calls")
	})
	b.Run("activity-log", func(b *testing.B) {
		var calls float64
		for i := 0; i < b.N; i++ {
			driftOnce()
			rep, err := w.Poll(ctx, st)
			if err != nil || !rep.HasDrift() {
				b.Fatalf("%v %v", rep, err)
			}
			calls = float64(rep.APICalls)
		}
		b.ReportMetric(calls, "api-calls")
	})
}

// BenchmarkE8Rollback compares the minimal rollback planner with the
// destroy-everything baseline on a mostly-reversible change set.
func BenchmarkE8Rollback(b *testing.B) {
	_, st, _ := deployWorkload(b, workload.WebTier("web", 4, 30))
	target := st.Clone()
	// 10 reversible changes + 1 irreversible leaf change (a VM image).
	for i := 0; i < 10; i++ {
		st.Get(fmt.Sprintf("aws_virtual_machine.web[%d]", i)).Attrs["name"] = eval.String(fmt.Sprintf("tmp-%d", i))
	}
	st.Get("aws_virtual_machine.web[11]").Attrs["image"] = eval.String("ami-experimental")

	b.Run("cloudless-minimal", func(b *testing.B) {
		var redeploys float64
		for i := 0; i < b.N; i++ {
			p := rollback.Compute(st, target)
			redeploys = float64(p.Redeployments)
		}
		b.ReportMetric(redeploys, "redeployments")
	})
	b.Run("baseline-destroy-all", func(b *testing.B) {
		// The naive rollback redeploys every resource in the target.
		b.ReportMetric(float64(target.Len()), "redeployments")
		for i := 0; i < b.N; i++ {
			_ = target.Len()
		}
	})
}

// BenchmarkE9Porting measures import + optimization of a 64-NIC fleet and
// reports the compaction achieved.
func BenchmarkE9Porting(b *testing.B) {
	sim := benchSim()
	ctx := context.Background()
	vpc, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("legacy"), "cidr_block": eval.String("10.0.0.0/16")}})
	if err != nil {
		b.Fatal(err)
	}
	sub, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
		Attrs: map[string]eval.Value{"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("10.0.1.0/24")}})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_network_interface", Region: "us-east-1",
			Attrs: map[string]eval.Value{
				"name":      eval.String(fmt.Sprintf("fleet-nic-%d", i)),
				"subnet_id": eval.String(sub.ID),
			}}); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []struct {
		name string
		opts port.ImportOptions
	}{
		{"naive", port.ImportOptions{}},
		{"optimized", port.ImportOptions{Optimize: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var m port.QualityMetrics
			for i := 0; i < b.N; i++ {
				res, err := port.Import(ctx, sim, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				m = res.Metrics
			}
			b.ReportMetric(float64(m.Lines), "loc")
			b.ReportMetric(m.CompactionRatio, "compaction-x")
		})
	}
}

// BenchmarkE10Policy measures the policy controller's observation→decision
// round trip.
func BenchmarkE10Policy(b *testing.B) {
	ps, diags := policy.ParsePolicies("p.ccl", `
policy "scale" {
  phase = "operate"
  when  = metric.load > 0.8 && var.n < 100
  scale {
    variable = "n"
    delta    = 1
    max      = 1000000
  }
}
`)
	if diags.HasErrors() {
		b.Fatal(diags.Error())
	}
	eng := policy.NewEngine(ps)
	eng.Vars["n"] = eval.Int(1)
	metrics := map[string]eval.Value{"load": eval.Number(0.9)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, diags := eng.Observe(metrics); diags.HasErrors() {
			b.Fatal(diags.Error())
		}
	}
}
