package cloudless_test

import (
	"context"
	"errors"
	"os"
	"testing"

	cloudless "cloudless"
	"cloudless/internal/cloud"
	"cloudless/internal/statedb"
)

// openStackOn opens the shared test stack on a specific storage backend.
func openStackOn(t *testing.T, sim cloud.Interface, backend, stateDir string) *cloudless.Stack {
	t.Helper()
	s, err := cloudless.Open(cloudless.Options{
		Sources:      map[string]string{"main.ccl": stackConfig},
		Cloud:        sim,
		StateBackend: backend,
		StateDir:     stateDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestMVCCPlanDuringApply is the acceptance test for the mvcc backend: a
// plan started while an apply is in flight returns results consistent with
// the pre-apply serial — and keeps doing so after the apply commits, because
// the backend retains the pinned version.
func TestMVCCPlanDuringApply(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	// Real latency so the scale-out apply stays in flight long enough for
	// concurrent plans to overlap it (15s modeled VM create -> ~7.5ms).
	opts.TimeScale = 0.0005
	sim := cloud.NewSim(opts)
	ctx := context.Background()
	s := openStackOn(t, sim, cloudless.BackendMVCC, "")

	// Deploy the initial 2-VM stack.
	p, err := s.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	preSerial := s.DB().Serial()
	preLen := s.DB().Snapshot().Len()
	if preLen != 6 {
		t.Fatalf("deployed resources = %d, want 6", preLen)
	}

	// Scale out 2 -> 4 VMs and start the apply in the background.
	if err := s.SetVar("vm_count", 4); err != nil {
		t.Fatal(err)
	}
	scaleOut, err := s.PlanOffline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if scaleOut.BaseSerial != preSerial {
		t.Fatalf("scale-out plan base = %d, want %d", scaleOut.BaseSerial, preSerial)
	}
	if scaleOut.Creates != 4 { // 2 NICs + 2 VMs
		t.Fatalf("scale-out plan: %s", scaleOut.Summary())
	}
	applyDone := make(chan error, 1)
	go func() {
		_, _, err := s.Apply(ctx, scaleOut, cloudless.ApplyOptions{})
		applyDone <- err
	}()

	// While the apply is in flight, keep planning against the pre-apply
	// serial. Every such plan must describe the pre-apply world: 4 creates
	// pending, nothing from the concurrent apply visible.
	concurrent := 0
	var lastConcurrent *cloudless.Plan
loop:
	for {
		select {
		case err := <-applyDone:
			if err != nil {
				t.Fatal(err)
			}
			break loop
		default:
		}
		inFlight := s.DB().Serial() == preSerial // apply has not committed yet
		cp, err := s.PlanOfflineAt(ctx, preSerial)
		if err != nil {
			t.Fatal(err)
		}
		if cp.BaseSerial != preSerial {
			t.Fatalf("concurrent plan base = %d, want %d", cp.BaseSerial, preSerial)
		}
		if cp.Creates != 4 || cp.Updates != 0 || cp.Deletes != 0 {
			t.Fatalf("concurrent plan inconsistent with pre-apply serial: %s", cp.Summary())
		}
		if inFlight {
			concurrent++
			lastConcurrent = cp
		}
	}
	if concurrent == 0 {
		t.Fatal("no plan overlapped the in-flight apply; raise the sim TimeScale")
	}
	t.Logf("%d plans completed while the apply was in flight", concurrent)

	// The apply committed: latest state moved on, but the pinned serial
	// still answers with the pre-apply world.
	if s.DB().Serial() <= preSerial {
		t.Fatalf("apply did not advance the serial (still %d)", s.DB().Serial())
	}
	if got := s.DB().Snapshot().Len(); got != 10 {
		t.Errorf("post-apply resources = %d, want 10", got)
	}
	old, err := s.DB().SnapshotAt(preSerial)
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != preLen || old.Serial != preSerial {
		t.Errorf("pinned snapshot len=%d serial=%d, want %d and %d", old.Len(), old.Serial, preLen, preSerial)
	}
	post, err := s.PlanOfflineAt(ctx, preSerial)
	if err != nil {
		t.Fatal(err)
	}
	if post.Creates != 4 {
		t.Errorf("post-apply pinned plan: %s, want 4 creates", post.Summary())
	}
	fresh, err := s.PlanOffline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.PendingCount() != 0 {
		t.Errorf("latest-serial plan not converged: %s", fresh.Summary())
	}

	// Applying a plan pinned before the apply must abort with the typed
	// stale-base conflict instead of clobbering the committed scale-out.
	_, _, err = s.Apply(ctx, lastConcurrent, cloudless.ApplyOptions{})
	var stale *cloudless.StaleBaseError
	if !errors.As(err, &stale) {
		t.Fatalf("stale apply error = %v, want *StaleBaseError", err)
	}
	if stale.Base != preSerial {
		t.Errorf("conflict base = %d, want %d", stale.Base, preSerial)
	}
	// The committed world is untouched by the aborted apply's state commit.
	if got := s.DB().Snapshot().Len(); got != 10 {
		t.Errorf("resources after aborted stale apply = %d, want 10", got)
	}
}

// TestStackLifecycleOnEveryBackend runs plan/apply/destroy on each storage
// backend (or just $CLOUDLESS_STATE_BACKEND under the CI matrix) to prove the
// facade is backend-agnostic.
func TestStackLifecycleOnEveryBackend(t *testing.T) {
	backends := statedb.Backends()
	if b := os.Getenv("CLOUDLESS_STATE_BACKEND"); b != "" {
		backends = []string{b}
	}
	for _, backend := range backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			ctx := context.Background()
			dir := ""
			if backend == cloudless.BackendWAL {
				dir = t.TempDir()
			}
			s := openStackOn(t, newSim(), backend, dir)
			if got := s.DB().Backend(); got != backend {
				t.Fatalf("backend = %q, want %q", got, backend)
			}
			p, err := s.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
				t.Fatal(err)
			}
			if got := len(s.Outputs()["vm_ids"].([]any)); got != 2 {
				t.Errorf("vm_ids = %d, want 2", got)
			}
			p2, err := s.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if p2.PendingCount() != 0 {
				t.Errorf("re-plan not converged: %s", p2.Summary())
			}
			serial := s.DB().Serial()

			if backend == cloudless.BackendWAL {
				// Durability: close, reopen on the same directory with no
				// initial state, and the golden state must be back.
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				re := openStackOn(t, s.Cloud(), backend, dir)
				if re.DB().Serial() != serial {
					t.Fatalf("reopened serial = %d, want %d", re.DB().Serial(), serial)
				}
				if re.DB().Snapshot().Len() != 6 {
					t.Fatalf("reopened resources = %d, want 6", re.DB().Snapshot().Len())
				}
				rp, err := re.PlanOffline(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if rp.PendingCount() != 0 {
					t.Errorf("plan after crash-free reopen: %s", rp.Summary())
				}
				s = re
			}

			if _, err := s.Destroy(ctx); err != nil {
				t.Fatal(err)
			}
			if s.DB().Snapshot().Len() != 0 {
				t.Errorf("state not emptied by destroy")
			}
		})
	}
}
