package cloudless_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/eval"
	"cloudless/internal/graph"
	"cloudless/internal/hcl"
	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/workload"
)

// Ablation benchmarks: per-component costs behind the end-to-end numbers,
// answering "where does plan/apply time go" for the design choices DESIGN.md
// calls out (expression re-evaluation at apply, scope assembly, executor
// overhead, in-proc vs HTTP cloud path).

func BenchmarkAblationParse(b *testing.B) {
	src := workload.WebTier("web", 4, 40)["web.ccl"]
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, diags := hcl.Parse("bench.ccl", src)
		if diags.HasErrors() {
			b.Fatal(diags.Error())
		}
	}
}

func BenchmarkAblationEvalExpression(b *testing.B) {
	expr, diags := hcl.ParseExpression("e.ccl",
		`join("-", [for z in var.zones : upper(z) if z != ""]) + "-" + cidrsubnet(var.base, 8, var.n)`)
	if diags.HasErrors() {
		b.Fatal(diags.Error())
	}
	ctx := eval.NewContext()
	ctx.Variables["var"] = eval.Object(map[string]eval.Value{
		"zones": eval.Strings("us-east-1a", "us-east-1b", "us-east-1c"),
		"base":  eval.String("10.0.0.0/16"),
		"n":     eval.Int(3),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, diags := eval.Evaluate(expr, ctx); diags.HasErrors() {
			b.Fatal(diags.Error())
		}
	}
}

// BenchmarkAblationScopeBuild measures ValueStore.ScopeFor, the O(instances)
// scope assembly performed per evaluated attribute set.
func BenchmarkAblationScopeBuild(b *testing.B) {
	for _, vms := range []int{25, 100, 400} {
		b.Run(fmt.Sprintf("n%d", vms), func(b *testing.B) {
			ex := expandFilesB(b, workload.WebTier("web", 4, vms))
			vs := plan.NewValueStore(ex)
			inst := ex.ByAddr["aws_load_balancer.web"]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = vs.ScopeFor(inst)
			}
		})
	}
}

// BenchmarkAblationWalkOverhead: the concurrent executor's bookkeeping cost
// per node (no-op callbacks).
func BenchmarkAblationWalkOverhead(b *testing.B) {
	g := graph.New()
	for i := 0; i < 500; i++ {
		g.AddNode(fmt.Sprintf("n%03d", i))
		if i > 0 {
			_ = g.AddEdge(fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", i-1))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report := g.Walk(context.Background(), graph.WalkOptions{Concurrency: 8},
			func(string) error { return nil })
		if report.Err() != nil {
			b.Fatal(report.Err())
		}
	}
}

// BenchmarkAblationScheduleSim: the analytic scheduler on the same graph —
// the cost of predicting a deployment without running it.
func BenchmarkAblationScheduleSim(b *testing.B) {
	ex := expandFilesB(b, workload.WebTier("web", 4, 100))
	p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		b.Fatal(diags.Error())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := apply.SimulateSchedule(p.Graph, p.Costs(), 10, apply.CriticalPathScheduler); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCloudPath compares the in-process cloud call with the
// full HTTP round trip (encode, TCP, decode).
func BenchmarkAblationCloudPath(b *testing.B) {
	sim := benchSim()
	ctx := context.Background()
	vpc, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
		Attrs: map[string]eval.Value{"name": eval.String("x"), "cidr_block": eval.String("10.0.0.0/16")}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("in-process", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Get(ctx, "aws_vpc", vpc.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		srv := httptest.NewServer(cloud.NewServer(sim, slog.New(slog.NewTextHandler(io.Discard, nil))))
		defer srv.Close()
		client := cloud.NewClient(srv.URL, srv.Client())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Get(ctx, "aws_vpc", vpc.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPlanEndToEnd: full plan computation across sizes.
func BenchmarkAblationPlanEndToEnd(b *testing.B) {
	for _, vms := range []int{25, 100} {
		b.Run(fmt.Sprintf("n%d", vms), func(b *testing.B) {
			ex := expandFilesB(b, workload.WebTier("web", 4, vms))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, diags := plan.Compute(context.Background(), ex, state.New(), plan.Options{})
				if diags.HasErrors() || p.Creates == 0 {
					b.Fatal("bad plan")
				}
			}
		})
	}
}

func expandFilesB(b *testing.B, files map[string]string) *config.Expansion {
	b.Helper()
	return mustExpand(b, files)
}
