package cloudless_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end to end, guarding the
// documented entry points against regressions. Each example is expected to
// exit 0 within the timeout.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least 3 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %s\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan error, 1)
			var out strings.Builder
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example failed: %s\n%s", err, out.String())
				}
			case <-time.After(60 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("example timed out\n%s", out.String())
			}
			if out.Len() == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
