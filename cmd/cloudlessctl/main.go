// Command cloudlessctl is the Cloudless command-line interface: the Figure 1
// lifecycle as subcommands.
//
//	cloudlessctl validate  -dir ./infra
//	cloudlessctl plan      -dir ./infra -state cloudless.state.json [-cloud URL]
//	cloudlessctl apply     -dir ./infra -state cloudless.state.json [-target addr]...
//	cloudlessctl apply     -dir ./infra -guard -canary 0.2 -max-failures 3
//	cloudlessctl apply     -dir ./infra -watch
//	cloudlessctl tail      -cloud http://host:8080 [-since 42]
//	cloudlessctl destroy   -state cloudless.state.json
//	cloudlessctl drift     -state cloudless.state.json [-scan]
//	cloudlessctl import    -out ./imported [-modules]
//	cloudlessctl synth     -template web-service -name shop -out ./generated
//
// With no -cloud URL an in-process simulator is used (handy for demos); with
// -cloud, any cloudsim server works.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	cloudless "cloudless"
	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/plan"
	"cloudless/internal/port"
	"cloudless/internal/provider"
	"cloudless/internal/rollback"
	"cloudless/internal/state"
	"cloudless/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = cmdValidate(args)
	case "plan":
		err = cmdPlanApply(args, false)
	case "apply":
		err = cmdPlanApply(args, true)
	case "destroy":
		err = cmdDestroy(args)
	case "drift":
		err = cmdDrift(args)
	case "tail":
		err = cmdTail(args)
	case "import":
		err = cmdImport(args)
	case "synth":
		err = cmdSynth(args)
	case "history":
		err = cmdHistory(args)
	case "rollback":
		err = cmdRollback(args)
	case "recover":
		err = cmdRecover(args)
	case "metrics":
		err = cmdMetrics(args)
	case "workspaces":
		err = cmdWorkspaces(args)
	case "reconcile":
		err = cmdReconcile(args)
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cloudlessctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cloudlessctl: %s\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `cloudlessctl <command> [flags]

Commands:
  validate   compile-time validation (schema, semantic types, cloud constraints)
  plan       compute an execution plan
  apply      plan and apply (-guard health-gates it; -canary 0.2 canaries a fifth first;
             -watch streams live per-op progress, gate results, and rollbacks)
  destroy    delete everything in the state
  drift      detect out-of-band changes (activity log; -scan for full scan)
  tail       follow a cloud endpoint's activity log live (long-poll; -since resumes)
  import     port existing cloud resources to a CCL program + state
  synth      generate a CCL program from a template
  history    list state snapshots in the time machine (-history dir)
  rollback   roll back to a snapshot with minimal redeployment (-to serial)
  recover    reconcile a crashed run's journal (<state>.journal) with the cloud
  metrics    summarize a trace file written with -trace-out (-prom for Prometheus text)
  workspaces list/create/delete workspaces on a cloudlessd server (-server URL)
  reconcile  manage a hosted workspace's self-healing converge loop
             (on/off/status/watch; -server URL -workspace name)

Lifecycle commands accept -trace-out <file> to record a Chrome/Perfetto
trace of the run (open at https://ui.perfetto.dev or chrome://tracing).

Remote mode: plan, apply, drift, recover, and tail accept
-server <url> -workspace <name> [-token <tok>] to run against a workspace
hosted by cloudlessd instead of a local state file.
`)
}

// commonFlags wires the flags shared by lifecycle commands.
type commonFlags struct {
	fs           *flag.FlagSet
	dir          *string
	statePath    *string
	cloudURL     *string
	timeScale    *float64
	historyDir   *string
	policies     *string
	traceOut     *string
	stateBackend *string

	providerTTL      *time.Duration
	providerRetries  *int
	providerInFlight *int

	// Remote-mode flags (see remote.go).
	server    *string
	workspace *string
	token     *string

	// Guarded-apply flags; registered only by commands that apply.
	guard            *bool
	guardCanary      *float64
	guardMaxFailures *int
	guardMaxFailFrac *float64
	healthTimeout    *time.Duration

	recorder *telemetry.Recorder
	rootSpan *telemetry.Span
	baseCtx  context.Context
}

func newCommon(name string) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &commonFlags{
		fs:         fs,
		dir:        fs.String("dir", ".", "configuration directory (*.ccl)"),
		statePath:  fs.String("state", "cloudless.state.json", "state file path"),
		cloudURL:   fs.String("cloud", "", "cloud API base URL (empty = in-process simulator)"),
		timeScale:  fs.Float64("time-scale", 0.0005, "in-process simulator latency scale"),
		historyDir: fs.String("history", "", "time-machine directory for state snapshots (empty = disabled)"),
		policies:   fs.String("policies", "", "CCL policy file enforced across the lifecycle"),
		traceOut:   fs.String("trace-out", "", "write a Chrome/Perfetto trace of this run to the given file"),
		stateBackend: fs.String("state-backend", "memory",
			"golden-state storage engine: memory (sharded map), mvcc (versioned snapshots), or wal (durable commit log at <state>.wal/)"),
		providerTTL: fs.Duration("provider-cache-ttl", 0,
			"provider-runtime read-cache TTL (0 = default 30s, negative = disable caching)"),
		providerRetries: fs.Int("provider-retries", 0,
			"provider-runtime retry attempts per cloud call (0 = default 4)"),
		providerInFlight: fs.Int("provider-max-inflight", 0,
			"provider-runtime AIMD concurrency-window ceiling per cloud provider (0 = default 64)"),
		server:    fs.String("server", "", "cloudlessd base URL: run this command against a hosted workspace instead of a local state file"),
		workspace: fs.String("workspace", "", "hosted workspace name (required with -server)"),
		token:     fs.String("token", "", "bearer token for -server (empty when the server runs without auth)"),
	}
}

// initTelemetry sets up the recorder and a root span named after the
// command when -trace-out is given. Call after flag parsing; ctx() then
// carries the recorder through the whole stack.
func (c *commonFlags) initTelemetry(cmd string) {
	c.baseCtx = context.Background()
	if *c.traceOut == "" {
		return
	}
	c.recorder = telemetry.NewRecorder(telemetry.Config{})
	c.baseCtx, c.rootSpan = c.recorder.StartSpan(c.baseCtx, "cloudlessctl."+cmd)
}

// ctx returns the command context, carrying the recorder when tracing.
func (c *commonFlags) ctx() context.Context {
	if c.baseCtx == nil {
		return context.Background()
	}
	return c.baseCtx
}

// withSignals installs graceful-shutdown handling for a mutating command:
// the first SIGINT/SIGTERM cancels the context — in-flight cloud operations
// drain, their journal records land, and the partial result commits so the
// journal and state agree — and a second signal kills the process hard (the
// journal is fsynced before every cloud call, so even a hard kill is
// recoverable with `cloudlessctl recover`). The returned stop func releases
// the handler.
func withSignals(ctx context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "cloudlessctl: interrupt — draining in-flight operations (interrupt again to kill)")
		cancel()
		if _, ok := <-ch; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "cloudlessctl: killed; run `cloudlessctl recover` to reconcile")
		os.Exit(130)
	}()
	return ctx, func() {
		signal.Stop(ch)
		close(ch)
		cancel()
	}
}

// writeTrace ends the root span and exports the trace file. Deferred by
// every lifecycle command so traces survive command errors too.
func (c *commonFlags) writeTrace() {
	if c.recorder == nil {
		return
	}
	c.rootSpan.End()
	if err := c.recorder.WriteChromeTraceFile(*c.traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "cloudlessctl: write trace: %s\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "trace: %d span(s) written to %s (open at https://ui.perfetto.dev)\n",
		c.recorder.SpanCount(), *c.traceOut)
}

// snapshot appends the current state to the time-machine directory with the
// next free serial.
func (c *commonFlags) snapshot(s *cloudless.Stack, description string) error {
	if *c.historyDir == "" {
		return nil
	}
	h, err := state.LoadHistoryDir(*c.historyDir)
	if err != nil {
		return err
	}
	snap := s.DB().Snapshot()
	snap.Serial = 0 // let the history assign the next serial
	h.Commit(snap, description, "")
	return state.SaveSnapshot(*c.historyDir, h.Latest())
}

func (c *commonFlags) cloud() cloud.Interface {
	if *c.cloudURL != "" {
		return cloud.NewClient(*c.cloudURL, nil)
	}
	opts := cloud.DefaultOptions()
	opts.TimeScale = *c.timeScale
	return cloud.NewSim(opts)
}

// runtime wraps the raw cloud endpoint in a provider runtime for the
// commands that talk to the cloud without opening a stack (import,
// rollback); stack-based commands get theirs from cloudless.Open.
func (c *commonFlags) runtime() cloud.Interface {
	return provider.New(c.cloud(), provider.Options{
		CacheTTL:    *c.providerTTL,
		MaxRetries:  *c.providerRetries,
		MaxInFlight: *c.providerInFlight,
	})
}

func (c *commonFlags) open() (*cloudless.Stack, error) {
	st, err := state.LoadFile(*c.statePath)
	if err != nil {
		return nil, err
	}
	policySrc := ""
	if *c.policies != "" {
		data, err := os.ReadFile(*c.policies)
		if err != nil {
			return nil, fmt.Errorf("read policies: %w", err)
		}
		policySrc = string(data)
	}
	stateDir := ""
	if *c.stateBackend == cloudless.BackendWAL {
		stateDir = *c.statePath + ".wal"
	}
	opts := cloudless.Options{
		Dir:                 *c.dir,
		Cloud:               c.cloud(),
		InitialState:        st,
		Policies:            policySrc,
		Telemetry:           c.recorder,
		StateBackend:        *c.stateBackend,
		StateDir:            stateDir,
		JournalPath:         *c.statePath + ".journal",
		ProviderCacheTTL:    *c.providerTTL,
		ProviderMaxRetries:  *c.providerRetries,
		ProviderMaxInFlight: *c.providerInFlight,
	}
	if c.guard != nil && *c.guard {
		opts.GuardApplies = true
		opts.GuardCanary = *c.guardCanary
		opts.GuardMaxFailures = *c.guardMaxFailures
		opts.GuardMaxFailureFraction = *c.guardMaxFailFrac
		opts.HealthProbeTimeout = *c.healthTimeout
	}
	return cloudless.Open(opts)
}

func (c *commonFlags) saveState(s *cloudless.Stack) error {
	return s.DB().Snapshot().SaveFile(*c.statePath)
}

func cmdValidate(args []string) error {
	c := newCommon("validate")
	_ = c.fs.Parse(args)
	c.initTelemetry("validate")
	defer c.writeTrace()
	stack, err := c.open()
	if err != nil {
		return err
	}
	defer stack.Close()
	res := stack.Validate()
	if len(res.Findings) == 0 {
		fmt.Println("configuration is valid")
		return nil
	}
	for _, f := range res.Findings {
		fmt.Println(f.Error())
		if f.Detail != "" {
			fmt.Printf("    %s\n", f.Detail)
		}
	}
	if res.HasErrors() {
		return fmt.Errorf("%d validation error(s)", len(res.Errors()))
	}
	return nil
}

func cmdPlanApply(args []string, doApply bool) error {
	c := newCommon("plan")
	var targets multiFlag
	c.fs.Var(&targets, "target", "confine planning to the impact scope of this resource address (repeatable)")
	concurrency := c.fs.Int("concurrency", 10, "parallel cloud operations")
	fifo := c.fs.Bool("fifo", false, "use the baseline FIFO scheduler instead of critical-path-first")
	watch := c.fs.Bool("watch", false,
		"stream live progress while applying: per-op results, wave boundaries, health-gate outcomes, fuse trips, rollbacks")
	c.guard = c.fs.Bool("guard", false,
		"health-gate the apply: probe each resource until ready, trip a failure fuse per run/region, auto-revert the blast radius when resources never turn ready")
	c.guardCanary = c.fs.Float64("canary", 0,
		"with -guard: apply this dependency-closed fraction of the changeset first and release the rest only if it converges healthy (0 disables)")
	c.guardMaxFailures = c.fs.Int("max-failures", 0,
		"with -guard: trip a failure domain's fuse at this many failures (0 = default 3)")
	c.guardMaxFailFrac = c.fs.Float64("max-failure-frac", 0,
		"with -guard: trip a domain at this failed/planned fraction (0 = default 0.5)")
	c.healthTimeout = c.fs.Duration("health-timeout", 0,
		"with -guard: per-resource readiness wait bound (0 = default 30s)")
	_ = c.fs.Parse(args)
	if c.remote() {
		return c.remotePlanApply(doApply, *watch, false, *concurrency)
	}
	name := "plan"
	if doApply {
		name = "apply"
	}
	c.initTelemetry(name)
	defer c.writeTrace()

	stack, err := c.open()
	if err != nil {
		return err
	}
	defer stack.Close()
	if res := stack.Validate(); res.HasErrors() {
		for _, f := range res.Errors() {
			fmt.Println(f.Error())
		}
		return fmt.Errorf("validation failed; not planning")
	}
	ctx := c.ctx()
	var p *cloudless.Plan
	if len(targets) > 0 {
		p, err = stack.PlanIncremental(ctx, targets...)
	} else {
		p, err = stack.Plan(ctx)
	}
	if err != nil {
		return err
	}
	printPlan(p)
	if !doApply {
		return nil
	}
	if p.PendingCount() == 0 {
		fmt.Println("nothing to do")
		return c.saveState(stack)
	}
	sched := cloudless.SchedulerCriticalPath
	if *fifo {
		sched = cloudless.SchedulerFIFO
	}
	applyOpts := cloudless.ApplyOptions{Concurrency: *concurrency, Scheduler: sched}
	if *watch {
		applyOpts.OnEvent = func(e cloudless.Event) {
			if line := watchLine(e); line != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	applyCtx, stop := withSignals(ctx)
	res, diagnoses, err := stack.Apply(applyCtx, p, applyOpts)
	stop()
	for _, d := range diagnoses {
		fmt.Print(d.String())
	}
	if res != nil && (res.GateFailures > 0 || len(res.FuseTripped) > 0) {
		fmt.Printf("guard: %d op(s) never turned ready; tripped fuses: %s\n",
			res.GateFailures, strings.Join(res.FuseTripped, ", "))
		if res.Reverted {
			fmt.Printf("guard: auto-rollback reverted %d resource(s)\n", len(res.RolledBack))
		} else if len(res.RolledBack) > 0 {
			fmt.Printf("guard: auto-rollback of %d resource(s) did not complete; run recover\n", len(res.RolledBack))
		}
	}
	if err != nil {
		// Partial results are already committed to the golden state; persist
		// them so the state file and the kept journal tell the same story.
		if res != nil {
			if serr := c.saveState(stack); serr != nil {
				return errors.Join(err, serr)
			}
		}
		var rec *cloudless.ErrJournalRecovered
		if errors.As(err, &rec) {
			fmt.Printf("recovered crashed run: %d confirmed, %d resumed, %d orphan(s) adopted, %d deleted\n",
				rec.Report.Confirmed, rec.Report.Resumed,
				len(rec.Report.OrphansAdopted), len(rec.Report.OrphansDeleted))
		}
		return err
	}
	fmt.Printf("applied %d change(s) in %s (%d retries)\n", res.Applied, res.Elapsed.Round(1e6), res.Retries)
	if err := c.snapshot(stack, "apply"); err != nil {
		return err
	}
	outs := stack.DisplayOutputs()
	if len(outs) > 0 {
		keys := make([]string, 0, len(outs))
		for k := range outs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("outputs:")
		for _, k := range keys {
			fmt.Printf("  %s = %v\n", k, outs[k])
		}
	}
	return c.saveState(stack)
}

func printPlan(p *cloudless.Plan) {
	addrs := make([]string, 0, len(p.Changes))
	for a := range p.Changes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		ch := p.Changes[a]
		if ch.Action == plan.ActionNoop {
			continue
		}
		marker := map[plan.Action]string{
			plan.ActionCreate: "+", plan.ActionUpdate: "~",
			plan.ActionReplace: "±", plan.ActionDelete: "-",
		}[ch.Action]
		fmt.Printf("  %s %s", marker, a)
		if len(ch.ChangedAttrs) > 0 && ch.Action != plan.ActionCreate {
			fmt.Printf(" (%s)", strings.Join(ch.ChangedAttrs, ", "))
		}
		fmt.Println()
	}
	fmt.Printf("plan: %s (base serial %d)\n", p.Summary(), p.BaseSerial)
}

func cmdDestroy(args []string) error {
	c := newCommon("destroy")
	_ = c.fs.Parse(args)
	c.initTelemetry("destroy")
	defer c.writeTrace()
	stack, err := c.open()
	if err != nil {
		return err
	}
	defer stack.Close()
	ctx, stop := withSignals(c.ctx())
	res, err := stack.Destroy(ctx)
	stop()
	if err != nil {
		if res != nil {
			if serr := c.saveState(stack); serr != nil {
				return errors.Join(err, serr)
			}
		}
		return err
	}
	fmt.Printf("destroyed %d resource(s)\n", res.Applied)
	if err := c.snapshot(stack, "destroy"); err != nil {
		return err
	}
	return c.saveState(stack)
}

func cmdHistory(args []string) error {
	c := newCommon("history")
	_ = c.fs.Parse(args)
	if *c.historyDir == "" {
		return fmt.Errorf("history requires -history <dir>")
	}
	h, err := state.LoadHistoryDir(*c.historyDir)
	if err != nil {
		return err
	}
	if h.Len() == 0 {
		fmt.Println("no snapshots")
		return nil
	}
	for _, serial := range h.Serials() {
		snap, err := h.At(serial)
		if err != nil {
			return err
		}
		fmt.Printf("  %4d  %s  %-12s %d resource(s)\n",
			snap.Serial, snap.Time.Format("2006-01-02 15:04:05"),
			snap.Description, snap.State.Len())
	}
	return nil
}

func cmdRollback(args []string) error {
	c := newCommon("rollback")
	to := c.fs.Int("to", 0, "snapshot serial to roll back to (see history)")
	dryRun := c.fs.Bool("dry-run", false, "print the rollback plan without executing")
	_ = c.fs.Parse(args)
	c.initTelemetry("rollback")
	defer c.writeTrace()
	if *c.historyDir == "" || *to == 0 {
		return fmt.Errorf("rollback requires -history <dir> and -to <serial>")
	}
	h, err := state.LoadHistoryDir(*c.historyDir)
	if err != nil {
		return err
	}
	snap, err := h.At(*to)
	if err != nil {
		return err
	}
	current, err := state.LoadFile(*c.statePath)
	if err != nil {
		return err
	}
	p := rollback.Compute(current, snap.State)
	fmt.Printf("rollback to #%d (%s): %s\n", snap.Serial, snap.Description, p.Summary())
	for _, step := range p.Steps {
		fmt.Printf("  %-16s %-40s %s\n", step.Kind, step.Addr, step.Reason)
	}
	if *dryRun || len(p.Steps) == 0 {
		return nil
	}
	journalPath := *c.statePath + ".journal"
	if js, err := apply.ReadJournal(journalPath); err != nil {
		return err
	} else if js != nil {
		return fmt.Errorf("a crashed run's journal exists at %s; run `cloudlessctl recover` first", journalPath)
	}
	j, err := apply.NewJournal(journalPath, apply.Meta{Kind: "rollback", Principal: "cloudless"})
	if err != nil {
		return err
	}
	ctx, stop := withSignals(c.ctx())
	after, err := rollback.ExecuteJournaled(ctx, c.runtime(), current, snap.State, p,
		rollback.ExecOptions{Principal: "cloudless", Journal: j})
	stop()
	if err != nil {
		_ = j.Close() // keep for `cloudlessctl recover`
		if after != nil {
			if serr := after.SaveFile(*c.statePath); serr != nil {
				return errors.Join(err, serr)
			}
		}
		return err
	}
	_ = j.Discard()
	if err := after.SaveFile(*c.statePath); err != nil {
		return err
	}
	fmt.Printf("rolled back: %d in-place revert(s), %d redeployment(s)\n", p.Reverts, p.Redeployments)
	return nil
}

// cmdRecover reconciles a crashed run's journal with the cloud without
// needing the configuration: completed ops are folded in from their done
// records, in-doubt ops re-driven under their original idempotency keys,
// and orphans adopted or deleted via the activity log.
func cmdRecover(args []string) error {
	c := newCommon("recover")
	_ = c.fs.Parse(args)
	if c.remote() {
		return c.remoteRecover()
	}
	c.initTelemetry("recover")
	defer c.writeTrace()
	journalPath := *c.statePath + ".journal"
	js, err := apply.ReadJournal(journalPath)
	if err != nil {
		return err
	}
	if js == nil {
		fmt.Printf("no journal at %s; nothing to recover\n", journalPath)
		return nil
	}
	st, err := state.LoadFile(*c.statePath)
	if err != nil {
		return err
	}
	ctx, stop := withSignals(c.ctx())
	reconciled, rep, err := apply.Recover(ctx, c.runtime(), js, st, apply.Options{Principal: js.Meta.Principal})
	stop()
	if err != nil {
		return err
	}
	if err := reconciled.SaveFile(*c.statePath); err != nil {
		return err
	}
	fmt.Printf("recovered %s journal %s: %d confirmed, %d resumed, %d orphan(s) adopted, %d orphan(s) deleted (%s)\n",
		js.Meta.Kind, js.Meta.ID, rep.Confirmed, rep.Resumed,
		len(rep.OrphansAdopted), len(rep.OrphansDeleted), rep.Elapsed.Round(time.Millisecond))
	if err := rep.Err(); err != nil {
		return fmt.Errorf("recovery incomplete (journal kept for retry): %w", err)
	}
	return os.Remove(journalPath)
}

func cmdDrift(args []string) error {
	c := newCommon("drift")
	scan := c.fs.Bool("scan", false, "full API scan instead of activity-log watch")
	reconcile := c.fs.String("reconcile", "", `reconcile detected drift: "adopt" or "revert"`)
	_ = c.fs.Parse(args)
	if c.remote() {
		return c.remoteDrift(*scan, *reconcile)
	}
	c.initTelemetry("drift")
	defer c.writeTrace()
	stack, err := c.open()
	if err != nil {
		return err
	}
	defer stack.Close()
	ctx := c.ctx()
	var rep *cloudless.DriftReport
	if *scan {
		rep, err = stack.ScanDrift(ctx)
	} else {
		// Prime the watcher then poll (a real deployment keeps the stack
		// alive; the CLI does one prime+poll cycle).
		if _, err = stack.WatchDrift(ctx); err == nil {
			rep, err = stack.WatchDrift(ctx)
		}
	}
	if err != nil {
		return err
	}
	if !rep.HasDrift() {
		fmt.Printf("no drift (%s, %d API calls)\n", rep.Method, rep.APICalls)
		return nil
	}
	for _, it := range rep.Items {
		who := it.Actor
		if who == "" {
			who = "unknown actor"
		}
		switch it.Kind {
		case drift.Modified:
			fmt.Printf("  ~ %s: %s changed %v\n", it.Addr, who, it.ChangedAttrs)
		case drift.Deleted:
			fmt.Printf("  - %s: deleted by %s\n", it.Addr, who)
		case drift.Unmanaged:
			fmt.Printf("  + %s %s: unmanaged (created by %s)\n", it.Type, it.ID, who)
		}
	}
	switch *reconcile {
	case "":
		return nil
	case "adopt":
		_, err = stack.ReconcileDrift(ctx, rep, drift.Adopt)
	case "revert":
		_, err = stack.ReconcileDrift(ctx, rep, drift.Revert)
	default:
		return fmt.Errorf("unknown reconcile mode %q", *reconcile)
	}
	if err != nil {
		return err
	}
	fmt.Printf("reconciled (%s)\n", *reconcile)
	return c.saveState(stack)
}

// watchLine renders a live apply event as a one-line progress entry, or ""
// for kinds that would only add noise at the terminal (op_begin, raw
// provider counters).
func watchLine(e cloudless.Event) string {
	switch e.Kind {
	case "apply.run_start":
		return fmt.Sprintf("run %s: %d pending change(s)", e.Run, e.N)
	case "apply.wave_start":
		return fmt.Sprintf("wave %s: %d op(s)", e.Wave, e.N)
	case "apply.op_done":
		line := fmt.Sprintf("  ok    %-7s %s (%.0fms", e.Action, e.Addr, e.Ms)
		if e.Retries > 0 {
			line += fmt.Sprintf(", %d retries", e.Retries)
		}
		return line + ")"
	case "apply.op_fail":
		return fmt.Sprintf("  FAIL  %-7s %s: %s", e.Action, e.Addr, e.Err)
	case "apply.gate_pass":
		return fmt.Sprintf("  ready %s after %.0fms", e.Addr, e.Ms)
	case "apply.gate_fail":
		return fmt.Sprintf("  UNHEALTHY %s: %s", e.Addr, e.Err)
	case "apply.fuse_trip":
		return fmt.Sprintf("fuse tripped: %s — halting the domain", e.Domain)
	case "apply.rollback_start":
		return fmt.Sprintf("auto-rollback: reverting %d resource(s)", e.N)
	case "apply.rollback_finish":
		if e.Err != "" {
			return fmt.Sprintf("auto-rollback incomplete: %s", e.Err)
		}
		return fmt.Sprintf("auto-rollback done: %d resource(s) in %.0fms", e.N, e.Ms)
	case "apply.wave_finish":
		return fmt.Sprintf("wave %s done: %d applied, %d retries, %.0fms", e.Wave, e.N, e.Retries, e.Ms)
	case "apply.run_finish":
		if e.Err != "" {
			return fmt.Sprintf("run %s finished with errors: %s", e.Run, e.Err)
		}
		return fmt.Sprintf("run %s finished: %d applied in %.0fms", e.Run, e.N, e.Ms)
	case "provider.throttled":
		return fmt.Sprintf("  throttled by %s on %s %s (window -> %.0f)", e.Provider, e.Action, e.Type, e.Window)
	}
	return ""
}

// cmdTail follows a cloud endpoint's activity log live: long-poll from a
// watermark, print each batch, resume from the last printed seq. Every
// iteration is a fresh request carrying the watermark, so a dropped
// response never loses or repeats events.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	cloudURL := fs.String("cloud", "", "cloud API base URL to follow (required: the point is watching a shared endpoint)")
	since := fs.Int64("since", 0, "resume after this activity sequence number (0 replays the whole log)")
	wait := fs.Duration("wait", 25*time.Second, "server-side long-poll hold per request")
	once := fs.Bool("once", false, "print the backlog and exit instead of following")
	serverURL := fs.String("server", "", "cloudlessd base URL: tail a hosted workspace's event feed instead of a cloud activity log")
	workspaceName := fs.String("workspace", "", "hosted workspace name (required with -server)")
	token := fs.String("token", "", "bearer token for -server")
	_ = fs.Parse(args)
	if *serverURL != "" {
		return remoteTail(*serverURL, *token, *workspaceName, *since, *wait, *once)
	}
	if *cloudURL == "" {
		return fmt.Errorf("tail requires -cloud: an in-process simulator has no other writers to watch")
	}
	cl := cloud.NewClient(*cloudURL, nil)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	watermark := *since
	for {
		evs, err := cloud.WaitActivity(ctx, cl, watermark, *wait)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			return err
		}
		for _, e := range evs {
			line := fmt.Sprintf("#%d %s %-6s %s/%s %s by %s",
				e.Seq, e.Time.Format(time.RFC3339), e.Op, e.Type, e.ID, e.Region, e.Principal)
			if len(e.Changed) > 0 {
				line += " (" + strings.Join(e.Changed, ", ") + ")"
			}
			fmt.Println(line)
			watermark = e.Seq
		}
		if *once {
			return nil
		}
	}
}

func cmdImport(args []string) error {
	c := newCommon("import")
	out := c.fs.String("out", "imported", "output directory")
	modules := c.fs.Bool("modules", false, "extract repeated structures into modules")
	optimize := c.fs.Bool("optimize", true, "compact homogeneous fleets with count")
	_ = c.fs.Parse(args)

	res, err := port.Import(context.Background(), c.runtime(), port.ImportOptions{
		Optimize: *optimize, ExtractModules: *modules,
	})
	if err != nil {
		return err
	}
	for name, src := range res.Files {
		path := filepath.Join(*out, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if err := res.State.SaveFile(filepath.Join(*out, "cloudless.state.json")); err != nil {
		return err
	}
	m := res.Metrics
	fmt.Printf("imported %d resource(s): %d lines, %d blocks, compaction %.2fx, references %.0f%%, %d module(s)\n",
		m.ResourceInstances, m.Lines, m.Blocks, m.CompactionRatio, m.ReferenceRatio*100, m.ModuleCount)
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	template := fs.String("template", "web-service", "template: web-service or vpn-mesh")
	name := fs.String("name", "app", "resource name prefix")
	vms := fs.Int("vms", 2, "web tier size")
	db := fs.Bool("db", false, "include a database")
	lb := fs.Bool("lb", false, "include a load balancer")
	out := fs.String("out", "generated", "output directory")
	_ = fs.Parse(args)

	files, err := port.Synthesize(port.SynthSpec{
		Name: *name, Template: *template, VMCount: *vms,
		WithDatabase: *db, WithLoadBalancer: *lb,
	})
	if err != nil {
		return err
	}
	for fname, src := range files {
		path := filepath.Join(*out, fname)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (validated)\n", path)
	}
	return nil
}

// cmdMetrics summarizes a trace file produced with -trace-out: a span table
// (count, total, percentiles) and every counter/gauge/histogram the run
// recorded.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	tracePath := fs.String("trace", "trace.json", "trace file written by a lifecycle command's -trace-out")
	prom := fs.Bool("prom", false, "emit the trace's metrics in Prometheus text exposition format and exit")
	_ = fs.Parse(args)
	tr, err := telemetry.ReadChromeTraceFile(*tracePath)
	if err != nil {
		return err
	}
	if *prom {
		return telemetry.WritePrometheus(os.Stdout, tr.Metrics)
	}
	stats := telemetry.TraceSummary(tr)
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
	}
	fmt.Printf("%-34s %6s %10s %10s %10s %10s\n", "span", "count", "total_ms", "p50_ms", "p95_ms", "max_ms")
	for _, st := range stats {
		fmt.Printf("%-34s %6d %10s %10s %10s %10s\n",
			st.Name, st.Count, ms(st.Total), ms(st.P50), ms(st.P95), ms(st.Max))
	}
	if len(tr.Metrics) > 0 {
		fmt.Println("\nmetrics:")
		for _, mp := range tr.Metrics {
			switch mp.Kind {
			case "histogram":
				fmt.Printf("  %-50s count=%d p50=%.2f p95=%.2f max=%.2f\n",
					mp.Name, mp.Count, mp.P50, mp.P95, mp.Max)
			default:
				fmt.Printf("  %-50s %g\n", mp.Name, mp.Value)
			}
		}
	}
	if tr.DroppedSpans > 0 {
		fmt.Printf("\nwarning: %d span(s) dropped (recorder bound reached)\n", tr.DroppedSpans)
	}
	return nil
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set appends a value.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
