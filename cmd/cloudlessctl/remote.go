package main

// Remote mode: with -server, lifecycle commands route through a cloudlessd
// workspace API instead of opening a local stack. The server owns the golden
// state, journal, and event history; the CLI submits jobs and renders their
// wire summaries, so `plan`/`apply -watch`/`drift`/`recover` read the same
// on-screen as their local counterparts.

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	cloudless "cloudless"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
)

// remote reports whether this invocation targets a cloudlessd server.
func (c *commonFlags) remote() bool { return *c.server != "" }

func (c *commonFlags) client() *server.Client {
	return server.NewClient(strings.TrimRight(*c.server, "/"), *c.token, nil)
}

// remoteTarget validates the -server/-workspace pair and returns the client
// plus a signal-canceled context.
func (c *commonFlags) remoteTarget() (*server.Client, string, context.Context, context.CancelFunc, error) {
	if *c.workspace == "" {
		return nil, "", nil, nil, fmt.Errorf("remote mode requires -workspace <name> (see `cloudlessctl workspaces -server %s`)", *c.server)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return c.client(), *c.workspace, ctx, cancel, nil
}

// runJob submits a job and waits for it to finish, surfacing job-level
// failures as errors.
func runJob(ctx context.Context, cl *server.Client, ws string, req server.JobRequest) (server.JobStatus, error) {
	st, err := cl.SubmitJob(ctx, ws, req)
	if err != nil {
		return st, err
	}
	st, err = cl.WaitJob(ctx, ws, st.ID)
	if err != nil {
		return st, err
	}
	if st.Status != jobs.StatusSucceeded {
		return st, fmt.Errorf("%s job %s %s: %s", req.Kind, st.ID, st.Status, st.Err)
	}
	return st, nil
}

// printRemotePlan renders a plan artifact like printPlan renders a local one.
func printRemotePlan(p server.PlanSummary) {
	for _, ch := range p.Changes {
		marker := map[string]string{
			"create": "+", "update": "~", "replace": "±", "delete": "-",
		}[ch.Action]
		fmt.Printf("  %s %s", marker, ch.Addr)
		if len(ch.ChangedAttrs) > 0 && ch.Action != "create" {
			fmt.Printf(" (%s)", strings.Join(ch.ChangedAttrs, ", "))
		}
		fmt.Println()
	}
	fmt.Printf("plan: %d to create, %d to update, %d to replace, %d to delete, %d unchanged (base serial %d)\n",
		p.Creates, p.Updates, p.Replaces, p.Deletes, p.Noops, p.BaseSerial)
}

// remotePlanApply is the -server path of `plan` and `apply`: plan as a job,
// print the diff artifact, then (for apply) apply that exact artifact by
// reference while streaming the workspace event feed when -watch is on.
func (c *commonFlags) remotePlanApply(doApply, watch, batch bool, concurrency int) error {
	cl, ws, ctx, cancel, err := c.remoteTarget()
	if err != nil {
		return err
	}
	defer cancel()

	planSt, err := runJob(ctx, cl, ws, server.JobRequest{Kind: "plan"})
	if err != nil {
		return err
	}
	p, err := cl.PlanArtifact(ctx, ws, planSt.ID)
	if err != nil {
		return err
	}
	printRemotePlan(p)
	if !doApply {
		return nil
	}
	if p.Pending() == 0 {
		fmt.Println("nothing to do")
		return nil
	}

	// Capture the event watermark before submitting so -watch replays
	// exactly this run's events, then follow the feed until the job lands.
	var watermark int64
	if watch {
		if page, err := cl.Events(ctx, ws, 0, 0); err == nil {
			watermark = page.Next
		}
	}
	st, err := cl.SubmitJob(ctx, ws, server.JobRequest{
		Kind: "apply", PlanJob: planSt.ID,
		Concurrency: concurrency, BatchOps: batch,
	})
	if err != nil {
		return err
	}
	for {
		if watch {
			page, err := cl.Events(ctx, ws, watermark, 2*time.Second)
			if err != nil {
				if ctx.Err() != nil {
					break
				}
				return err
			}
			watermark = page.Next
			for _, we := range page.Events {
				if line := watchLine(cloudless.Event(we)); line != "" {
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}
		wait := 0
		if !watch {
			wait = 10_000
		}
		cur, err := cl.GetJob(ctx, ws, st.ID, wait)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return err
		}
		st = cur
		if st.Status.Terminal() {
			break
		}
	}
	if st.Status != jobs.StatusSucceeded {
		return fmt.Errorf("apply job %s %s: %s", st.ID, st.Status, st.Err)
	}
	res, err := server.ResultAs[server.ApplySummary](st)
	if err != nil {
		return err
	}
	fmt.Printf("applied %d change(s) in %.0fms (%d retries) — serial %d\n",
		res.Applied, res.ElapsedMs, res.Retries, res.Serial)
	if len(res.Outputs) > 0 {
		keys := make([]string, 0, len(res.Outputs))
		for k := range res.Outputs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("outputs:")
		for _, k := range keys {
			fmt.Printf("  %s = %v\n", k, res.Outputs[k])
		}
	}
	return nil
}

// remoteDrift is the -server path of `drift`: run detection as a job, print
// the report, and optionally reconcile it by artifact reference.
func (c *commonFlags) remoteDrift(scan bool, reconcile string) error {
	cl, ws, ctx, cancel, err := c.remoteTarget()
	if err != nil {
		return err
	}
	defer cancel()
	kind := "drift"
	if scan {
		kind = "scan"
	}
	st, err := runJob(ctx, cl, ws, server.JobRequest{Kind: kind})
	if err != nil {
		return err
	}
	rep, err := server.ResultAs[server.DriftSummary](st)
	if err != nil {
		return err
	}
	if len(rep.Items) == 0 {
		fmt.Printf("no drift (%s, %d API calls)\n", rep.Method, rep.APICalls)
		return nil
	}
	for _, it := range rep.Items {
		who := it.Actor
		if who == "" {
			who = "unknown actor"
		}
		switch it.Kind {
		case "modified":
			fmt.Printf("  ~ %s: %s changed %v\n", it.Addr, who, it.ChangedAttrs)
		case "deleted":
			fmt.Printf("  - %s: deleted by %s\n", it.Addr, who)
		case "unmanaged":
			fmt.Printf("  + %s %s: unmanaged (created by %s)\n", it.Type, it.ID, who)
		}
	}
	if reconcile == "" {
		return nil
	}
	if _, err := runJob(ctx, cl, ws, server.JobRequest{
		Kind: "reconcile", DriftJob: st.ID, Action: reconcile,
	}); err != nil {
		return err
	}
	fmt.Printf("reconciled (%s)\n", reconcile)
	return nil
}

// remoteRecover is the -server path of `recover`.
func (c *commonFlags) remoteRecover() error {
	cl, ws, ctx, cancel, err := c.remoteTarget()
	if err != nil {
		return err
	}
	defer cancel()
	st, err := runJob(ctx, cl, ws, server.JobRequest{Kind: "recover"})
	if err != nil {
		return err
	}
	rep, err := server.ResultAs[server.RecoverSummary](st)
	if err != nil {
		return err
	}
	if !rep.Recovered {
		fmt.Println("no stale journal; nothing to recover")
		return nil
	}
	fmt.Printf("recovered %s journal: %d confirmed, %d resumed, %d orphan(s) adopted, %d orphan(s) deleted\n",
		rep.Kind, rep.Confirmed, rep.Resumed, len(rep.OrphansAdopted), len(rep.OrphansDeleted))
	return nil
}

// remoteTail follows a workspace's event feed (the server-side analogue of
// `tail` against a raw cloud endpoint): long-poll from a watermark, print,
// resume from the page's Next.
func remoteTail(serverURL, token, ws string, since int64, wait time.Duration, once bool) error {
	if ws == "" {
		return fmt.Errorf("tail -server requires -workspace <name>")
	}
	cl := server.NewClient(strings.TrimRight(serverURL, "/"), token, nil)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	watermark := since
	for {
		page, err := cl.Events(ctx, ws, watermark, wait)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			return err
		}
		if g := page.Gap; g != nil {
			// The server could not resume our watermark gaplessly (daemon
			// restart reset the sequence, or the replay ring overflowed).
			// Say so and re-anchor instead of silently renumbering.
			fmt.Printf("-- event stream gap (%s): events after #%d were lost; resuming from #%d --\n",
				g.Reason, g.Since, page.Next)
		}
		watermark = page.Next
		for _, we := range page.Events {
			e := cloudless.Event(we)
			if line := watchLine(e); line != "" {
				fmt.Println(line)
				continue
			}
			fmt.Printf("#%d %s %s %s\n", e.Seq,
				time.Unix(0, e.Time).Format(time.RFC3339), e.Kind, e.Addr)
		}
		if once {
			return nil
		}
	}
}

// cmdWorkspaces manages workspaces on a cloudlessd server:
//
//	cloudlessctl workspaces -server URL                      # list
//	cloudlessctl workspaces create -server URL -workspace w -dir ./infra
//	cloudlessctl workspaces delete -server URL -workspace w
func cmdWorkspaces(args []string) error {
	sub := "list"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	c := newCommon("workspaces")
	dir := c.dir // uploaded on create
	backend := c.fs.String("remote-state-backend", "", "golden-state backend for the new workspace (empty = server default)")
	guard := c.fs.Bool("guard", false, "health-gate applies in the new workspace")
	canary := c.fs.Float64("canary", 0, "with -guard: canary fraction for the new workspace")
	_ = c.fs.Parse(args)
	if !c.remote() {
		return fmt.Errorf("workspaces requires -server <url>")
	}
	cl := c.client()
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	switch sub {
	case "list":
		names, err := cl.ListWorkspaces(ctx)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			fmt.Println("no workspaces")
			return nil
		}
		fmt.Printf("%-24s %6s %10s\n", "workspace", "serial", "resources")
		for _, name := range names {
			info, err := cl.GetWorkspace(ctx, name)
			if err != nil {
				return err
			}
			fmt.Printf("%-24s %6d %10d\n", info.Name, info.Serial, info.Resources)
		}
		return nil
	case "create":
		if *c.workspace == "" {
			return fmt.Errorf("workspaces create requires -workspace <name>")
		}
		sources, err := loadSources(*dir)
		if err != nil {
			return err
		}
		policySrc := ""
		if *c.policies != "" {
			data, err := os.ReadFile(*c.policies)
			if err != nil {
				return fmt.Errorf("read policies: %w", err)
			}
			policySrc = string(data)
		}
		info, err := cl.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
			Name: *c.workspace, Sources: sources, Policies: policySrc,
			StateBackend: *backend, GuardApplies: *guard, GuardCanary: *canary,
		})
		if err != nil {
			return err
		}
		fmt.Printf("created workspace %s (%d source file(s))\n", info.Name, len(sources))
		return nil
	case "delete":
		if *c.workspace == "" {
			return fmt.Errorf("workspaces delete requires -workspace <name>")
		}
		if err := cl.DeleteWorkspace(ctx, *c.workspace); err != nil {
			return err
		}
		fmt.Printf("deleted workspace %s\n", *c.workspace)
		return nil
	default:
		return fmt.Errorf("unknown workspaces subcommand %q (want list, create, or delete)", sub)
	}
}

// loadSources reads every .ccl file under dir into a filename->source map,
// keyed by slash-separated path relative to dir (module layouts survive the
// upload).
func loadSources(dir string) (map[string]string, error) {
	sources := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".ccl") {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sources[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no .ccl files under %s", dir)
	}
	return sources, nil
}
