package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	cloudless "cloudless"
	"cloudless/internal/server"
)

// cmdReconcile manages a hosted workspace's continuous-reconciliation
// controller (DESIGN.md S29). Remote-only: the controller lives in
// cloudlessd, next to the workspace it converges.
//
//	cloudlessctl reconcile on     -server URL -workspace w [-mode repair|detect]
//	cloudlessctl reconcile off    -server URL -workspace w
//	cloudlessctl reconcile status -server URL -workspace w
//	cloudlessctl reconcile watch  -server URL -workspace w
func cmdReconcile(args []string) error {
	sub := "status"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	c := newCommon("reconcile")
	mode := c.fs.String("mode", "repair", `with "on": "repair" auto-repairs drift through guarded applies, "detect" only surfaces it`)
	fullScanEvery := c.fs.Duration("full-scan-every", 0,
		`with "on": periodic safety-net full-scan interval (0 = controller default, negative disables)`)
	flapThreshold := c.fs.Int("flap-threshold", 0,
		`with "on": suppress an address after this many repairs inside the flap window (0 = controller default)`)
	breakerThreshold := c.fs.Int("breaker-threshold", 0,
		`with "on": open the circuit breaker (degrade to detect-only) after this many consecutive all-fail repair rounds (0 = controller default)`)
	_ = c.fs.Parse(args)
	if !c.remote() {
		return fmt.Errorf("reconcile requires -server <url> -workspace <name>: the controller runs inside cloudlessd")
	}
	cl, ws, ctx, cancel, err := c.remoteTarget()
	if err != nil {
		return err
	}
	defer cancel()

	switch sub {
	case "on":
		req := server.ReconcilerRequest{
			Enabled:          true,
			Mode:             *mode,
			FlapThreshold:    *flapThreshold,
			BreakerThreshold: *breakerThreshold,
		}
		if *fullScanEvery < 0 {
			req.FullScanEveryMs = -1
		} else {
			req.FullScanEveryMs = int(*fullScanEvery / time.Millisecond)
		}
		st, err := cl.SetReconciler(ctx, ws, req)
		if err != nil {
			return err
		}
		fmt.Printf("reconciler enabled on %s (mode %s, watermark #%d)\n", st.Workspace, st.Mode, st.Watermark)
		return nil
	case "off":
		st, err := cl.SetReconciler(ctx, ws, server.ReconcilerRequest{Enabled: false})
		if err != nil {
			return err
		}
		fmt.Printf("reconciler disabled on %s\n", st.Workspace)
		return nil
	case "status":
		st, err := cl.ReconcilerStatus(ctx, ws)
		if err != nil {
			return err
		}
		printReconcilerStatus(st)
		return nil
	case "watch":
		return watchReconciler(ctx, cl, ws)
	default:
		return fmt.Errorf("unknown reconcile subcommand %q (want on, off, status, or watch)", sub)
	}
}

func printReconcilerStatus(st server.ReconcilerStatus) {
	if !st.Enabled {
		fmt.Printf("reconciler on %s: disabled\n", st.Workspace)
		return
	}
	mode := st.Mode
	if st.BreakerOpen {
		mode += " (BREAKER OPEN: degraded to detect-only)"
	} else if st.DetectOnly {
		mode += " (detect-only)"
	}
	fmt.Printf("reconciler on %s: %s, mode %s\n", st.Workspace, st.State, mode)
	fmt.Printf("  watermark #%d (ingested #%d)  events seen %d, dropped %d\n",
		st.Watermark, st.IngestSeq, st.EventsSeen, st.EventsDropped)
	fmt.Printf("  detected %d, repaired %d, repair failures %d, suppressed %d, breaker trips %d\n",
		st.Detected, st.Repaired, st.RepairFailures, st.Suppressed, st.BreakerTrips)
	fmt.Printf("  scans: %d scoped, %d full; unmanaged sightings %d\n",
		st.ScopedScans, st.FullScans, st.Unmanaged)
	if len(st.Addrs) == 0 {
		return
	}
	fmt.Printf("  %-40s %-10s %6s %7s %5s %s\n", "address", "state", "drifts", "repairs", "fails", "detail")
	for _, a := range st.Addrs {
		detail := a.LastError
		switch {
		case a.SuppressMs > 0:
			detail = fmt.Sprintf("suppressed for %.0fms (flapping)", a.SuppressMs)
		case a.RetryInMs > 0:
			detail = fmt.Sprintf("retry in %.0fms", a.RetryInMs)
			if a.LastError != "" {
				detail += ": " + a.LastError
			}
		}
		fmt.Printf("  %-40s %-10s %6d %7d %5d %s\n",
			a.Addr, a.State, a.Drifts, a.Repairs, a.Failures, detail)
	}
}

// watchReconciler follows a workspace's event feed filtered to the
// reconciliation story: drift detections, repairs, suppressions, breaker
// transitions, safety-net scans. The caller's context already cancels on
// SIGINT/SIGTERM (remoteTarget), so ^C ends the follow cleanly.
func watchReconciler(ctx context.Context, cl *server.Client, ws string) error {
	var watermark int64
	for {
		page, err := cl.Events(ctx, ws, watermark, 25*time.Second)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			return err
		}
		if g := page.Gap; g != nil {
			fmt.Printf("-- event stream gap (%s): events after #%d were lost; resuming from #%d --\n",
				g.Reason, g.Since, page.Next)
		}
		watermark = page.Next
		for _, we := range page.Events {
			if line := reconcileLine(cloudless.Event(we)); line != "" {
				fmt.Println(line)
			}
		}
	}
}

// reconcileLine renders reconciliation-relevant events as one-line progress
// entries; other kinds return "" and are skipped.
func reconcileLine(e cloudless.Event) string {
	ts := time.Unix(0, e.Time).Format("15:04:05")
	switch e.Kind {
	case "drift.detected":
		who := e.Principal
		if who == "" {
			who = "unknown actor"
		}
		return fmt.Sprintf("%s  drift  %-7s %s (by %s, %s wave)", ts, e.Action, e.Addr, who, e.Wave)
	case "reconcile.repaired":
		return fmt.Sprintf("%s  ok     repaired %s (%.0fms after detection)", ts, e.Addr, e.Ms)
	case "reconcile.repair_fail":
		return fmt.Sprintf("%s  FAIL   repair %s (attempt %d): %s", ts, e.Addr, e.N, e.Err)
	case "reconcile.suppressed":
		return fmt.Sprintf("%s  flap   %s suppressed after %d repairs in the flap window", ts, e.Addr, e.N)
	case "reconcile.breaker_open":
		return fmt.Sprintf("%s  BREAKER OPEN: %d consecutive failed repair rounds; degrading to detect-only", ts, e.N)
	case "reconcile.breaker_close":
		return fmt.Sprintf("%s  breaker closed: repairs re-enabled", ts)
	case "reconcile.full_scan":
		return fmt.Sprintf("%s  scan   full scan (%s): %d drifted", ts, e.Action, e.N)
	case "reconcile.gap":
		return fmt.Sprintf("%s  gap    %d bus event(s) dropped; scheduling catch-up full scan", ts, e.N)
	}
	return ""
}
