// Command cloudsim runs the simulated multi-region cloud as a standalone
// HTTP service, so cloudlessctl (or any HTTP client) can manage
// infrastructure over a real network path.
//
// Usage:
//
//	cloudsim [-addr :8444] [-time-scale 0.001] [-failure-rate 0] [-seed 1]
package main

import (
	"flag"
	"log/slog"
	"os"

	"cloudless/internal/cloud"
)

func main() {
	addr := flag.String("addr", ":8444", "listen address")
	timeScale := flag.Float64("time-scale", 0.001, "latency model multiplier (1.0 = realistic provisioning times)")
	failureRate := flag.Float64("failure-rate", 0, "probability of transient failure per mutating call")
	seed := flag.Int64("seed", 1, "fault-injection seed")
	rateLimit := flag.Float64("rate-limit", 0, "override per-provider API rate limit (rps); 0 keeps provider defaults")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	opts := cloud.DefaultOptions()
	opts.TimeScale = *timeScale
	opts.FailureRate = *failureRate
	opts.Seed = *seed
	opts.RateLimitOverride = *rateLimit

	sim := cloud.NewSim(opts)
	srv := cloud.NewServer(sim, logger)
	if err := srv.ListenAndServe(*addr); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}
