// Command cloudlessd hosts many cloudless workspaces in one long-running
// process behind an authenticated HTTP/JSON API (DESIGN.md S27): workspace
// CRUD, async plan/apply/drift/recover jobs with per-tenant fair
// scheduling, long-poll event streams, and an aggregated /metrics.
//
// Usage:
//
//	cloudlessd [-addr :8445] [-data-dir /var/lib/cloudless] \
//	    [-cloud sim|http://host:8444] [-tokens alice=tok1,bob=tok2] \
//	    [-admins alice] [-workers 8] [-state-backend wal] [-guard]
//
// With -cloud sim (the default) an in-process simulated cloud backs every
// workspace — one control plane, per-workspace provider runtimes — which
// is the single-binary path for development and the server-smoke CI job.
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
	"cloudless/internal/workspace"
)

func main() {
	addr := flag.String("addr", ":8445", "listen address")
	dataDir := flag.String("data-dir", "", "root directory for per-workspace journals and durable state (empty = ephemeral)")
	cloudURL := flag.String("cloud", "sim", `cloud control plane: "sim" for an in-process simulator, or an HTTP base URL`)
	timeScale := flag.Float64("time-scale", 0.001, "sim latency multiplier (ignored with a remote cloud)")
	seed := flag.Int64("seed", 1, "sim fault-injection seed")
	tokens := flag.String("tokens", "", "comma-separated principal=token pairs; empty disables auth (dev only)")
	admins := flag.String("admins", "", "comma-separated principals with access to every workspace")
	workers := flag.Int("workers", 8, "job worker ceiling (AIMD admission adapts below it)")
	backend := flag.String("state-backend", "", "default golden-state backend per workspace (memory|mvcc|wal)")
	guard := flag.Bool("guard", false, "default new workspaces to health-gated applies")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight jobs and workspace drains")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var upstream cloud.Interface
	if *cloudURL == "sim" {
		opts := cloud.DefaultOptions()
		opts.TimeScale = *timeScale
		opts.Seed = *seed
		upstream = cloud.NewSim(opts)
	} else {
		upstream = cloud.NewClient(*cloudURL, nil)
	}

	mgr := workspace.NewManager(workspace.ManagerOptions{
		Root:           *dataDir,
		Cloud:          upstream,
		DefaultBackend: *backend,
		Defaults:       workspace.Config{GuardApplies: *guard},
	})
	// With a data dir the daemon is crash-safe (DESIGN.md S28): jobs journal
	// every transition to <data-dir>/<workspace>/jobs.journal and ACLs
	// persist alongside, so a restart resumes instead of starting blank.
	queueOpts := jobs.Options{Workers: *workers}
	aclPath := ""
	if *dataDir != "" {
		store, err := jobs.OpenStore(*dataDir, jobs.StoreOptions{})
		if err != nil {
			logger.Error("open job store", "err", err)
			os.Exit(1)
		}
		queueOpts.Store = store
		aclPath = filepath.Join(*dataDir, "acl.json")
	}
	queue := jobs.New(queueOpts)
	srv := server.New(server.Options{
		Manager: mgr,
		Queue:   queue,
		Tokens:  parsePairs(*tokens),
		Admins:  splitList(*admins),
		Logger:  logger,
		ACLPath: aclPath,
	})

	// Startup recovery, before the listener admits traffic: reopen every
	// persisted workspace (durable state reloads with it), then replay the
	// job journals — terminal jobs become history, queued jobs re-enqueue,
	// and jobs that were mid-apply at a crash resume through apply-level
	// recovery under their original idempotency keys.
	startupCtx, cancelStartup := context.WithTimeout(context.Background(), 5*time.Minute)
	wsRep, err := mgr.Recover(startupCtx)
	if err != nil {
		logger.Error("workspace recovery failed", "err", err)
		os.Exit(1)
	}
	for name, ferr := range wsRep.Failed {
		logger.Error("workspace not recovered", "workspace", name, "err", ferr)
	}
	jobRep, err := srv.RecoverJobs(startupCtx)
	if err != nil {
		cancelStartup()
		logger.Error("job recovery failed", "err", err)
		os.Exit(1)
	}
	recRep, err := srv.RecoverReconcilers(startupCtx)
	cancelStartup()
	if err != nil {
		logger.Error("reconciler recovery failed", "err", err)
		os.Exit(1)
	}
	if recRep.Resumed > 0 || recRep.Orphaned > 0 {
		logger.Info("reconcilers resumed", "resumed", recRep.Resumed, "orphaned", recRep.Orphaned)
	}
	if len(wsRep.Reopened) > 0 || jobRep.Restored > 0 {
		logger.Info("recovered after restart",
			"workspaces", len(wsRep.Reopened), "stale_journals", len(wsRep.Journals),
			"jobs", jobRep.Restored, "requeued", jobRep.Requeued,
			"resumed", jobRep.Resumed, "orphaned", jobRep.Orphaned)
	}

	// Graceful shutdown: first signal drains (HTTP, then jobs, then
	// workspace closes) under the drain budget; a second signal hard-kills.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logger.Info("shutting down", "drain_timeout", *drainTimeout)
		go func() {
			<-sigs
			logger.Error("second signal: exiting immediately")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()

	logger.Info("cloudlessd listening", "addr", *addr, "cloud", *cloudURL,
		"workers", *workers, "auth", *tokens != "")
	if err := srv.ListenAndServe(*addr); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// parsePairs parses "principal=token,principal=token" into token->principal.
func parsePairs(s string) map[string]string {
	out := map[string]string{}
	for _, pair := range splitList(s) {
		p, tok, ok := strings.Cut(pair, "=")
		if ok && p != "" && tok != "" {
			out[tok] = p
		}
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
