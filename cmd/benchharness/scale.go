package main

// SC: the scale-out planning core (§3.3 at 100k-resource ambitions). Three
// claims, measured on randomized DAG topologies:
//
//  1. Incremental replan: after a one-resource edit, a cached replan
//     re-evaluates only the dirty subtree — orders of magnitude fewer
//     instance evaluations than a full replan, byte-identical output.
//  2. Partitioned parallel evaluation: the work-stealing plan walk scales
//     with workers while producing byte-identical plans.
//  3. Bulk cloud ops: a batched apply spends a small fraction of the
//     admitted control-plane calls an unbatched walker needs, and a drift
//     poll verifies hundreds of foreign events in a handful of batched
//     reads.
//
// The -json-sc output (BENCH_scale.json) is the recorded baseline; a later
// run with -baseline-sc fails (exit 1) if the watched 2k-graph incremental
// evaluation count regressed more than 5% — the deterministic proxy for
// "the planner got slower".

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/workload"
)

var (
	jsonOutSC     string
	baselineSC    string
	scGraphSizes  = []int{333, 1333, 6666} // decl counts -> ~500 / ~2k / ~10k instances
	scWatchedSize = 1333                   // the 2k-instance graph the guard watches
)

type scSizeResult struct {
	Instances      int     `json:"instances"`
	FullPlanMs     float64 `json:"full_plan_ms"`
	FullEvaluated  int     `json:"full_evaluated"`
	IncrPlanMs     float64 `json:"incr_plan_ms"`
	IncrEvaluated  int     `json:"incr_evaluated"`
	ReplayPlanMs   float64 `json:"replay_plan_ms"`
	ReplayEvals    int     `json:"replay_evaluated"`
	EvalReduction  float64 `json:"eval_reduction_x"`
	PlanSpeedup    float64 `json:"plan_speedup_x"`
	ByteIdentical  bool    `json:"byte_identical"`
	ParallelSpeedX float64 `json:"parallel_speedup_x,omitempty"`
}

type scResult struct {
	Experiment string         `json:"experiment"`
	Workers    int            `json:"workers"`
	Sizes      []scSizeResult `json:"sizes"`
	// Watched guard metric: incremental evaluations after a one-resource
	// edit on the 2k-instance graph. Deterministic; >5% regression fails.
	WatchedIncrEvaluated int `json:"watched_incr_evaluated"`
	// Bulk-ops ratios on the 2k graph.
	ApplyCallsUnbatched    int64   `json:"apply_calls_unbatched"`
	ApplyCallsBatched      int64   `json:"apply_calls_batched"`
	ApplyCallReduction     float64 `json:"apply_call_reduction_x"`
	DriftEventsVerified    int     `json:"drift_events_verified"`
	DriftVerifyCalls       int     `json:"drift_verify_calls"`
	DriftVerifyReductionX  float64 `json:"drift_verify_reduction_x"`
	BaselineIncrEvaluated  int     `json:"baseline_incr_evaluated,omitempty"`
	BaselineRegressionFrac float64 `json:"baseline_regression_frac,omitempty"`
}

// planDigest is a cheap canonical fingerprint of everything a plan consumer
// observes; equal digests mean byte-identical plans.
func planDigest(p *plan.Plan) uint64 {
	h := fnv.New64a()
	addrs := make([]string, 0, len(p.Changes))
	for a := range p.Changes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	w := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	attrs := func(m map[string]eval.Value) {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			w(n)
			w(m[n].String())
		}
	}
	for _, a := range addrs {
		ch := p.Changes[a]
		w(a)
		w(ch.Action.String())
		w(ch.Type)
		w(ch.Region)
		w(ch.ID)
		attrs(ch.Before)
		attrs(ch.After)
		for _, c := range ch.ChangedAttrs {
			w(c)
		}
		for _, d := range ch.Deps {
			w(d)
		}
	}
	for _, n := range p.Graph.Nodes() {
		deps := p.Graph.Dependencies(n)
		sort.Strings(deps)
		w(n)
		for _, d := range deps {
			w(d)
		}
	}
	w(p.Summary())
	return h.Sum64()
}

func medianMs(samples []time.Duration) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(samples[len(samples)/2].Microseconds()) / 1000
}

func sc() {
	ctx := context.Background()
	workers := runtime.NumCPU()
	out := scResult{Experiment: "SC", Workers: workers}
	rows := [][]string{}

	for _, decls := range scGraphSizes {
		files := workload.RandomDAG(decls, 7)
		ex := mustExpand(files)

		// Converge a simulated fleet with the batched walker so the replan
		// measurements run against realistic prior state.
		sim := fastSim()
		p0 := mustPlan(ex, state.New(), plan.Options{})
		res := apply.Apply(ctx, sim, p0, apply.Options{
			Principal: "cloudless", Concurrency: 256, BatchOps: true,
		})
		if err := res.Err(); err != nil {
			panic(err)
		}
		prior := res.State

		// Warm the cache, then edit one VM declaration.
		cache := plan.NewReplanCache()
		mustPlan(ex, prior, plan.Options{Cache: cache})
		edit := decls % 3
		files["rand.ccl"] = replaceOnceStr(files["rand.ccl"],
			fmt.Sprintf("name    = %q", fmt.Sprintf("r-vm-%d", edit)),
			fmt.Sprintf("name    = %q", fmt.Sprintf("r-vm-%d-edited", edit)))
		ex2 := mustExpand(files)

		const reps = 3
		var fullT, replayT []time.Duration
		var full, incr, replay *plan.Plan
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			full = mustPlan(ex2, prior, plan.Options{Concurrency: workers})
			fullT = append(fullT, time.Since(t0))
		}
		// First cached plan after the edit: config invalidation, dirty
		// subtree re-evaluated. Subsequent ones: clean replay, zero
		// evaluation — measured separately so neither hides the other.
		t0 := time.Now()
		incr = mustPlan(ex2, prior, plan.Options{Concurrency: workers, Cache: cache})
		incrT := time.Since(t0)
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			replay = mustPlan(ex2, prior, plan.Options{Concurrency: workers, Cache: cache})
			replayT = append(replayT, time.Since(t0))
		}
		identical := planDigest(full) == planDigest(incr) && planDigest(full) == planDigest(replay)
		if !identical {
			panic(fmt.Sprintf("SC: incremental plan diverged from full plan at %d decls", decls))
		}

		r := scSizeResult{
			Instances:     len(ex.Instances),
			FullPlanMs:    medianMs(fullT),
			FullEvaluated: full.EvaluatedInstances,
			IncrPlanMs:    float64(incrT.Microseconds()) / 1000,
			IncrEvaluated: incr.EvaluatedInstances,
			ReplayPlanMs:  medianMs(replayT),
			ReplayEvals:   replay.EvaluatedInstances,
			ByteIdentical: identical,
		}
		if r.IncrEvaluated > 0 {
			r.EvalReduction = float64(r.FullEvaluated) / float64(r.IncrEvaluated)
		}
		if r.IncrPlanMs > 0 {
			r.PlanSpeedup = r.FullPlanMs / r.IncrPlanMs
		}

		// Parallel evaluation scaling on the largest graph only (the small
		// ones are dominated by fixed costs).
		if decls == scGraphSizes[len(scGraphSizes)-1] {
			t0 := time.Now()
			seq := mustPlan(ex2, prior, plan.Options{Concurrency: 1})
			seqMs := float64(time.Since(t0).Microseconds()) / 1000
			if planDigest(seq) != planDigest(full) {
				panic("SC: parallel plan diverged from sequential plan")
			}
			if r.FullPlanMs > 0 {
				r.ParallelSpeedX = seqMs / r.FullPlanMs
			}
			fmt.Printf("parallel evaluation on %d instances: %d workers = %.2fx vs 1 worker (byte-identical)\n",
				r.Instances, workers, r.ParallelSpeedX)
		}
		if decls == scWatchedSize {
			out.WatchedIncrEvaluated = r.IncrEvaluated
		}
		out.Sizes = append(out.Sizes, r)
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Instances),
			fmt.Sprintf("%.1f", r.FullPlanMs), fmt.Sprintf("%d", r.FullEvaluated),
			fmt.Sprintf("%.1f", r.IncrPlanMs), fmt.Sprintf("%d", r.IncrEvaluated),
			fmt.Sprintf("%.1f", r.ReplayPlanMs),
			fmt.Sprintf("%.0fx", r.EvalReduction), fmt.Sprintf("%.1fx", r.PlanSpeedup),
			fmt.Sprintf("%v", r.ByteIdentical),
		})
	}
	table("instances\tfull ms\tfull evals\tincr ms\tincr evals\treplay ms\teval redux\tspeedup\tidentical", rows)

	// Bulk ops on the watched graph: admitted calls per resource, batched
	// vs unbatched, and batched drift verification.
	files := workload.RandomDAG(scWatchedSize, 7)
	ex := mustExpand(files)
	p := mustPlan(ex, state.New(), plan.Options{})
	simA := fastSim()
	resA := apply.Apply(ctx, simA, p, apply.Options{Principal: "cloudless", Concurrency: 256})
	if err := resA.Err(); err != nil {
		panic(err)
	}
	out.ApplyCallsUnbatched = simA.Metrics().Calls

	simB := fastSim()
	pB := mustPlan(ex, state.New(), plan.Options{})
	resB := apply.Apply(ctx, simB, pB, apply.Options{
		Principal: "cloudless", Concurrency: 256, BatchOps: true,
	})
	if err := resB.Err(); err != nil {
		panic(err)
	}
	out.ApplyCallsBatched = simB.Metrics().Calls
	if out.ApplyCallsBatched > 0 {
		out.ApplyCallReduction = float64(out.ApplyCallsUnbatched) / float64(out.ApplyCallsBatched)
	}

	// Drift: a foreign principal touches 200 VMs; the watcher verifies all
	// of them in ceil(200/MaxBatchItems) batched reads.
	w := drift.NewWatcher(simB, "cloudless", simB.LastSeq())
	touched := 0
	for _, addr := range resB.State.Addrs() {
		rs := resB.State.Get(addr)
		if rs.Type != "aws_virtual_machine" || touched >= 200 {
			continue
		}
		if _, err := simB.Update(ctx, cloud.UpdateRequest{
			Type: rs.Type, ID: rs.ID,
			Attrs:     map[string]eval.Value{"name": eval.String(rs.ID + "-drifted")},
			Principal: "legacy-script",
		}); err != nil {
			panic(err)
		}
		touched++
	}
	rep, err := w.Poll(ctx, resB.State)
	if err != nil {
		panic(err)
	}
	out.DriftEventsVerified = touched
	out.DriftVerifyCalls = rep.APICalls
	if rep.APICalls > 0 {
		out.DriftVerifyReductionX = float64(touched) / float64(rep.APICalls)
	}
	table("bulk ops\tunbatched\tbatched\treduction", [][]string{
		{"apply calls (2k graph)", fmt.Sprintf("%d", out.ApplyCallsUnbatched),
			fmt.Sprintf("%d", out.ApplyCallsBatched), fmt.Sprintf("%.0fx", out.ApplyCallReduction)},
		{"drift verify calls", fmt.Sprintf("%d", out.DriftEventsVerified),
			fmt.Sprintf("%d", out.DriftVerifyCalls), fmt.Sprintf("%.0fx", out.DriftVerifyReductionX)},
	})

	// Regression guard against a recorded baseline.
	if baselineSC != "" {
		raw, err := os.ReadFile(baselineSC)
		if err != nil {
			fmt.Fprintf(os.Stderr, "SC baseline: %s\n", err)
			os.Exit(1)
		}
		var base scResult
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "SC baseline: %s\n", err)
			os.Exit(1)
		}
		if base.WatchedIncrEvaluated > 0 {
			out.BaselineIncrEvaluated = base.WatchedIncrEvaluated
			out.BaselineRegressionFrac = float64(out.WatchedIncrEvaluated-base.WatchedIncrEvaluated) /
				float64(base.WatchedIncrEvaluated)
			fmt.Printf("guard: watched incr evaluations %d vs baseline %d (%+.1f%%)\n",
				out.WatchedIncrEvaluated, base.WatchedIncrEvaluated, 100*out.BaselineRegressionFrac)
			if out.BaselineRegressionFrac > 0.05 {
				fmt.Fprintf(os.Stderr, "SC: incremental replan regressed >5%% vs baseline\n")
				os.Exit(1)
			}
		}
	}

	if jsonOutSC != "" {
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutSC, append(raw, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutSC)
	}
}

// replaceOnceStr swaps the first occurrence of old for new.
func replaceOnceStr(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
