// Command benchharness regenerates the evaluation tables E1–E10 defined in
// DESIGN.md. Each table operationalizes one claim from §3 of the Cloudless
// paper, comparing the cloudless mechanism against the baseline behaviour
// of today's IaC engines. Results are printed as aligned text tables;
// EXPERIMENTS.md records a captured run.
//
//	go run ./cmd/benchharness            # all experiments
//	go run ./cmd/benchharness -only E3   # one experiment
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/config"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/plan"
	"cloudless/internal/policy"
	"cloudless/internal/port"
	"cloudless/internal/rollback"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
	"cloudless/internal/telemetry"
	"cloudless/internal/validate"
	"cloudless/internal/workload"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E10, ET, SD, PV, CR, HG, EV, SC, SV, DR, RC)")
	flag.StringVar(&jsonOut, "json", "", "write machine-readable results (currently: ET) to this file")
	flag.StringVar(&jsonOutSD, "json-sd", "", "write machine-readable SD results to this file")
	flag.StringVar(&jsonOutPV, "json-pv", "", "write machine-readable PV results to this file")
	flag.StringVar(&jsonOutCR, "json-cr", "", "write machine-readable CR results to this file")
	flag.StringVar(&jsonOutHG, "json-hg", "", "write machine-readable HG results to this file")
	flag.StringVar(&jsonOutEV, "json-ev", "", "write machine-readable EV results to this file")
	flag.StringVar(&jsonOutSC, "json-sc", "", "write machine-readable SC results to this file")
	flag.StringVar(&jsonOutSV, "json-sv", "", "write machine-readable SV results to this file")
	flag.StringVar(&jsonOutDR, "json-dr", "", "write machine-readable DR results to this file")
	flag.StringVar(&jsonOutRC, "json-rc", "", "write machine-readable RC results to this file")
	flag.StringVar(&baselineSC, "baseline-sc", "", "compare SC against a recorded BENCH_scale.json; exit 1 on >5% regression")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"E1", "deployment makespan: parallel + critical path vs today's walks (§3.3)", e1},
		{"E2", "scheduling policy under bounded concurrency (§3.3)", e2},
		{"E3", "incremental planning vs full replan (§3.3)", e3},
		{"E4", "per-resource locks vs global lock for concurrent teams (§3.4)", e4},
		{"E5", "transaction isolation and throughput (§3.4)", e5},
		{"E6", "compile-time vs deploy-time validation (§3.2)", e6},
		{"E7", "drift detection: activity log vs full scan (§3.5)", e7},
		{"E8", "minimal rollback vs destroy-and-redeploy (§3.4)", e8},
		{"E9", "porting quality: naive vs optimized vs modules (§3.1)", e9},
		{"E10", "policy controller: decision latency and outlier detection (§3.6)", e10},
		{"ET", "telemetry instrumentation overhead: traced vs untraced apply and plan", et},
		{"SD", "state storage engines: churn throughput and plan-during-apply (§3.4)", sd},
		{"PV", "provider runtime: coalesced drift scans and AIMD apply under 429s", pv},
		{"CR", "crash recovery: randomized kill/restart/recover convergence (§3.5, §3.6)", cr},
		{"HG", "health-gated progressive applies: guarded vs unguarded under readiness faults (§24)", hg},
		{"EV", "live ops plane: event-bus throughput, subscriber tax on apply, drop accounting (§25)", ev},
		{"SC", "scale-out planning core: incremental replan, parallel evaluation, bulk ops (§26)", sc},
		{"SV", "workspace server: multi-tenant job latency and fairness under 2x overload (§27)", sv},
		{"DR", "daemon disaster recovery: SIGKILL/restart chaos, zero lost jobs, replay cost (§28)", dr},
		{"RC", "continuous reconciliation: event-driven converge loop vs periodic FullScan, never-worse repair, breaker (§29)", rc},
	}
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.name)
		e.run()
		fmt.Println()
	}
}

func table(header string, rows [][]string) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, header)
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush()
}

func mustExpand(files map[string]string) *config.Expansion {
	m, diags := config.Load(files)
	if diags.HasErrors() {
		panic(diags.Error())
	}
	ex, diags := config.Expand(m, nil, nil)
	if diags.HasErrors() {
		panic(diags.Error())
	}
	return ex
}

func mustPlan(ex *config.Expansion, prior *state.State, opts plan.Options) *plan.Plan {
	p, diags := plan.Compute(context.Background(), ex, prior, opts)
	if diags.HasErrors() {
		panic(diags.Error())
	}
	return p
}

func fastSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	return cloud.NewSim(opts)
}

func deploy(files map[string]string) (*cloud.Sim, *state.State, *config.Expansion) {
	sim := fastSim()
	ex := mustExpand(files)
	p := mustPlan(ex, state.New(), plan.Options{})
	res := apply.Apply(context.Background(), sim, p, apply.Options{Principal: "cloudless"})
	if err := res.Err(); err != nil {
		panic(err)
	}
	return sim, res.State, ex
}

func simSec(d time.Duration) string { return fmt.Sprintf("%.0fs", d.Seconds()) }

// E1: deployment makespan across topology sizes.
func e1() {
	rows := [][]string{}
	for _, vms := range []int{10, 25, 50, 100, 200} {
		ex := mustExpand(workload.WebTier("web", 4, vms))
		p := mustPlan(ex, state.New(), plan.Options{})
		seq, _ := apply.SimulateSchedule(p.Graph, p.Costs(), 1, apply.FIFOScheduler)
		fifo10, _ := apply.SimulateSchedule(p.Graph, p.Costs(), 10, apply.FIFOScheduler)
		cp10, _ := apply.SimulateSchedule(p.Graph, p.Costs(), 10, apply.CriticalPathScheduler)
		cpInf, _ := apply.SimulateSchedule(p.Graph, p.Costs(), 0, apply.CriticalPathScheduler)
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Graph.Len()),
			simSec(seq.Makespan), simSec(fifo10.Makespan), simSec(cp10.Makespan), simSec(cpInf.Makespan),
			fmt.Sprintf("%.1fx", float64(seq.Makespan)/float64(cp10.Makespan)),
		})
	}
	table("resources\tsequential\tfifo(10)\tcritical-path(10)\tcp(unbounded)\tspeedup(cp10 vs seq)", rows)
}

// E2: FIFO vs critical-path across fan widths and concurrency.
func e2() {
	rows := [][]string{}
	for _, fan := range []int{8, 16, 32, 64} {
		ex := mustExpand(workload.SkewedLatency(fan))
		p := mustPlan(ex, state.New(), plan.Options{})
		for _, conc := range []int{2, 4, 8} {
			fifo, _ := apply.SimulateSchedule(p.Graph, p.Costs(), conc, apply.FIFOScheduler)
			cp, _ := apply.SimulateSchedule(p.Graph, p.Costs(), conc, apply.CriticalPathScheduler)
			rows = append(rows, []string{
				fmt.Sprintf("%d", fan), fmt.Sprintf("%d", conc),
				simSec(fifo.Makespan), simSec(cp.Makespan),
				fmt.Sprintf("%.2fx", float64(fifo.Makespan)/float64(cp.Makespan)),
			})
		}
	}
	table("fan-width\tconcurrency\tfifo\tcritical-path\timprovement", rows)
}

// E3: full replan vs incremental for a 1-resource-group delta.
func e3() {
	rows := [][]string{}
	for _, vms := range []int{25, 50, 100, 200} {
		files := workload.WebTier("web", 4, vms)
		sim, st, _ := deploy(files)
		files["web.ccl"] = strings.Replace(files["web.ccl"],
			`"web-web-${count.index}"`, `"web-web-v2-${count.index}"`, 1)
		ex := mustExpand(files)

		t0 := time.Now()
		full := mustPlan(ex, st, plan.Options{Refresh: true, Cloud: sim})
		fullT := time.Since(t0)

		t0 = time.Now()
		incr := mustPlan(ex, st, plan.Options{Refresh: true, Cloud: sim,
			ImpactScope: []string{"aws_virtual_machine.web"}})
		incrT := time.Since(t0)

		if full.Updates != incr.Updates {
			panic("incremental plan found a different delta")
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", st.Len()),
			fmt.Sprintf("%d", full.RefreshReads), fmt.Sprintf("%d", incr.RefreshReads),
			fmt.Sprintf("%d", full.EvaluatedInstances), fmt.Sprintf("%d", incr.EvaluatedInstances),
			fullT.Round(time.Millisecond).String(), incrT.Round(time.Millisecond).String(),
		})
	}
	table("state-size\trefresh(full)\trefresh(incr)\teval(full)\teval(incr)\ttime(full)\ttime(incr)", rows)
}

// E4: concurrent disjoint team updates.
func e4() {
	rows := [][]string{}
	const perTeamWork = 10 * time.Millisecond
	for _, teams := range []int{2, 4, 8, 16} {
		seed := func() *state.State {
			st := state.New()
			for t := 0; t < teams; t++ {
				addr := fmt.Sprintf("aws_storage_bucket.t%d", t)
				st.Set(&state.ResourceState{Addr: addr, Type: "aws_storage_bucket",
					ID: fmt.Sprintf("b%d", t), Attrs: map[string]eval.Value{"n": eval.Int(0)}})
			}
			return st
		}
		run := func(mode statedb.LockMode) time.Duration {
			db := statedb.Open(seed(), mode)
			start := time.Now()
			done := make(chan struct{}, teams)
			for t := 0; t < teams; t++ {
				go func(team int) {
					txn := db.Begin("team")
					addr := fmt.Sprintf("aws_storage_bucket.t%d", team)
					if err := txn.Lock(context.Background(), addr); err != nil {
						panic(err)
					}
					time.Sleep(perTeamWork)
					rs, _ := txn.Get(addr)
					rs.Attrs["n"] = eval.Int(1)
					_ = txn.Put(rs)
					if _, err := txn.Commit(); err != nil {
						panic(err)
					}
					done <- struct{}{}
				}(t)
			}
			for t := 0; t < teams; t++ {
				<-done
			}
			return time.Since(start)
		}
		g := run(statedb.GlobalLock)
		r := run(statedb.ResourceLock)
		rows = append(rows, []string{
			fmt.Sprintf("%d", teams),
			g.Round(time.Millisecond).String(), r.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(g)/float64(r)),
		})
	}
	table("teams\tglobal-lock\tper-resource\tspeedup", rows)
}

// E5: transaction throughput and the lost-update check.
func e5() {
	st := state.New()
	st.Set(&state.ResourceState{Addr: "aws_storage_bucket.hot", Type: "aws_storage_bucket",
		ID: "hot", Attrs: map[string]eval.Value{"n": eval.Int(0)}})
	rows := [][]string{}
	for _, writers := range []int{1, 4, 16} {
		db := statedb.Open(st, statedb.ResourceLock)
		const perWriter = 500
		start := time.Now()
		done := make(chan struct{}, writers)
		for w := 0; w < writers; w++ {
			go func() {
				for i := 0; i < perWriter; i++ {
					txn := db.Begin("inc")
					_ = txn.Lock(context.Background(), "aws_storage_bucket.hot")
					rs, _ := txn.Get("aws_storage_bucket.hot")
					rs.Attrs["n"] = eval.Int(rs.Attr("n").AsInt() + 1)
					_ = txn.Put(rs)
					_, _ = txn.Commit()
				}
				done <- struct{}{}
			}()
		}
		for w := 0; w < writers; w++ {
			<-done
		}
		elapsed := time.Since(start)
		final := db.Snapshot().Get("aws_storage_bucket.hot").Attr("n").AsInt()
		want := writers * perWriter
		rows = append(rows, []string{
			fmt.Sprintf("%d", writers),
			fmt.Sprintf("%.0f txn/s", float64(want)/elapsed.Seconds()),
			fmt.Sprintf("%d/%d", final, want),
			map[bool]string{true: "none", false: "LOST UPDATES"}[final == want],
		})
	}
	table("writers\tthroughput\tcommitted/expected\tlost-updates", rows)
}

// E6: a corpus of configurations with seeded cloud-constraint violations.
func e6() {
	type seeded struct {
		name string
		src  string
	}
	corpus := []seeded{
		{"region-mismatch", `
resource "azure_resource_group" "rg" {
  name     = "rg"
  location = "westus"
}
resource "azure_virtual_network" "v" {
  name           = "v"
  location       = "westus"
  resource_group = azure_resource_group.rg.id
  address_space  = ["10.0.0.0/16"]
}
resource "azure_subnet" "s" {
  virtual_network_id = azure_virtual_network.v.id
  address_prefix     = "10.0.1.0/24"
  location           = "westus"
}
resource "azure_network_interface" "nic" {
  name      = "nic"
  location  = "westus"
  subnet_id = azure_subnet.s.id
}
resource "azure_virtual_machine" "vm" {
  name     = "vm"
  location = "eastus"
  nic_ids  = [azure_network_interface.nic.id]
}`},
		{"password-coreq", `
resource "azure_resource_group" "rg2" {
  name     = "rg2"
  location = "eastus"
}
resource "azure_virtual_network" "v2" {
  name           = "v2"
  resource_group = azure_resource_group.rg2.id
  address_space  = ["10.0.0.0/16"]
}
resource "azure_subnet" "s2" {
  virtual_network_id = azure_virtual_network.v2.id
  address_prefix     = "10.0.1.0/24"
}
resource "azure_network_interface" "nic2" {
  name      = "nic2"
  subnet_id = azure_subnet.s2.id
}
resource "azure_virtual_machine" "vm2" {
  name           = "vm2"
  nic_ids        = [azure_network_interface.nic2.id]
  admin_password = "hunter2"
}`},
		{"peering-overlap", `
resource "azure_resource_group" "rg3" {
  name     = "rg3"
  location = "eastus"
}
resource "azure_virtual_network" "a3" {
  name           = "a3"
  resource_group = azure_resource_group.rg3.id
  address_space  = ["10.0.0.0/16"]
}
resource "azure_virtual_network" "b3" {
  name           = "b3"
  resource_group = azure_resource_group.rg3.id
  address_space  = ["10.0.128.0/17"]
}
resource "azure_vnet_peering" "p3" {
  vnet_a_id = azure_virtual_network.a3.id
  vnet_b_id = azure_virtual_network.b3.id
}`},
		{"subnet-outside-vpc", `
resource "aws_vpc" "v4" {
  name       = "v4"
  cidr_block = "10.0.0.0/16"
}
resource "aws_subnet" "s4" {
  vpc_id     = aws_vpc.v4.id
  cidr_block = "192.168.0.0/24"
}`},
		{"ref-type-misuse", `
resource "aws_vpc" "v5" {
  name       = "v5"
  cidr_block = "10.0.0.0/16"
}
resource "aws_network_interface" "n5" {
  name      = "n5"
  subnet_id = aws_vpc.v5.id
}`},
	}
	rows := [][]string{}
	for _, c := range corpus {
		ex := mustExpand(map[string]string{"main.ccl": c.src})

		// Cloudless: compile time, zero API calls.
		t0 := time.Now()
		res := validate.Validate(ex, nil)
		valT := time.Since(t0)
		caught := res.HasErrors()

		// Baseline: deploy until the cloud errors out.
		sim := fastSim()
		p := mustPlan(ex, state.New(), plan.Options{})
		ares := apply.Apply(context.Background(), sim, p, apply.Options{ContinueOnError: true, MaxRetries: 1})
		deployFailed := ares.Err() != nil
		wasted := sim.Metrics().Creates // resources provisioned before the failure

		rows = append(rows, []string{
			c.name,
			map[bool]string{true: "caught", false: "MISSED"}[caught],
			valT.Round(time.Microsecond).String(),
			map[bool]string{true: "failed at deploy", false: "deployed?!"}[deployFailed],
			fmt.Sprintf("%d created + %d API calls wasted", wasted, sim.Metrics().Calls),
		})
	}
	table("violation\tcloudless(compile)\tvalidate-time\tbaseline outcome\tbaseline waste", rows)
}

// E7: drift detection cost across fleet sizes.
func e7() {
	rows := [][]string{}
	ctx := context.Background()
	for _, services := range []int{4, 8, 16, 32} {
		sim, st, _ := deploy(workload.Microservices(services, 3))
		vpc := st.Get("aws_vpc.mesh")
		w := drift.NewWatcher(sim, "cloudless", sim.LastSeq())
		if _, err := sim.Update(ctx, cloud.UpdateRequest{Type: "aws_vpc", ID: vpc.ID,
			Attrs: map[string]eval.Value{"name": eval.String("rogue")}, Principal: "rogue"}); err != nil {
			panic(err)
		}
		t0 := time.Now()
		scan, err := drift.FullScan(ctx, sim, st)
		if err != nil {
			panic(err)
		}
		scanT := time.Since(t0)
		t0 = time.Now()
		watch, err := w.Poll(ctx, st)
		if err != nil {
			panic(err)
		}
		watchT := time.Since(t0)
		if !scan.HasDrift() || !watch.HasDrift() {
			panic("drift not detected")
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", st.Len()),
			fmt.Sprintf("%d calls / %s", scan.APICalls, scanT.Round(time.Millisecond)),
			fmt.Sprintf("%d call / %s", watch.APICalls, watchT.Round(time.Millisecond)),
			fmt.Sprintf("%.0fx fewer calls", float64(scan.APICalls)/float64(max(watch.APICalls, 1))),
		})
	}
	table("resources\tfull-scan\tactivity-log\treduction", rows)
}

// E8: rollback redeployment across irreversible-change rates.
func e8() {
	rows := [][]string{}
	for _, irreversible := range []int{0, 1, 4, 16} {
		_, st, _ := deploy(workload.WebTier("web", 4, 30))
		target := st.Clone()
		// 10 reversible renames + N irreversible image changes.
		for i := 0; i < 10; i++ {
			st.Get(fmt.Sprintf("aws_virtual_machine.web[%d]", i)).Attrs["name"] = eval.String(fmt.Sprintf("x-%d", i))
		}
		for i := 0; i < irreversible; i++ {
			st.Get(fmt.Sprintf("aws_virtual_machine.web[%d]", 10+i)).Attrs["image"] = eval.String("ami-x")
		}
		p := rollback.Compute(st, target)
		rows = append(rows, []string{
			fmt.Sprintf("%d", irreversible),
			fmt.Sprintf("%d", p.Reverts),
			fmt.Sprintf("%d", p.Redeployments),
			fmt.Sprintf("%d", target.Len()),
			fmt.Sprintf("%.0f%%", 100*(1-float64(p.Redeployments)/float64(target.Len()))),
		})
	}
	table("irreversible-changes\tin-place-reverts\tredeployments\tbaseline(redeploy all)\tredeployment avoided", rows)
}

// E9: porting quality across fleet sizes and modes.
func e9() {
	ctx := context.Background()
	rows := [][]string{}
	for _, nics := range []int{8, 32, 128} {
		sim := fastSim()
		vpc, _ := sim.Create(ctx, cloud.CreateRequest{Type: "aws_vpc", Region: "us-east-1",
			Attrs: map[string]eval.Value{"name": eval.String("legacy"), "cidr_block": eval.String("10.0.0.0/16")}})
		sub, _ := sim.Create(ctx, cloud.CreateRequest{Type: "aws_subnet", Region: "us-east-1",
			Attrs: map[string]eval.Value{"vpc_id": eval.String(vpc.ID), "cidr_block": eval.String("10.0.1.0/24")}})
		for i := 0; i < nics; i++ {
			if _, err := sim.Create(ctx, cloud.CreateRequest{Type: "aws_network_interface", Region: "us-east-1",
				Attrs: map[string]eval.Value{
					"name":      eval.String(fmt.Sprintf("fleet-nic-%d", i)),
					"subnet_id": eval.String(sub.ID),
				}}); err != nil {
				panic(err)
			}
		}
		naive, err := port.Import(ctx, sim, port.ImportOptions{})
		if err != nil {
			panic(err)
		}
		opt, err := port.Import(ctx, sim, port.ImportOptions{Optimize: true})
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", naive.Metrics.ResourceInstances),
			fmt.Sprintf("%d loc / %d blocks", naive.Metrics.Lines, naive.Metrics.Blocks),
			fmt.Sprintf("%d loc / %d blocks", opt.Metrics.Lines, opt.Metrics.Blocks),
			fmt.Sprintf("%.1fx", opt.Metrics.CompactionRatio),
			fmt.Sprintf("%.0f%%", opt.Metrics.ReferenceRatio*100),
		})
	}
	table("resources\tnaive output\toptimized output\tcompaction\treferences linked", rows)
}

// E10: policy decision latency + outlier detection accuracy.
func e10() {
	ps, diags := policy.ParsePolicies("p.ccl", `
policy "scale" {
  phase = "operate"
  when  = metric.load > 0.8
  scale {
    variable = "n"
    delta    = 1
    max      = 1000000
  }
}
`)
	if diags.HasErrors() {
		panic(diags.Error())
	}
	eng := policy.NewEngine(ps)
	eng.Vars["n"] = eval.Int(1)
	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, d := eng.Observe(map[string]eval.Value{"load": eval.Number(0.9)}); d.HasErrors() {
			panic(d.Error())
		}
	}
	perDecision := time.Since(start) / iters
	fmt.Printf("observation -> decision round trip: %s/decision (%d decisions)\n",
		perDecision.Round(time.Microsecond), iters)

	// Outlier detection on a seeded corpus: 50 conventional buckets, then a
	// batch of 10 with 3 seeded deviations.
	corpusSrc := ""
	for i := 0; i < 50; i++ {
		corpusSrc += fmt.Sprintf("resource \"aws_storage_bucket\" \"b%d\" {\n  name = \"b-%d\"\n  versioning = true\n}\n", i, i)
	}
	ts := policy.NewTemplateSet()
	ts.Learn(mustExpand(map[string]string{"c.ccl": corpusSrc}))

	newSrc := ""
	for i := 0; i < 10; i++ {
		v := "true"
		if i < 3 {
			v = "false" // seeded outliers
		}
		newSrc += fmt.Sprintf("resource \"aws_storage_bucket\" \"n%d\" {\n  name = \"n-%d\"\n  versioning = %s\n}\n", i, i, v)
	}
	outliers := ts.Detect(mustExpand(map[string]string{"n.ccl": newSrc}), policy.DetectOptions{})
	tp := 0
	for _, o := range outliers {
		if o.Attr == "versioning" {
			tp++
		}
	}
	fmt.Printf("outlier detection: %d seeded deviations, %d flagged (%d true positives, %d false positives)\n",
		3, len(outliers), tp, len(outliers)-tp)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// jsonOut, when non-empty, receives machine-readable ET results.
var jsonOut string

// etResult is the recorded outcome of the ET overhead experiment.
type etResult struct {
	Experiment       string               `json:"experiment"`
	Runs             int                  `json:"runs"`
	ApplyOffMs       float64              `json:"apply_ms_off"`
	ApplyOnMs        float64              `json:"apply_ms_on"`
	ApplyOverheadPct float64              `json:"apply_overhead_pct"`
	PlanOffMs        float64              `json:"plan_ms_off"`
	PlanOnMs         float64              `json:"plan_ms_on"`
	PlanOverheadPct  float64              `json:"plan_overhead_pct"`
	SpansRecorded    int                  `json:"spans_recorded"`
	APICalls         int64                `json:"api_calls"`
	SpanSummary      []telemetry.SpanStat `json:"span_summary"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort; n is tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// telemetrySummaryTable prints the per-span p50/p95 attribution and API-call
// counts a traced run produced.
func telemetrySummaryTable(rec *telemetry.Recorder) {
	rows := [][]string{}
	msf := func(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond)) }
	for _, st := range rec.Summary() {
		rows = append(rows, []string{st.Name, fmt.Sprintf("%d", st.Count),
			msf(st.Total), msf(st.P50), msf(st.P95), msf(st.Max)})
	}
	table("span\tcount\ttotal\tp50\tp95\tmax", rows)
	fmt.Printf("api calls: %d (throttled: %d)\n",
		rec.Metrics().CounterSum("cloud.api_calls"), rec.Metrics().CounterSum("cloud.throttled"))
}

// ET: instrumentation overhead. The same E1-style apply (real walk against
// the simulator, modeled latency scaled way down but still dominant) and
// E3-style full-refresh plan run with and without a recorder attached; the
// medians bound the telemetry tax.
func et() {
	const (
		runs = 5
		vms  = 50
	)
	files := workload.WebTier("web", 4, vms)

	simOpts := cloud.DefaultOptions()
	simOpts.DisableRateLimit = true
	simOpts.TimeScale = 0.0002 // 90s VM create -> 18ms modeled latency

	runApply := func(traced bool) (float64, *telemetry.Recorder) {
		sim := cloud.NewSim(simOpts)
		p := mustPlan(mustExpand(files), state.New(), plan.Options{})
		ctx := context.Background()
		var rec *telemetry.Recorder
		if traced {
			rec = telemetry.NewRecorder(telemetry.Config{})
			ctx = telemetry.WithRecorder(ctx, rec)
		}
		t0 := time.Now()
		res := apply.Apply(ctx, sim, p, apply.Options{
			Concurrency: 10, Scheduler: apply.CriticalPathScheduler, Principal: "cloudless",
		})
		if err := res.Err(); err != nil {
			panic(err)
		}
		return float64(time.Since(t0)) / float64(time.Millisecond), rec
	}

	// A deployed stack for the plan side: full refresh re-reads every
	// resource, the plan-time hot path.
	planSim := cloud.NewSim(simOpts)
	res0 := apply.Apply(context.Background(), planSim,
		mustPlan(mustExpand(files), state.New(), plan.Options{}),
		apply.Options{Principal: "cloudless"})
	if err := res0.Err(); err != nil {
		panic(err)
	}
	planState := res0.State
	runPlan := func(traced bool) (float64, *telemetry.Recorder) {
		ctx := context.Background()
		var rec *telemetry.Recorder
		if traced {
			rec = telemetry.NewRecorder(telemetry.Config{})
			ctx = telemetry.WithRecorder(ctx, rec)
		}
		t0 := time.Now()
		p, diags := plan.Compute(ctx, mustExpand(files), planState, plan.Options{Refresh: true, Cloud: planSim})
		if diags.HasErrors() {
			panic(diags.Error())
		}
		_ = p
		return float64(time.Since(t0)) / float64(time.Millisecond), rec
	}

	var applyOff, applyOn, planOff, planOn []float64
	var lastRec *telemetry.Recorder
	var spans int
	var apiCalls int64
	for i := 0; i < runs; i++ {
		off, _ := runApply(false)
		on, rec := runApply(true)
		applyOff, applyOn = append(applyOff, off), append(applyOn, on)
		lastRec, spans = rec, rec.SpanCount()
		apiCalls = rec.Metrics().CounterSum("cloud.api_calls")
		pOff, _ := runPlan(false)
		pOn, _ := runPlan(true)
		planOff, planOn = append(planOff, pOff), append(planOn, pOn)
	}
	res := etResult{
		Experiment: "ET", Runs: runs,
		ApplyOffMs: median(applyOff), ApplyOnMs: median(applyOn),
		PlanOffMs: median(planOff), PlanOnMs: median(planOn),
		SpansRecorded: spans, APICalls: apiCalls,
		SpanSummary: lastRec.Summary(),
	}
	res.ApplyOverheadPct = (res.ApplyOnMs - res.ApplyOffMs) / res.ApplyOffMs * 100
	res.PlanOverheadPct = (res.PlanOnMs - res.PlanOffMs) / res.PlanOffMs * 100

	table("phase\tuntraced\ttraced\toverhead", [][]string{
		{"apply (E1-style)", fmt.Sprintf("%.1fms", res.ApplyOffMs), fmt.Sprintf("%.1fms", res.ApplyOnMs), fmt.Sprintf("%+.1f%%", res.ApplyOverheadPct)},
		{"plan  (E3-style)", fmt.Sprintf("%.1fms", res.PlanOffMs), fmt.Sprintf("%.1fms", res.PlanOnMs), fmt.Sprintf("%+.1f%%", res.PlanOverheadPct)},
	})
	fmt.Printf("spans per traced apply: %d\n", spans)
	fmt.Println("\ntraced apply attribution:")
	telemetrySummaryTable(lastRec)

	if jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
}
