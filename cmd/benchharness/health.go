package main

// HG: health-gated progressive applies — guarded vs unguarded rollouts under
// injected readiness faults (DESIGN.md §24). Each trial poisons a random
// resource kind so it comes up broken, then deploys a web slice twice from
// scratch: once with a plain apply (today's engines: the cloud ACKs the
// create, the walk declares victory) and once under the guard layer (probe
// readiness, trip fuses, canary first, auto-rollback the blast radius).
//
// The scored metric is what production inherits: resources left in the cloud
// that never turned ready, plus orphans state does not know about. An
// unguarded rollout must leave broken evidence behind (> 0); a guarded one
// must leave none (= 0) — it either converges fully ready or reverts fully.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/guard"
	"cloudless/internal/plan"
	"cloudless/internal/state"
)

var jsonOutHG string

type hgResult struct {
	Experiment        string  `json:"experiment"`
	Trials            int     `json:"trials"`
	UnguardedBroken   int     `json:"unguarded_broken_left_behind"`
	UnguardedTrialsBad int    `json:"unguarded_trials_with_breakage"`
	GuardedBroken     int     `json:"guarded_broken_left_behind"`
	GuardedConverged  int     `json:"guarded_converged"`
	GuardedReverted   int     `json:"guarded_reverted"`
	GateFailures      int     `json:"gate_failures"`
	FuseTrips         int     `json:"fuse_trips"`
	AutoRollbacks     int     `json:"auto_rollbacks"`
	HealthWaitP50Ms   float64 `json:"health_wait_p50_ms"`
	HealthWaitMaxMs   float64 `json:"health_wait_max_ms"`
}

const hgSrc = `
resource "aws_vpc" "main" {
  name       = "hg"
  cidr_block = "10.0.0.0/16"
}

resource "aws_subnet" "s" {
  count      = 3
  name       = "hg-s-${count.index}"
  vpc_id     = aws_vpc.main.id
  cidr_block = cidrsubnet(aws_vpc.main.cidr_block, 8, count.index)
}

resource "aws_network_interface" "nic" {
  count     = 2
  name      = "hg-nic-${count.index}"
  subnet_id = aws_subnet.s[count.index].id
}

resource "aws_virtual_machine" "web" {
  count   = 2
  name    = "hg-web-${count.index}"
  nic_ids = [aws_network_interface.nic[count.index].id]
}
`

var hgTypes = []string{"aws_vpc", "aws_subnet", "aws_network_interface", "aws_virtual_machine"}

func hgSim() *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0.0005
	opts.ReadinessDelay = 4 * time.Second // 2ms wall-clock: probes really wait
	return cloud.NewSim(opts)
}

// hgBroken counts what a rollout left rotting in the cloud: resources whose
// health never reached ready, plus orphans the state file cannot account for.
func hgBroken(sim *cloud.Sim, st *state.State) int {
	ctx := context.Background()
	broken := 0
	deadline := time.Now().Add(5 * time.Second)
	for _, typ := range hgTypes {
		rs, err := sim.List(ctx, typ, "")
		if err != nil {
			panic(err)
		}
		for _, r := range rs {
			for {
				rep, err := sim.Health(ctx, typ, r.ID)
				if err != nil {
					panic(err)
				}
				if rep.Status == cloud.HealthReady {
					break
				}
				// Give a merely-provisioning resource time to settle so only
				// genuinely broken ones are scored.
				if rep.Status != cloud.HealthProvisioning || time.Now().After(deadline) {
					broken++
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if extra := sim.TotalResources() - st.Len(); extra > 0 {
		broken += extra
	}
	return broken
}

func hgPlan(prior *state.State) *plan.Plan {
	return mustPlan(mustExpand(map[string]string{"hg.ccl": hgSrc}), prior, plan.Options{})
}

func hg() {
	trials := 40
	if v := os.Getenv("CLOUDLESS_CHAOS_TRIALS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			panic("CLOUDLESS_CHAOS_TRIALS must be a positive integer")
		}
		trials = n
	}
	out := hgResult{Experiment: "HG", Trials: trials}
	var waits []float64

	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(77000 + trial)))
		var poison *cloud.UnhealthySpec
		if rng.Intn(4) > 0 { // 3 in 4 trials inject a readiness fault
			poison = &cloud.UnhealthySpec{
				Count: 1 + rng.Intn(2),
				Type:  hgTypes[rng.Intn(len(hgTypes))],
			}
		}
		canary := 0.0
		if rng.Intn(2) == 0 {
			canary = 0.25
		}

		// Baseline: plain apply. The cloud ACKs every create, so the walk
		// finishes "successfully" with broken resources serving traffic.
		simU := hgSim()
		if poison != nil {
			simU.InjectUnhealthy(*poison)
		}
		resU := apply.Apply(context.Background(), simU, hgPlan(state.New()),
			apply.Options{ContinueOnError: true, Principal: "cloudless"})
		if err := resU.Err(); err != nil {
			panic(fmt.Sprintf("HG trial %d: unguarded apply failed outright: %s", trial, err))
		}
		if b := hgBroken(simU, resU.State); b > 0 {
			out.UnguardedBroken += b
			out.UnguardedTrialsBad++
		}

		// Guarded: same poison, same plan, health gates + fuse + canary +
		// auto-rollback.
		simG := hgSim()
		if poison != nil {
			simG.InjectUnhealthy(*poison)
		}
		resG := guard.Run(context.Background(), simG, hgPlan(state.New()),
			apply.Options{ContinueOnError: true, Principal: "cloudless"},
			guard.Options{Canary: canary})
		switch {
		case resG.Err() == nil:
			out.GuardedConverged++
		case resG.Reverted:
			out.GuardedReverted++
			out.AutoRollbacks++
		default:
			panic(fmt.Sprintf("HG trial %d: guarded run neither converged nor reverted: %s",
				trial, resG.Err()))
		}
		out.GateFailures += resG.GateFailures
		out.FuseTrips += len(resG.FuseTripped)
		out.GuardedBroken += hgBroken(simG, resG.State)
		waits = append(waits, float64(resG.HealthWait)/float64(time.Millisecond))
	}

	sort.Float64s(waits)
	if n := len(waits); n > 0 {
		out.HealthWaitP50Ms = waits[n/2]
		out.HealthWaitMaxMs = waits[n-1]
	}

	table("metric\tunguarded\tguarded", [][]string{
		{"trials", fmt.Sprintf("%d", out.Trials), fmt.Sprintf("%d", out.Trials)},
		{"broken/orphaned left behind", fmt.Sprintf("%d", out.UnguardedBroken), fmt.Sprintf("%d", out.GuardedBroken)},
		{"trials leaving breakage", fmt.Sprintf("%d", out.UnguardedTrialsBad), "0"},
		{"converged fully ready", "-", fmt.Sprintf("%d", out.GuardedConverged)},
		{"auto-reverted cleanly", "-", fmt.Sprintf("%d", out.GuardedReverted)},
		{"gate failures caught", "-", fmt.Sprintf("%d", out.GateFailures)},
		{"fuse trips", "-", fmt.Sprintf("%d", out.FuseTrips)},
		{"readiness wait p50", "-", fmt.Sprintf("%.1fms", out.HealthWaitP50Ms)},
		{"readiness wait max", "-", fmt.Sprintf("%.1fms", out.HealthWaitMaxMs)},
	})

	if out.GuardedBroken > 0 {
		panic(fmt.Sprintf("HG: guarded rollouts left %d broken resources behind", out.GuardedBroken))
	}
	if out.UnguardedBroken == 0 {
		panic("HG: unguarded baseline left nothing broken — the injections are not biting")
	}
	if jsonOutHG != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutHG, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutHG)
	}
}
