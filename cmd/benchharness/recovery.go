package main

// CR: crash recovery — randomized kill/restart/recover convergence (§3.5,
// §3.6). Each trial deploys (or mutates) a web tier under a durable apply
// journal, kills the "process" at a random crash point — before an op
// reaches the cloud, after it landed but before the response was recorded,
// or mid-journal-write leaving a torn frame — then restarts: replay the
// journal, recover in-doubt ops under their original idempotency keys,
// sweep orphans against the activity log, re-plan, and finish. A third of
// crashed trials also crash during recovery itself and recover again.
//
// Convergence is checked exactly as the paper frames correctness for
// log-native control planes: the re-plan is a noop, every state entry
// exists in the cloud, and the cloud holds nothing state does not know
// about — zero orphans, zero duplicate creates, zero lost ops.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/workload"
)

var jsonOutCR string

type crResult struct {
	Experiment      string         `json:"experiment"`
	Trials          int            `json:"trials"`
	Converged       int            `json:"converged"`
	CrashesFired    int            `json:"crashes_fired"`
	RecoveryCrashes int            `json:"recovery_crashes"`
	ByMode          map[string]int `json:"crashes_by_mode"`
	OpsConfirmed    int            `json:"ops_confirmed_from_journal"`
	OpsResumed      int            `json:"ops_resumed_in_doubt"`
	IdemReplays     int64          `json:"idempotent_create_replays"`
	OrphansAdopted  int            `json:"orphans_adopted"`
	OrphansDeleted  int            `json:"orphans_deleted"`
	Orphans         int            `json:"orphans_remaining"`
	DuplicateCreates int           `json:"duplicate_creates"`
	LostOps         int            `json:"lost_ops"`
	RecoveryP50Ms   float64        `json:"recovery_latency_p50_ms"`
	RecoveryP95Ms   float64        `json:"recovery_latency_p95_ms"`
	RecoveryMaxMs   float64        `json:"recovery_latency_max_ms"`
}

var crModeNames = [...]string{"crash-before-op", "crash-after-op", "torn-journal-frame"}

// crExtras rides along with the web tier so the mutation phase has a
// resource it can replace and one it can delete without tripping the sim's
// dependency tracking (nothing references either of them).
const crExtras = `
resource "aws_virtual_machine" "solo" {
  name    = "cr-solo"
  nic_ids = [aws_network_interface.cr[0].id]
}

resource "aws_storage_bucket" "scratch" {
  name = "cr-scratch"
}
`

func crSrc() string {
	return workload.WebTier("cr", 2, 4)["cr.ccl"] + crExtras
}

// crMutate derives the second-phase config: a load-balancer rename (update),
// a standalone-VM image change (replace), and a bucket removal (delete), so
// mutation crashes cover every op kind.
func crMutate(src string) string {
	s := strings.Replace(src, `"cr-lb"`, `"cr-lb-v2"`, 1)
	s = strings.Replace(s, "nic_ids = [aws_network_interface.cr[0].id]",
		"nic_ids = [aws_network_interface.cr[0].id]\n  image   = \"ami-linux-2027\"", 1)
	i := strings.Index(s, `resource "aws_storage_bucket" "scratch"`)
	return s[:i]
}

func crPlan(src string, prior *state.State) *plan.Plan {
	return mustPlan(mustExpand(map[string]string{"cr.ccl": src}), prior, plan.Options{})
}

func crApply(sim *cloud.Sim, src string, prior *state.State) *state.State {
	res := apply.Apply(context.Background(), sim, crPlan(src, prior), apply.Options{})
	if err := res.Err(); err != nil {
		panic(fmt.Sprintf("CR baseline apply: %s", err))
	}
	return res.State
}

func cr() {
	trials := 200
	if v := os.Getenv("CLOUDLESS_CHAOS_TRIALS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			panic("CLOUDLESS_CHAOS_TRIALS must be a positive integer")
		}
		trials = n
	}
	dir, err := os.MkdirTemp("", "cloudless-cr")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	out := crResult{Experiment: "CR", Trials: trials, ByMode: map[string]int{}}
	var latencies []float64
	var failures []string

	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(42000 + trial)))
		sim := fastSim()
		journalPath := filepath.Join(dir, fmt.Sprintf("cr-%d.journal", trial))
		src := crSrc()
		base := state.New()
		// Half the trials crash a fresh deployment; half converge first and
		// crash a mutation apply (update + replace + delete ops in flight).
		if trial%2 == 1 {
			base = crApply(sim, src, base)
			src = crMutate(src)
		}

		mode := rng.Intn(3)
		point := cloud.CrashBeforeOp
		if mode == 1 || (mode == 2 && rng.Intn(2) == 0) {
			point = cloud.CrashAfterOp
		}
		afterN := 1 + rng.Intn(6)

		// Crash the apply.
		j, err := apply.NewJournal(journalPath, apply.Meta{Kind: "apply", Principal: "cloudless"})
		if err != nil {
			panic(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		fired := false
		sim.InjectCrash(point, afterN, func() {
			fired = true
			if mode == 2 {
				j.KillTorn()
			} else {
				j.Kill()
			}
			cancel()
		})
		res := apply.Apply(ctx, sim, crPlan(src, base), apply.Options{Journal: j, ContinueOnError: true})
		sim.ClearCrash()
		cancel()
		j.Close()
		if fired {
			out.CrashesFired++
			out.ByMode[crModeNames[mode]]++
		} else if err := res.Err(); err != nil {
			panic(fmt.Sprintf("CR trial %d: crash-free apply failed: %s", trial, err))
		}
		// Whether or not the crash fired, the journal stays and res.State is
		// discarded: the process died before the result reached golden state.

		// Restart: replay the journal and recover.
		reconciled := base
		js, err := apply.ReadJournal(journalPath)
		if err != nil {
			panic(err)
		}
		if js != nil {
			if fired && rng.Intn(3) == 0 {
				// Crash during recovery itself, then recover again.
				out.RecoveryCrashes++
				rctx, rcancel := context.WithCancel(context.Background())
				rpoint := cloud.CrashBeforeOp
				if rng.Intn(2) == 0 {
					rpoint = cloud.CrashAfterOp
				}
				sim.InjectCrash(rpoint, 1+rng.Intn(2), rcancel)
				_, _, _ = apply.Recover(rctx, sim, js, base, apply.Options{})
				sim.ClearCrash()
				rcancel()
			}
			st, rep, err := apply.Recover(context.Background(), sim, js, base, apply.Options{})
			if err != nil {
				panic(fmt.Sprintf("CR trial %d: recover: %s", trial, err))
			}
			if err := rep.Err(); err != nil {
				panic(fmt.Sprintf("CR trial %d: recover report: %s", trial, err))
			}
			reconciled = st
			latencies = append(latencies, float64(rep.Elapsed)/float64(time.Millisecond))
			out.OpsConfirmed += rep.Confirmed
			out.OpsResumed += rep.Resumed
			out.OrphansAdopted += len(rep.OrphansAdopted)
			out.OrphansDeleted += len(rep.OrphansDeleted)
			if err := os.Remove(journalPath); err != nil {
				panic(err)
			}
		}

		// Continue the plan to completion and check convergence.
		fin := apply.Apply(context.Background(), sim, crPlan(src, reconciled), apply.Options{})
		if err := fin.Err(); err != nil {
			panic(fmt.Sprintf("CR trial %d: continuation apply: %s", trial, err))
		}
		final := fin.State
		out.IdemReplays += sim.Metrics().IdemReplays

		lost := 0
		for _, ch := range crPlan(src, final).Changes {
			if ch.Action != plan.ActionNoop {
				lost++
			}
		}
		orphans, dupes := 0, 0
		if extra := sim.TotalResources() - final.Len(); extra > 0 {
			orphans = extra // cloud resources state does not know about
		} else if extra < 0 {
			dupes = -extra // state entries the cloud cannot back
		}
		missing := 0
		for _, addr := range final.Addrs() {
			rs := final.Get(addr)
			if _, err := sim.Get(context.Background(), rs.Type, rs.ID); err != nil {
				missing++
			}
		}
		out.LostOps += lost
		out.Orphans += orphans
		out.DuplicateCreates += dupes
		if lost == 0 && orphans == 0 && dupes == 0 && missing == 0 {
			out.Converged++
		} else {
			failures = append(failures, fmt.Sprintf(
				"trial %d (%s, afterN=%d): lost=%d orphans=%d dupes=%d missing=%d",
				trial, crModeNames[mode], afterN, lost, orphans, dupes, missing))
		}
	}

	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		out.RecoveryP50Ms = latencies[n/2]
		out.RecoveryP95Ms = latencies[n*95/100]
		out.RecoveryMaxMs = latencies[n-1]
	}

	table("metric\tvalue", [][]string{
		{"trials", fmt.Sprintf("%d", out.Trials)},
		{"converged", fmt.Sprintf("%d", out.Converged)},
		{"crashes fired", fmt.Sprintf("%d", out.CrashesFired)},
		{"  crash-before-op", fmt.Sprintf("%d", out.ByMode["crash-before-op"])},
		{"  crash-after-op", fmt.Sprintf("%d", out.ByMode["crash-after-op"])},
		{"  torn-journal-frame", fmt.Sprintf("%d", out.ByMode["torn-journal-frame"])},
		{"crashes during recovery", fmt.Sprintf("%d", out.RecoveryCrashes)},
		{"ops confirmed from journal", fmt.Sprintf("%d", out.OpsConfirmed)},
		{"in-doubt ops resumed", fmt.Sprintf("%d", out.OpsResumed)},
		{"idempotent create replays", fmt.Sprintf("%d", out.IdemReplays)},
		{"orphans adopted", fmt.Sprintf("%d", out.OrphansAdopted)},
		{"orphans deleted", fmt.Sprintf("%d", out.OrphansDeleted)},
		{"orphans remaining", fmt.Sprintf("%d", out.Orphans)},
		{"duplicate creates", fmt.Sprintf("%d", out.DuplicateCreates)},
		{"lost ops", fmt.Sprintf("%d", out.LostOps)},
		{"recovery latency p50", fmt.Sprintf("%.1fms", out.RecoveryP50Ms)},
		{"recovery latency p95", fmt.Sprintf("%.1fms", out.RecoveryP95Ms)},
		{"recovery latency max", fmt.Sprintf("%.1fms", out.RecoveryMaxMs)},
	})
	if len(failures) > 0 {
		panic("CR: trials failed to converge:\n  " + strings.Join(failures, "\n  "))
	}
	if jsonOutCR != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutCR, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutCR)
	}
}
