package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"cloudless/internal/chaosd"
	"cloudless/internal/jobs"
)

// jsonOutDR, when non-empty, receives machine-readable DR results.
var jsonOutDR string

// drResult is the recorded outcome of the daemon disaster-recovery drill.
type drResult struct {
	Experiment string `json:"experiment"`
	Trials     int    `json:"trials"`
	Tenants    int    `json:"tenants"`

	Kills          int `json:"kills"`
	MidFlightKills int `json:"mid_flight_kills"`
	JobsSubmitted  int `json:"jobs_submitted"`
	JobsRecovered  int `json:"jobs_recovered"`

	LostJobs         int `json:"lost_jobs"`
	StuckJobs        int `json:"stuck_jobs"`
	DuplicateCreates int `json:"duplicate_creates"`
	Orphans          int `json:"orphans"`
	Diverged         int `json:"diverged"`

	ResumeP50Ms float64 `json:"time_to_resume_p50_ms"`
	ResumeP95Ms float64 `json:"time_to_resume_p95_ms"`
	ResumeMaxMs float64 `json:"time_to_resume_max_ms"`

	ReplayJobs     int     `json:"replay_jobs"`
	ReplayFrames   int     `json:"replay_frames"`
	ReplayMs       float64 `json:"replay_ms"`
	ReplayPerJobUs float64 `json:"replay_us_per_job"`
}

// DR: daemon disaster recovery. The chaosd harness SIGKILLs a real
// cloudlessd subprocess mid-plan/mid-apply across tenants sharing one
// external simulated cloud, restarts it on the same data dir, and checks
// the crash-safety contract: every acknowledged job ID resolves after the
// restart, in-flight jobs reach correct terminal states through journal
// recovery, and the cloud matches the union of the golden states exactly
// (no duplicate creates, no orphans, plans converge to no-ops). A cold
// replay microbenchmark bounds startup cost at a 10k-job history.
func dr() {
	trials := 100
	if v := os.Getenv("CLOUDLESS_CHAOS_TRIALS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			panic("CLOUDLESS_CHAOS_TRIALS must be a positive integer")
		}
		trials = n
	}
	const tenants = 3

	dir, err := os.MkdirTemp("", "cloudless-dr-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	res, err := chaosd.Run(dir, chaosd.Options{
		Trials:  trials,
		Tenants: tenants,
		Seed:    1,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		panic(err)
	}
	out := drResult{
		Experiment: "DR", Trials: trials, Tenants: tenants,
		Kills: res.Kills, MidFlightKills: res.MidFlightKills,
		JobsSubmitted: res.JobsSubmitted, JobsRecovered: res.JobsRecovered,
		LostJobs: res.LostJobs, StuckJobs: res.StuckJobs,
		DuplicateCreates: res.DuplicateCreates, Orphans: res.Orphans, Diverged: res.Diverged,
		ResumeP50Ms: res.ResumeP50Ms, ResumeP95Ms: res.ResumeP95Ms, ResumeMaxMs: res.ResumeMaxMs,
	}
	out.ReplayJobs, out.ReplayFrames, out.ReplayMs = drReplayBench(10_000)
	out.ReplayPerJobUs = out.ReplayMs * 1000 / float64(out.ReplayJobs)

	table("metric\tvalue", [][]string{
		{"daemon kills (SIGKILL)", fmt.Sprintf("%d (%d mid-flight)", out.Kills, out.MidFlightKills)},
		{"jobs submitted / recovered", fmt.Sprintf("%d / %d", out.JobsSubmitted, out.JobsRecovered)},
		{"lost jobs (404 after restart)", fmt.Sprintf("%d", out.LostJobs)},
		{"stuck jobs (never terminal)", fmt.Sprintf("%d", out.StuckJobs)},
		{"duplicate creates / orphans", fmt.Sprintf("%d / %d", out.DuplicateCreates, out.Orphans)},
		{"diverged tenants", fmt.Sprintf("%d", out.Diverged)},
		{"time-to-resume p50/p95/max", fmt.Sprintf("%.0fms / %.0fms / %.0fms", out.ResumeP50Ms, out.ResumeP95Ms, out.ResumeMaxMs)},
		{"journal replay @10k jobs", fmt.Sprintf("%.1fms cold (%d frames, %.1fus/job)", out.ReplayMs, out.ReplayFrames, out.ReplayPerJobUs)},
	})
	for _, f := range res.Failures() {
		fmt.Printf("FAILURE: %s\n", f)
	}
	if out.LostJobs > 0 || out.StuckJobs > 0 || out.DuplicateCreates > 0 || out.Orphans > 0 || out.Diverged > 0 {
		panic("DR: crash-safety contract violated")
	}

	if jsonOutDR != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutDR, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutDR)
	}
}

// drReplayBench measures cold open+replay of a job journal holding n jobs
// (3 frames each: queued, running, terminal), retention lifted so nothing
// compacts away — the worst-case startup scan.
func drReplayBench(n int) (jobsReplayed, frames int, ms float64) {
	dir, err := os.MkdirTemp("", "cloudless-dr-replay-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	opts := jobs.StoreOptions{MaxFinishedPerTenant: n + 1, NoSync: true}
	st, err := jobs.OpenStore(dir, opts)
	if err != nil {
		panic(err)
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j-%06d", i+1)
		base := jobs.StoredJob{ID: id, Tenant: "replay", Kind: "apply", Submitted: now}
		base.Status = jobs.StatusQueued
		mustAppend(st, base)
		base.Status = jobs.StatusRunning
		base.Started = now
		mustAppend(st, base)
		base.Status = jobs.StatusSucceeded
		base.Finished = now
		mustAppend(st, base)
	}
	if err := st.Close(); err != nil {
		panic(err)
	}

	t0 := time.Now()
	st2, err := jobs.OpenStore(dir, opts)
	if err != nil {
		panic(err)
	}
	recs, err := st2.Replay("replay")
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(t0)
	st2.Close()
	if len(recs) != n {
		panic(fmt.Sprintf("replay returned %d jobs, want %d", len(recs), n))
	}
	return n, 3 * n, float64(elapsed) / float64(time.Millisecond)
}

func mustAppend(st *jobs.Store, rec jobs.StoredJob) {
	if err := st.Append(rec); err != nil {
		panic(err)
	}
}
