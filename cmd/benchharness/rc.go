package main

// RC: continuous reconciliation (DESIGN.md S29). Three parts:
//
// Part 1 — detection/repair latency and API cost under foreign churn: the
// event-driven converge loop (activity tail + scoped verification) against
// the only alternative today's engines offer, a periodic FullScan loop that
// re-reads the whole estate every period. Scored on time-to-repair per drift
// and cloud API calls per drift.
//
// Part 2 — the "never make things worse" contract: repair mode vs
// detect-only under combined foreign-mutation storms and injected readiness
// faults (failed repairs gate out and roll back). Per trial, the repair arm
// must end with no more drifted resources than the detect-only arm; any
// trial where auto-repair leaves the estate worse than doing nothing is a
// hard failure.
//
// Part 3 — the circuit breaker: a persistently failing repair target must
// trip the breaker into detect-only (no unbounded retry storms), and the
// controller must recover to repairing once the fault clears.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/eval"
	"cloudless/internal/reconcile"
	"cloudless/internal/workload"
	"cloudless/internal/workspace"
)

var jsonOutRC string

type rcResult struct {
	Experiment string `json:"experiment"`

	// Part 1: event-driven vs periodic FullScan under foreign churn.
	Drifts              int     `json:"drifts_per_arm"`
	EventTTRp50Ms       float64 `json:"event_ttr_p50_ms"`
	EventTTRMaxMs       float64 `json:"event_ttr_max_ms"`
	PeriodicTTRp50Ms    float64 `json:"periodic_ttr_p50_ms"`
	PeriodicTTRMaxMs    float64 `json:"periodic_ttr_max_ms"`
	EventCallsPerDrift  float64 `json:"event_api_calls_per_drift"`
	PeriodicCallsPerDrift float64 `json:"periodic_api_calls_per_drift"`

	// Part 2: repair vs detect-only under fault storms.
	StormTrials      int `json:"storm_trials"`
	BrokenDetectOnly int `json:"broken_detect_only_total"`
	BrokenRepair     int `json:"broken_repair_total"`
	RepairWorseTrials int `json:"repair_worse_trials"` // must be 0

	// Part 3: breaker under a persistent fault.
	BreakerTrips    int64 `json:"breaker_trips"`    // must be >= 1
	BreakerRecovered bool `json:"breaker_recovered"` // repair succeeded after fault cleared
}

// rcPeriod is the baseline's FullScan period: a generous-to-the-baseline
// 300ms (real periodic scanners run minutes apart).
const rcPeriod = 300 * time.Millisecond

// rcTuning is the converge loop's knob set for the bench: fast debounce,
// activity polling as the only detection path (periodic FullScan disabled).
func rcTuning() reconcile.Tuning {
	return reconcile.Tuning{
		Debounce: 2 * time.Millisecond, PollWait: 50 * time.Millisecond,
		FullScanEvery: -1,
		BackoffBase:   10 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooloff: 50 * time.Millisecond,
		// The churn arms deliberately hammer the same few resources; raise
		// the flap ceiling so damping (measured elsewhere) stays out of the
		// latency race.
		FlapThreshold: 1000,
	}
}

// rcDeploy stands up a web tier workspace on a fresh fast sim.
func rcDeploy(name string) (*cloud.Sim, *workspace.Workspace) {
	sim := fastSim()
	ws, err := workspace.New(workspace.Config{
		Name: name, Sources: workload.WebTier(name, 2, 4), Cloud: sim,
	})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	p, err := ws.Plan(ctx)
	if err != nil {
		panic(err)
	}
	if _, _, err := ws.Apply(ctx, p, workspace.ApplyOptions{}); err != nil {
		panic(err)
	}
	return sim, ws
}

// rcTargets lists driftable (type, id, declared-name) triples for the tier.
func rcTargets(sim *cloud.Sim) []rcTarget {
	ctx := context.Background()
	var out []rcTarget
	for _, typ := range []string{"aws_vpc", "aws_security_group", "aws_subnet"} {
		rs, err := sim.List(ctx, typ, "")
		if err != nil {
			panic(err)
		}
		for _, r := range rs {
			out = append(out, rcTarget{typ: typ, id: r.ID, name: r.Attrs["name"].AsString()})
		}
	}
	return out
}

type rcTarget struct{ typ, id, name string }

// rcInject renames the target under a foreign principal.
func rcInject(sim *cloud.Sim, tgt rcTarget, as string) {
	if _, err := sim.Update(context.Background(), cloud.UpdateRequest{
		Type: tgt.typ, ID: tgt.id,
		Attrs:     map[string]eval.Value{"name": eval.String(as)},
		Principal: "intruder",
	}); err != nil {
		panic(err)
	}
}

// rcAwaitRestore polls until the target's declared name is back, returning
// the elapsed time.
func rcAwaitRestore(sim *cloud.Sim, tgt rcTarget, timeout time.Duration) time.Duration {
	ctx := context.Background()
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		r, err := sim.Get(ctx, tgt.typ, tgt.id)
		if err == nil && r.Attrs["name"].AsString() == tgt.name {
			return time.Since(start)
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("RC: drift on %s/%s never repaired", tgt.typ, tgt.id))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// rcDriftCount counts drifted managed resources right now.
func rcDriftCount(sim *cloud.Sim, ws *workspace.Workspace) int {
	rep, err := drift.FullScan(context.Background(), sim, ws.DB().Snapshot())
	if err != nil {
		panic(err)
	}
	n := 0
	for _, it := range rep.Items {
		if it.Addr != "" {
			n++
		}
	}
	return n
}

// rcBroken is the storm-trial score: managed resources that are drifted OR
// terminally unhealthy — everything an operator would have to fix by hand.
func rcBroken(sim *cloud.Sim, ws *workspace.Workspace) int {
	ctx := context.Background()
	bad := map[string]bool{}
	rep, err := drift.FullScan(ctx, sim, ws.DB().Snapshot())
	if err != nil {
		panic(err)
	}
	for _, it := range rep.Items {
		if it.Addr != "" {
			bad[it.Addr] = true
		}
	}
	snap := ws.DB().Snapshot()
	for _, addr := range snap.Addrs() {
		rs := snap.Get(addr)
		if h, err := sim.Health(ctx, rs.Type, rs.ID); err == nil && h.Status == cloud.HealthFailed {
			bad[addr] = true
		}
	}
	return len(bad)
}

func pctl(xs []float64) (p50, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2], s[len(s)-1]
}

// rcChurnEvent runs the event-driven arm: the converge loop repairs each
// injected drift; we score repair latency and the API calls the whole
// detect+verify+repair pipeline spent per drift.
func rcChurnEvent(drifts int, rng *rand.Rand) (ttrs []float64, callsPerDrift float64) {
	sim, ws := rcDeploy("rce")
	ctx := context.Background()
	defer ws.Close(ctx)
	if _, err := ws.StartReconciler(workspace.ReconcilerOptions{
		Mode: reconcile.ModeRepair, Watermark: -1, Tuning: rcTuning(),
	}); err != nil {
		panic(err)
	}
	targets := rcTargets(sim)
	calls0 := sim.Metrics().Calls
	for i := 0; i < drifts; i++ {
		tgt := targets[rng.Intn(len(targets))]
		rcInject(sim, tgt, fmt.Sprintf("rogue-%d", i))
		ttrs = append(ttrs, float64(rcAwaitRestore(sim, tgt, 30*time.Second))/float64(time.Millisecond))
		// Random think time between incidents, like real churn.
		time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
	}
	return ttrs, float64(sim.Metrics().Calls-calls0) / float64(drifts)
}

// rcChurnPeriodic runs the baseline arm: no event subscription, just a
// FullScan every rcPeriod followed by a repair of whatever it found.
func rcChurnPeriodic(drifts int, rng *rand.Rand) (ttrs []float64, callsPerDrift float64) {
	sim, ws := rcDeploy("rcp")
	ctx := context.Background()
	defer ws.Close(ctx)
	targets := rcTargets(sim)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(rcPeriod)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				rep, err := ws.ScanDrift(ctx)
				if err != nil {
					continue
				}
				if rep.HasDrift() {
					_, _ = ws.RepairDrift(ctx, rep)
				}
			}
		}
	}()

	calls0 := sim.Metrics().Calls
	for i := 0; i < drifts; i++ {
		tgt := targets[rng.Intn(len(targets))]
		// Random phase within the scan period, like real incidents.
		time.Sleep(time.Duration(rng.Intn(int(rcPeriod))))
		rcInject(sim, tgt, fmt.Sprintf("rogue-%d", i))
		ttrs = append(ttrs, float64(rcAwaitRestore(sim, tgt, 30*time.Second))/float64(time.Millisecond))
	}
	callsPerDrift = float64(sim.Metrics().Calls-calls0) / float64(drifts)
	close(stop)
	<-done
	return ttrs, callsPerDrift
}

// rcStormTrial runs one repair-vs-detect trial: the same storm of foreign
// renames plus injected readiness faults against two identical estates; the
// returned counts are drifted resources left at the end of the settle
// window.
func rcStormTrial(trial int, rng *rand.Rand) (brokenDetect, brokenRepair int) {
	type arm struct {
		sim *cloud.Sim
		ws  *workspace.Workspace
	}
	mk := func(name, mode string) arm {
		sim, ws := rcDeploy(name)
		if _, err := ws.StartReconciler(workspace.ReconcilerOptions{
			Mode: mode, Watermark: -1, Tuning: rcTuning(),
		}); err != nil {
			panic(err)
		}
		return arm{sim, ws}
	}
	ctx := context.Background()
	det := mk(fmt.Sprintf("rcd%d", trial), reconcile.ModeDetect)
	repa := mk(fmt.Sprintf("rcr%d", trial), reconcile.ModeRepair)
	defer det.ws.Close(ctx)
	defer repa.ws.Close(ctx)

	// The same storm hits both estates: foreign renames, foreign deletes, and
	// armed readiness faults that make a recreation repair come up broken —
	// the guarded repair gates out and rolls the blast radius back instead of
	// declaring victory over a failed resource.
	dTargets, rTargets := rcTargets(det.sim), rcTargets(repa.sim)
	storm := 3 + rng.Intn(3)
	for i := 0; i < storm; i++ {
		if i == 0 && rng.Intn(2) == 0 {
			// Foreign delete of the load balancer (the tier's only leaf the
			// sim's referential integrity allows out), sometimes with a
			// poisoned recreate: the repair's fresh LB comes up failed, gates
			// out, and rolls back — a repair that cannot win.
			if rng.Intn(2) == 0 {
				det.sim.InjectUnhealthy(cloud.UnhealthySpec{Count: 20, Type: "aws_load_balancer"})
				repa.sim.InjectUnhealthy(cloud.UnhealthySpec{Count: 20, Type: "aws_load_balancer"})
			}
			rcDeleteLB(det.sim)
			rcDeleteLB(repa.sim)
		} else {
			ti := rng.Intn(len(dTargets))
			rcInject(det.sim, dTargets[ti], fmt.Sprintf("storm-%d-%d", trial, i))
			rcInject(repa.sim, rTargets[ti], fmt.Sprintf("storm-%d-%d", trial, i))
		}
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
	}
	// Settle: long enough for every repair attempt (and its backoff retries)
	// to either converge or give up into backoff/breaker.
	time.Sleep(800 * time.Millisecond)
	return rcBroken(det.sim, det.ws), rcBroken(repa.sim, repa.ws)
}

// rcDeleteLB foreign-deletes the tier's load balancer.
func rcDeleteLB(sim *cloud.Sim) {
	ctx := context.Background()
	lbs, err := sim.List(ctx, "aws_load_balancer", "")
	if err != nil {
		panic(err)
	}
	for _, lb := range lbs {
		if err := sim.Delete(ctx, "aws_load_balancer", lb.ID, "intruder"); err != nil {
			panic(err)
		}
	}
}

// rcBreaker drives a persistent repair failure — a foreign-deleted load
// balancer whose every recreation comes up broken — until the breaker trips
// into detect-only, then clears the fault and confirms the controller
// recovers and converges.
func rcBreaker() (trips int64, recovered bool) {
	sim, ws := rcDeploy("rcb")
	ctx := context.Background()
	defer ws.Close(ctx)
	ctrl, err := ws.StartReconciler(workspace.ReconcilerOptions{
		Mode: reconcile.ModeRepair, Watermark: -1, Tuning: rcTuning(),
	})
	if err != nil {
		panic(err)
	}
	sim.InjectUnhealthy(cloud.UnhealthySpec{Count: 1000, Type: "aws_load_balancer"})
	rcDeleteLB(sim)

	deadline := time.Now().Add(30 * time.Second)
	for ctrl.Status().BreakerTrips == 0 {
		if time.Now().After(deadline) {
			st, _ := json.Marshal(ctrl.Status())
			panic(fmt.Sprintf("RC: breaker never tripped under a persistent repair fault: %s", st))
		}
		time.Sleep(5 * time.Millisecond)
	}
	trips = ctrl.Status().BreakerTrips

	// Fault clears: pending injections go away and any broken LB instance
	// left by failed attempts turns healthy. The half-open trial must close
	// the breaker and the estate must converge drift-free.
	sim.ClearInjections()
	lbs, err := sim.List(ctx, "aws_load_balancer", "")
	if err != nil {
		panic(err)
	}
	for _, lb := range lbs {
		sim.SetHealth("aws_load_balancer", lb.ID, cloud.HealthReady, "")
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := ctrl.Status()
		if !st.BreakerOpen && st.Repaired >= 1 && rcDriftCount(sim, ws) == 0 {
			return trips, true
		}
		if time.Now().After(deadline) {
			return trips, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func rc() {
	const drifts = 10
	// CI's reconcile-smoke job runs a reduced storm budget under -race;
	// the captured run uses the default.
	storms := 6
	if v := os.Getenv("CLOUDLESS_RC_TRIALS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			storms = n
		}
	}
	out := rcResult{Experiment: "RC", Drifts: drifts, StormTrials: storms}

	// Part 1: churn race.
	eventTTRs, eventCalls := rcChurnEvent(drifts, rand.New(rand.NewSource(41)))
	periodicTTRs, periodicCalls := rcChurnPeriodic(drifts, rand.New(rand.NewSource(41)))
	out.EventTTRp50Ms, out.EventTTRMaxMs = pctl(eventTTRs)
	out.PeriodicTTRp50Ms, out.PeriodicTTRMaxMs = pctl(periodicTTRs)
	out.EventCallsPerDrift, out.PeriodicCallsPerDrift = eventCalls, periodicCalls

	table("arm\tttr p50\tttr max\tapi calls/drift", [][]string{
		{"event-driven converge loop", fmt.Sprintf("%.0fms", out.EventTTRp50Ms),
			fmt.Sprintf("%.0fms", out.EventTTRMaxMs), fmt.Sprintf("%.1f", out.EventCallsPerDrift)},
		{fmt.Sprintf("periodic FullScan (%s)", rcPeriod), fmt.Sprintf("%.0fms", out.PeriodicTTRp50Ms),
			fmt.Sprintf("%.0fms", out.PeriodicTTRMaxMs), fmt.Sprintf("%.1f", out.PeriodicCallsPerDrift)},
	})

	// Part 2: the never-worse contract.
	for trial := 0; trial < out.StormTrials; trial++ {
		rng := rand.New(rand.NewSource(int64(5200 + trial)))
		d, r := rcStormTrial(trial, rng)
		out.BrokenDetectOnly += d
		out.BrokenRepair += r
		if r > d {
			out.RepairWorseTrials++
		}
	}
	fmt.Printf("\nstorm trials (foreign churn + injected readiness faults): %d\n", out.StormTrials)
	fmt.Printf("  drifted resources left: detect-only=%d  auto-repair=%d  (repair worse in %d trials)\n",
		out.BrokenDetectOnly, out.BrokenRepair, out.RepairWorseTrials)

	// Part 3: breaker.
	out.BreakerTrips, out.BreakerRecovered = rcBreaker()
	fmt.Printf("breaker: tripped %d time(s) under a persistent fault, recovered=%v\n",
		out.BreakerTrips, out.BreakerRecovered)

	if out.RepairWorseTrials > 0 {
		panic(fmt.Sprintf("RC: auto-repair left the estate worse than detect-only in %d trial(s)", out.RepairWorseTrials))
	}
	if out.BrokenRepair >= out.BrokenDetectOnly && out.BrokenDetectOnly > 0 {
		panic("RC: auto-repair fixed nothing across the storm trials — repairs are not biting")
	}
	if out.BreakerTrips == 0 {
		panic("RC: breaker never tripped")
	}
	if !out.BreakerRecovered {
		panic("RC: breaker did not recover after the fault cleared")
	}
	if out.EventTTRp50Ms >= out.PeriodicTTRp50Ms {
		panic(fmt.Sprintf("RC: event-driven p50 TTR %.0fms is not better than periodic %.0fms",
			out.EventTTRp50Ms, out.PeriodicTTRp50Ms))
	}
	if out.EventCallsPerDrift >= out.PeriodicCallsPerDrift {
		panic(fmt.Sprintf("RC: event-driven %.1f API calls/drift is not better than periodic %.1f",
			out.EventCallsPerDrift, out.PeriodicCallsPerDrift))
	}

	if jsonOutRC != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutRC, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutRC)
	}
}
