package main

// SD: state-storage engine comparison (DESIGN.md S21). Two measurements per
// backend:
//
//  1. engine-level reader/writer throughput: one writer committing batches
//     as fast as the engine allows while concurrent readers materialize
//     snapshots — mvcc readers pinned at the pre-churn serial, the others at
//     latest (the only serial they retain);
//  2. stack-level plans completed during one in-flight apply: scale a web
//     tier out under a latency-scaled simulator and count how many offline
//     plans finish while the apply holds its locks.
//
// Together they quantify what the mvcc backend buys (consistent pinned reads
// under write churn) and what the wal backend costs (fsync per commit).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cloudless"
	"cloudless/internal/cloud"
	"cloudless/internal/eval"
	"cloudless/internal/state"
	"cloudless/internal/statedb"
)

// jsonOutSD, when non-empty, receives machine-readable SD results.
var jsonOutSD string

type sdBackendResult struct {
	Backend          string  `json:"backend"`
	CommitsPerSec    float64 `json:"commits_per_sec"`
	SnapshotsPerSec  float64 `json:"snapshots_per_sec"`
	PinnedReads      bool    `json:"pinned_reads"`
	PlansDuringApply int     `json:"plans_during_apply"`
	ApplyMs          float64 `json:"apply_ms"`
}

type sdResult struct {
	Experiment string            `json:"experiment"`
	Readers    int               `json:"readers"`
	ChurnMs    float64           `json:"churn_ms"`
	Backends   []sdBackendResult `json:"backends"`
}

const (
	sdReaders = 4
	sdChurn   = 200 * time.Millisecond
)

func sd() {
	res := sdResult{Experiment: "SD", Readers: sdReaders, ChurnMs: float64(sdChurn.Milliseconds())}
	for _, backend := range statedb.Backends() {
		r := sdBackendResult{Backend: backend}
		r.CommitsPerSec, r.SnapshotsPerSec, r.PinnedReads = sdEngineChurn(backend)
		r.PlansDuringApply, r.ApplyMs = sdPlanDuringApply(backend)
		res.Backends = append(res.Backends, r)
	}

	rows := [][]string{}
	for _, r := range res.Backends {
		rows = append(rows, []string{
			r.Backend,
			fmt.Sprintf("%.0f/s", r.CommitsPerSec),
			fmt.Sprintf("%.0f/s", r.SnapshotsPerSec),
			fmt.Sprintf("%v", r.PinnedReads),
			fmt.Sprintf("%d", r.PlansDuringApply),
			fmt.Sprintf("%.0fms", r.ApplyMs),
		})
	}
	table("backend\tcommits\tsnapshots\tpinned reads\tplans during apply\tapply wall", rows)

	if jsonOutSD != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutSD, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutSD)
	}
}

// sdEngine builds one engine of the given backend (wal over a throwaway
// temp dir) and hands back a cleanup.
func sdEngine(backend string) (statedb.Engine, func()) {
	opts := statedb.EngineOptions{}
	cleanup := func() {}
	if backend == statedb.BackendWAL {
		dir, err := os.MkdirTemp("", "cloudless-sd-*")
		if err != nil {
			panic(err)
		}
		opts.Dir = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	eng, err := statedb.NewEngine(backend, nil, opts)
	if err != nil {
		panic(err)
	}
	return eng, func() { eng.Close(); cleanup() }
}

// sdEngineChurn runs one writer against sdReaders snapshotting readers for
// sdChurn and reports commit and snapshot throughput, plus whether reads
// pinned at the pre-churn serial stayed available throughout.
func sdEngineChurn(backend string) (commitsPerSec, snapshotsPerSec float64, pinnedOK bool) {
	eng, cleanup := sdEngine(backend)
	defer cleanup()

	const addrs = 32
	for i := 0; i < addrs; i++ {
		if _, err := eng.Commit(sdBatch(i, 0)); err != nil {
			panic(err)
		}
	}
	pin := eng.Serial()
	// mvcc retains pin; the others only serve their current serial.
	readSerial := 0
	if backend == statedb.BackendMVCC {
		readSerial = pin
	}

	var commits, snapshots atomic.Int64
	pinnedOK = true
	var pinnedMu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < sdReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := eng.Snapshot(readSerial)
				if err != nil {
					panic(err)
				}
				snapshots.Add(1)
				if readSerial != 0 && s.Serial != pin {
					pinnedMu.Lock()
					pinnedOK = false
					pinnedMu.Unlock()
				}
			}
		}()
	}
	start := time.Now()
	deadline := start.Add(sdChurn)
	i := 0
	for time.Now().Before(deadline) {
		if _, err := eng.Commit(sdBatch(i%addrs, i)); err != nil {
			panic(err)
		}
		commits.Add(1)
		i++
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if backend != statedb.BackendMVCC {
		// No retention: the pinned serial is gone once the writer moves on.
		_, err := eng.Snapshot(pin)
		pinnedOK = err == nil && eng.Serial() == pin
	}
	return float64(commits.Load()) / elapsed, float64(snapshots.Load()) / elapsed, pinnedOK
}

func sdBatch(slot, n int) *statedb.Batch {
	addr := fmt.Sprintf("aws_vpc.sd%d", slot)
	return &statedb.Batch{
		Base: statedb.BaseUnchecked,
		Desc: "sd churn",
		Writes: map[string]*state.ResourceState{addr: {
			Addr: addr, Type: "aws_vpc", ID: addr,
			Attrs: map[string]eval.Value{"n": eval.Int(n)},
		}},
	}
}

const sdStackConfig = `
variable "vm_count" {
  type    = number
  default = 2
}
resource "aws_vpc" "net" {
  name       = "net"
  cidr_block = "10.0.0.0/16"
}
resource "aws_subnet" "app" {
  vpc_id     = aws_vpc.net.id
  cidr_block = cidrsubnet(aws_vpc.net.cidr_block, 8, 1)
}
resource "aws_network_interface" "web" {
  count     = var.vm_count
  name      = "web-nic-${count.index}"
  subnet_id = aws_subnet.app.id
}
resource "aws_virtual_machine" "web" {
  count   = var.vm_count
  name    = "web-${count.index}"
  nic_ids = [aws_network_interface.web[count.index].id]
}
`

// sdPlanDuringApply deploys a 2-VM tier, scales it to 6 under a
// latency-scaled simulator, and counts plans completed while the apply is in
// flight — pinned at the pre-apply serial on mvcc, at latest elsewhere.
func sdPlanDuringApply(backend string) (plans int, applyMs float64) {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0.0005 // 15s modeled VM create -> ~7.5ms wall
	sim := cloud.NewSim(opts)

	stateDir := ""
	if backend == statedb.BackendWAL {
		dir, err := os.MkdirTemp("", "cloudless-sd-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	s, err := cloudless.Open(cloudless.Options{
		Sources:      map[string]string{"main.ccl": sdStackConfig},
		Cloud:        sim,
		StateBackend: backend,
		StateDir:     stateDir,
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()

	ctx := context.Background()
	p, err := s.Plan(ctx)
	if err != nil {
		panic(err)
	}
	if _, _, err := s.Apply(ctx, p, cloudless.ApplyOptions{}); err != nil {
		panic(err)
	}
	pin := s.DB().Serial()
	if err := s.SetVar("vm_count", 6); err != nil {
		panic(err)
	}
	scaleOut, err := s.PlanOffline(ctx)
	if err != nil {
		panic(err)
	}

	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		if _, _, err := s.Apply(ctx, scaleOut, cloudless.ApplyOptions{}); err != nil {
			panic(err)
		}
	}()
	for {
		select {
		case <-done:
			return plans, float64(time.Since(start).Milliseconds())
		default:
		}
		if backend == statedb.BackendMVCC {
			_, err = s.PlanOfflineAt(ctx, pin)
		} else {
			_, err = s.PlanOffline(ctx)
		}
		if err != nil {
			panic(err)
		}
		plans++
	}
}
