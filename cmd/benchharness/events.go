package main

// EV: live ops plane overhead — the event bus must be free to ignore. Three
// measurements back the claim:
//
//  1. Sustained publish throughput: events/sec through a bus with one
//     draining subscriber (the apply hot path calls Publish inline, so this
//     bounds how much lifecycle traffic the bus can absorb).
//  2. Subscriber fan-out tax on a real apply: the ET-style 50-VM walk runs
//     with no bus, with an idle bus on the context, and with one actively
//     draining subscriber; medians bound the overhead a watcher adds.
//  3. Drop accounting under a slow subscriber: a consumer that cannot keep
//     up loses events (drop-oldest, by design) but never loses count —
//     received + dropped must equal published exactly.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/events"
	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/workload"
)

var jsonOutEV string

type evResult struct {
	Experiment            string  `json:"experiment"`
	Runs                  int     `json:"runs"`
	PublishEventsPerSec   float64 `json:"publish_events_per_sec"`
	ApplyNoBusMs          float64 `json:"apply_ms_no_bus"`
	ApplyIdleBusMs        float64 `json:"apply_ms_idle_bus"`
	ApplySubscribedMs     float64 `json:"apply_ms_subscribed"`
	SubscriberOverheadPct float64 `json:"subscriber_overhead_pct"`
	EventsPerApply        int64   `json:"events_per_apply"`
	SlowPublished         int64   `json:"slow_published"`
	SlowReceived          int64   `json:"slow_received"`
	SlowDropped           int64   `json:"slow_dropped"`
	SlowAccountingExact   bool    `json:"slow_accounting_exact"`
}

func ev() {
	const (
		runs = 7
		vms  = 50
	)
	files := workload.WebTier("web", 4, vms)

	simOpts := cloud.DefaultOptions()
	simOpts.DisableRateLimit = true
	simOpts.TimeScale = 0.0002 // 90s VM create -> 18ms modeled latency

	// 1. Sustained publish throughput with a draining subscriber.
	const pubN = 200_000
	thrBus := events.NewBus(nil)
	thrSub := thrBus.Subscribe(events.Filter{}, events.DefaultBuffer)
	thrDone := make(chan struct{})
	go func() {
		defer close(thrDone)
		for range thrSub.C() {
		}
	}()
	t0 := time.Now()
	for i := 0; i < pubN; i++ {
		thrBus.Publish(events.Event{Kind: "bench.tick", Addr: "aws_vpc.bench"})
	}
	pubElapsed := time.Since(t0)
	thrSub.Close()
	<-thrDone
	thrBus.Close()

	// 2. Apply wall-clock: no bus vs idle bus vs one draining subscriber.
	runApply := func(mode string) (float64, int64) {
		sim := cloud.NewSim(simOpts)
		p := mustPlan(mustExpand(files), state.New(), plan.Options{})
		ctx := context.Background()
		var bus *events.Bus
		var sub *events.Subscription
		var done chan struct{}
		var delivered int64
		switch mode {
		case "idle", "subscribed":
			bus = events.NewBus(nil)
			ctx = events.WithBus(ctx, bus)
		}
		if mode == "subscribed" {
			sub = bus.Subscribe(events.Filter{}, 4*events.DefaultBuffer)
			done = make(chan struct{})
			go func() {
				defer close(done)
				for range sub.C() {
					delivered++
				}
			}()
		}
		start := time.Now()
		res := apply.Apply(ctx, sim, p, apply.Options{
			Concurrency: 10, Scheduler: apply.CriticalPathScheduler, Principal: "cloudless",
		})
		if err := res.Err(); err != nil {
			panic(err)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if sub != nil {
			sub.Close()
			<-done
			if d := sub.Dropped(); d != 0 {
				panic(fmt.Sprintf("EV: active subscriber dropped %d events on a %d-op apply", d, vms))
			}
		}
		if bus != nil {
			bus.Close()
		}
		return ms, delivered
	}

	var noBus, idleBus, subscribed []float64
	var perApply int64
	for i := 0; i < runs; i++ {
		off, _ := runApply("none")
		idle, _ := runApply("idle")
		on, n := runApply("subscribed")
		noBus, idleBus, subscribed = append(noBus, off), append(idleBus, idle), append(subscribed, on)
		perApply = n
	}

	// 3. Slow subscriber: tiny buffer, deliberate per-event stall. The
	// sentinel is published last and drop-oldest never evicts the newest
	// event, so seeing it means everything before was delivered or dropped.
	const slowN = 20_000
	slowBus := events.NewBus(nil)
	slowSub := slowBus.Subscribe(events.Filter{}, 64)
	var slowReceived int64
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		for e := range slowSub.C() {
			if e.Kind == "bench.done" {
				return
			}
			slowReceived++
			time.Sleep(20 * time.Microsecond)
		}
	}()
	for i := 0; i < slowN; i++ {
		slowBus.Publish(events.Event{Kind: "bench.tick"})
	}
	slowBus.Publish(events.Event{Kind: "bench.done"})
	<-slowDone
	slowDropped := slowSub.Dropped()
	slowSub.Close()
	slowBus.Close()

	res := evResult{
		Experiment: "EV", Runs: runs,
		PublishEventsPerSec: float64(pubN) / pubElapsed.Seconds(),
		ApplyNoBusMs:        median(noBus),
		ApplyIdleBusMs:      median(idleBus),
		ApplySubscribedMs:   median(subscribed),
		EventsPerApply:      perApply,
		SlowPublished:       slowN,
		SlowReceived:        slowReceived,
		SlowDropped:         slowDropped,
		SlowAccountingExact: slowReceived+slowDropped == slowN,
	}
	res.SubscriberOverheadPct = (res.ApplySubscribedMs - res.ApplyNoBusMs) / res.ApplyNoBusMs * 100

	table("metric\tvalue", [][]string{
		{"publish throughput (1 drainer)", fmt.Sprintf("%.0f events/sec", res.PublishEventsPerSec)},
		{"apply, no bus (median)", fmt.Sprintf("%.1fms", res.ApplyNoBusMs)},
		{"apply, idle bus (median)", fmt.Sprintf("%.1fms", res.ApplyIdleBusMs)},
		{"apply, 1 subscriber (median)", fmt.Sprintf("%.1fms", res.ApplySubscribedMs)},
		{"subscriber overhead", fmt.Sprintf("%+.2f%%", res.SubscriberOverheadPct)},
		{"events per apply", fmt.Sprintf("%d", res.EventsPerApply)},
		{"slow subscriber published", fmt.Sprintf("%d", res.SlowPublished)},
		{"slow subscriber received", fmt.Sprintf("%d", res.SlowReceived)},
		{"slow subscriber dropped", fmt.Sprintf("%d", res.SlowDropped)},
		{"accounting exact", fmt.Sprintf("%v", res.SlowAccountingExact)},
	})

	if !res.SlowAccountingExact {
		panic(fmt.Sprintf("EV: drop accounting leaks: received %d + dropped %d != published %d",
			res.SlowReceived, res.SlowDropped, res.SlowPublished))
	}
	if res.SlowDropped == 0 {
		panic("EV: the slow subscriber dropped nothing — the backpressure path never exercised")
	}
	if jsonOutEV != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutEV, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutEV)
	}
}
