package main

// PV: provider-runtime experiment (DESIGN.md S22). Two measurements, each
// comparing the direct path (every layer calls the cloud itself, the
// pre-runtime architecture) against the provider runtime:
//
//  1. concurrent full-scan drift throughput: K scanners sweep every
//     (type, region) of a rate-limited control plane at once. Direct, each
//     scanner pays the full List bill; through a shared runtime, identical
//     in-flight Lists coalesce so the control plane sees ~one sweep.
//  2. apply under a throttling control plane: a web tier deploys while the
//     simulator injects 429 bursts whenever the observed call rate spikes.
//     The direct-style configuration (fixed window, deterministic backoff,
//     no Retry-After) keeps slamming into the limiter; AIMD + full jitter
//     back off to the sustainable rate and absorb far fewer 429s.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"cloudless/internal/apply"
	"cloudless/internal/cloud"
	"cloudless/internal/drift"
	"cloudless/internal/plan"
	"cloudless/internal/provider"
	"cloudless/internal/state"
	"cloudless/internal/workload"
)

// jsonOutPV, when non-empty, receives machine-readable PV results.
var jsonOutPV string

type pvScanResult struct {
	Scanners          int     `json:"scanners"`
	WallDirectMs      float64 `json:"wall_direct_ms"`
	WallRuntimeMs     float64 `json:"wall_runtime_ms"`
	CallsDirect       int64   `json:"api_calls_direct"`
	CallsRuntime      int64   `json:"api_calls_runtime"`
	Coalesced         int64   `json:"coalesced_reads"`
	ThroughputDirect  float64 `json:"scans_per_sec_direct"`
	ThroughputRuntime float64 `json:"scans_per_sec_runtime"`
	SpeedupX          float64 `json:"speedup_x"`
}

type pvApplyResult struct {
	Resources        int     `json:"resources"`
	WallDirectMs     float64 `json:"wall_direct_ms"`
	WallRuntimeMs    float64 `json:"wall_runtime_ms"`
	RetriesDirect    int     `json:"retries_429_direct"`
	RetriesRuntime   int     `json:"retries_429_runtime"`
	ThrottledDirect  int64   `json:"throttled_direct"`
	ThrottledRuntime int64   `json:"throttled_runtime"`
	FinalWindow      float64 `json:"final_aimd_window"`
}

type pvResult struct {
	Experiment string        `json:"experiment"`
	Scan       pvScanResult  `json:"scan"`
	Apply      pvApplyResult `json:"apply"`
}

const (
	pvScanners = 4
	// pvScanRate throttles the control plane so the scan, like real drift
	// scans, is API-budget-bound rather than CPU-bound.
	pvScanRate = 100.0
)

func pv() {
	res := pvResult{Experiment: "PV"}
	res.Scan = pvScanThroughput()
	res.Apply = pvApplyUnder429s()

	table("scan\tdirect\truntime", [][]string{
		{"wall", fmt.Sprintf("%.0fms", res.Scan.WallDirectMs), fmt.Sprintf("%.0fms", res.Scan.WallRuntimeMs)},
		{"API calls", fmt.Sprintf("%d", res.Scan.CallsDirect), fmt.Sprintf("%d (%d coalesced)", res.Scan.CallsRuntime, res.Scan.Coalesced)},
		{"scans/s", fmt.Sprintf("%.1f", res.Scan.ThroughputDirect), fmt.Sprintf("%.1f (%.1fx)", res.Scan.ThroughputRuntime, res.Scan.SpeedupX)},
	})
	table("apply\tdirect-style\truntime", [][]string{
		{"wall", fmt.Sprintf("%.0fms", res.Apply.WallDirectMs), fmt.Sprintf("%.0fms", res.Apply.WallRuntimeMs)},
		{"429s", fmt.Sprintf("%d", res.Apply.ThrottledDirect), fmt.Sprintf("%d", res.Apply.ThrottledRuntime)},
		{"retries", fmt.Sprintf("%d", res.Apply.RetriesDirect), fmt.Sprintf("%d (window %.1f)", res.Apply.RetriesRuntime, res.Apply.FinalWindow)},
	})

	if jsonOutPV != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutPV, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutPV)
	}
}

// pvScanWorld deploys a microservices estate on a rate-limited simulator
// (the deploy itself fits in the limiter's initial burst).
func pvScanWorld() (*cloud.Sim, *state.State) {
	opts := cloud.DefaultOptions()
	opts.RateLimitOverride = pvScanRate
	// Real drift scans are bound by API latency as well as rate limits:
	// model ~10ms wall per List (1s modeled x 0.01 scale).
	opts.TimeScale = 0.01
	opts.ReadLatency = time.Second
	sim := cloud.NewSim(opts)
	ex := mustExpand(workload.Microservices(6, 2))
	p := mustPlan(ex, state.New(), plan.Options{})
	res := apply.Apply(context.Background(), sim, p, apply.Options{Principal: "cloudless"})
	if err := res.Err(); err != nil {
		panic(err)
	}
	sim.ResetMetrics()
	return sim, res.State
}

// pvRunScans runs pvScanners concurrent FullScans against cl and returns
// the wall time for all of them to finish.
func pvRunScans(cl cloud.Interface, st *state.State) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < pvScanners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := drift.FullScan(context.Background(), cl, st); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func pvScanThroughput() pvScanResult {
	r := pvScanResult{Scanners: pvScanners}

	simDirect, stDirect := pvScanWorld()
	wallDirect := pvRunScans(simDirect, stDirect)
	r.CallsDirect = simDirect.Metrics().Calls

	simRT, stRT := pvScanWorld()
	rt := provider.New(simRT, provider.Options{})
	wallRT := pvRunScans(rt, stRT)
	r.CallsRuntime = simRT.Metrics().Calls
	r.Coalesced = rt.Stats().Coalesced

	r.WallDirectMs = float64(wallDirect.Microseconds()) / 1000
	r.WallRuntimeMs = float64(wallRT.Microseconds()) / 1000
	r.ThroughputDirect = float64(pvScanners) / wallDirect.Seconds()
	r.ThroughputRuntime = float64(pvScanners) / wallRT.Seconds()
	r.SpeedupX = r.ThroughputRuntime / r.ThroughputDirect
	return r
}

// pvThrottlingSim builds a simulator whose control plane injects 429 bursts
// whenever the sampled call rate exceeds sustainable, stopping when done is
// closed. This models real provider throttling: pressure-proportional, not
// scripted — so an adaptive client genuinely earns fewer 429s.
func pvThrottlingSim(done <-chan struct{}) *cloud.Sim {
	opts := cloud.DefaultOptions()
	opts.DisableRateLimit = true
	opts.TimeScale = 0.0005 // 15s modeled VM create -> ~7.5ms wall
	sim := cloud.NewSim(opts)
	go func() {
		const tick = 10 * time.Millisecond
		const sustainable = 4 // calls per tick (~400/s)
		last := sim.Metrics().Calls
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			cur := sim.Metrics().Calls
			if delta := cur - last; delta > sustainable {
				sim.InjectThrottles(int(delta-sustainable) / 2)
			}
			last = cur
		}
	}()
	return sim
}

func pvApplyOnce(ropts provider.Options) (wall time.Duration, retries int, throttled int64, window float64) {
	done := make(chan struct{})
	sim := pvThrottlingSim(done)
	defer close(done)

	rt := provider.New(sim, ropts)
	ex := mustExpand(workload.WebTier("web", 4, 48))
	p := mustPlan(ex, state.New(), plan.Options{})
	start := time.Now()
	res := apply.Apply(context.Background(), rt, p, apply.Options{
		Principal: "cloudless", Concurrency: 32,
	})
	wall = time.Since(start)
	if err := res.Err(); err != nil {
		panic(err)
	}
	for _, w := range rt.Stats().Windows {
		window = w
	}
	return wall, res.Retries, sim.Metrics().Throttled, window
}

func pvApplyUnder429s() pvApplyResult {
	r := pvApplyResult{}
	ex := mustExpand(workload.WebTier("web", 4, 48))
	r.Resources = len(ex.Instances)

	// Direct-style: the retry policy every layer had before the runtime —
	// fixed concurrency window, deterministic exponential backoff, no
	// Retry-After, no caching or coalescing.
	wallD, retriesD, throttledD, _ := pvApplyOnce(provider.Options{
		MaxRetries: 16, DisableAdaptive: true, DisableJitter: true,
		IgnoreRetryAfter: true, DisableCoalesce: true, CacheTTL: -1,
	})
	r.WallDirectMs = float64(wallD.Microseconds()) / 1000
	r.RetriesDirect = retriesD
	r.ThrottledDirect = throttledD

	wallR, retriesR, throttledR, window := pvApplyOnce(provider.Options{MaxRetries: 16})
	r.WallRuntimeMs = float64(wallR.Microseconds()) / 1000
	r.RetriesRuntime = retriesR
	r.ThrottledRuntime = throttledR
	r.FinalWindow = window
	return r
}
