package main

// SV: the workspace server under multi-tenant load (DESIGN.md S27). N
// simulated teams drive mixed plan/apply/drift jobs through the full HTTP
// path — client -> cloudlessd handlers -> job queue -> workspace engines —
// while the offered load is held at ~2x the worker pool. Measures job wait
// (submit -> start) and total latency (submit -> finish) percentiles, Jain's
// fairness index across tenants, and the noisy-neighbour bound: a tenant
// saturating the queue must not push a light tenant's p99 wait above its
// own.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"cloudless/internal/cloud"
	"cloudless/internal/jobs"
	"cloudless/internal/server"
	"cloudless/internal/workspace"
	"cloudless/internal/workload"
)

var jsonOutSV string

type svTenantStat struct {
	Tenant    string  `json:"tenant"`
	Jobs      int     `json:"jobs"`
	P50WaitMs float64 `json:"p50_wait_ms"`
	P99WaitMs float64 `json:"p99_wait_ms"`
}

type svResult struct {
	Experiment    string         `json:"experiment"`
	Tenants       int            `json:"tenants"`
	Workers       int            `json:"workers"`
	JobsPerTenant int            `json:"jobs_per_tenant"`
	OverloadX     float64        `json:"overload_x"`
	P50WaitMs     float64        `json:"p50_wait_ms"`
	P99WaitMs     float64        `json:"p99_wait_ms"`
	P50TotalMs    float64        `json:"p50_total_ms"`
	P99TotalMs    float64        `json:"p99_total_ms"`
	Fairness      float64        `json:"fairness_jain"`
	PerTenant     []svTenantStat `json:"per_tenant"`
	LightP99Ms    float64        `json:"noisy_light_p99_wait_ms"`
	NoisyP99Ms    float64        `json:"noisy_saturator_p99_wait_ms"`
}

// svHarness is one server stack (sim cloud -> manager -> queue -> HTTP).
type svHarness struct {
	client *server.Client
	close  func()
}

func newSVHarness(workers int) *svHarness {
	simOpts := cloud.DefaultOptions()
	simOpts.DisableRateLimit = true
	simOpts.TimeScale = 0.0002
	mgr := workspace.NewManager(workspace.ManagerOptions{Cloud: cloud.NewSim(simOpts)})
	queue := jobs.New(jobs.Options{Workers: workers})
	srv := server.New(server.Options{Manager: mgr, Queue: queue})
	ts := httptest.NewServer(srv.Handler())
	return &svHarness{
		client: server.NewClient(ts.URL, "", nil),
		close: func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				panic(err)
			}
		},
	}
}

// setupTenant creates a deployed workspace for one team (the initial apply
// is setup, not measurement).
func (h *svHarness) setupTenant(ctx context.Context, name string) {
	if _, err := h.client.CreateWorkspace(ctx, server.CreateWorkspaceRequest{
		Name: name, Sources: workload.WebTier(name, 2, 3),
	}); err != nil {
		panic(err)
	}
	h.mustRun(ctx, name, server.JobRequest{Kind: "apply"})
}

func (h *svHarness) mustRun(ctx context.Context, ws string, req server.JobRequest) jobs.View {
	st, err := h.client.SubmitJob(ctx, ws, req)
	if err != nil {
		panic(fmt.Sprintf("%s %s submit: %v", ws, req.Kind, err))
	}
	if st, err = h.client.WaitJob(ctx, ws, st.ID); err != nil {
		panic(fmt.Sprintf("%s %s wait: %v", ws, req.Kind, err))
	}
	if st.Status != jobs.StatusSucceeded {
		panic(fmt.Sprintf("%s %s job %s: %s (%s)", ws, req.Kind, st.ID, st.Status, st.Err))
	}
	return st.View
}

// driveTenant keeps `window` jobs in flight for one tenant until `total`
// jobs have completed, cycling through the team's steady-state mix.
func (h *svHarness) driveTenant(ctx context.Context, ws string, total, window int) []jobs.View {
	mix := []string{"plan", "scan", "plan", "apply"}
	var mu sync.Mutex
	var views []jobs.View
	next := 0
	var wg sync.WaitGroup
	for w := 0; w < window; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= total {
					mu.Unlock()
					return
				}
				kind := mix[next%len(mix)]
				next++
				mu.Unlock()
				v := h.mustRun(ctx, ws, server.JobRequest{Kind: kind})
				mu.Lock()
				views = append(views, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return views
}

func svWaitMs(v jobs.View) float64 {
	return float64(v.Started.Sub(v.Submitted)) / float64(time.Millisecond)
}

func svTotalMs(v jobs.View) float64 {
	return float64(v.Finished.Sub(v.Submitted)) / float64(time.Millisecond)
}

func svPercentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// jain computes Jain's fairness index over per-tenant service rates:
// (sum x)^2 / (n * sum x^2), 1.0 = perfectly even.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

func sv() {
	const (
		tenants       = 4
		workers       = 4
		windowPer     = 2 // tenants * windowPer = 2x the worker pool
		jobsPerTenant = 40
	)
	ctx := context.Background()

	// Phase 1 — balanced overload: every tenant offers the same sustained
	// load, total in-flight held at 2x capacity.
	h := newSVHarness(workers)
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("team-%d", i)
		h.setupTenant(ctx, names[i])
	}
	perTenant := make([][]jobs.View, tenants)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			perTenant[i] = h.driveTenant(ctx, name, jobsPerTenant, windowPer)
		}(i, name)
	}
	wg.Wait()

	res := svResult{
		Experiment: "SV", Tenants: tenants, Workers: workers,
		JobsPerTenant: jobsPerTenant,
		OverloadX:     float64(tenants*windowPer) / float64(workers),
	}
	var allWaits, allTotals, rates []float64
	rows := [][]string{}
	for i, name := range names {
		var waits []float64
		var meanWait float64
		for _, v := range perTenant[i] {
			w := svWaitMs(v)
			waits = append(waits, w)
			meanWait += w
			allWaits = append(allWaits, w)
			allTotals = append(allTotals, svTotalMs(v))
		}
		meanWait /= float64(len(waits))
		if meanWait < 1e-3 {
			meanWait = 1e-3
		}
		rates = append(rates, 1/meanWait)
		st := svTenantStat{
			Tenant: name, Jobs: len(perTenant[i]),
			P50WaitMs: svPercentile(waits, 0.50),
			P99WaitMs: svPercentile(waits, 0.99),
		}
		res.PerTenant = append(res.PerTenant, st)
		rows = append(rows, []string{name, fmt.Sprintf("%d", st.Jobs),
			fmt.Sprintf("%.1fms", st.P50WaitMs), fmt.Sprintf("%.1fms", st.P99WaitMs)})
	}
	res.P50WaitMs = svPercentile(allWaits, 0.50)
	res.P99WaitMs = svPercentile(allWaits, 0.99)
	res.P50TotalMs = svPercentile(allTotals, 0.50)
	res.P99TotalMs = svPercentile(allTotals, 0.99)
	res.Fairness = jain(rates)
	h.close()

	table("tenant\tjobs\tp50 wait\tp99 wait", rows)
	fmt.Printf("overall: p50 wait %.1fms, p99 wait %.1fms, p50 total %.1fms, p99 total %.1fms (%.1fx overload)\n",
		res.P50WaitMs, res.P99WaitMs, res.P50TotalMs, res.P99TotalMs, res.OverloadX)
	fmt.Printf("fairness (Jain over per-tenant service rate): %.3f\n", res.Fairness)
	// Sub-millisecond service times make the rate estimate noisy; 0.75 still
	// catches real starvation (a stalled tenant drags Jain under 0.7) without
	// tripping on scheduler-jitter noise.
	if res.Fairness < 0.75 {
		panic(fmt.Sprintf("SV: fairness index %.3f below 0.75 — the scheduler is starving a tenant", res.Fairness))
	}

	// Phase 2 — noisy neighbour: one tenant floods the queue (8 jobs in
	// flight) while three light tenants submit one at a time. Fair
	// scheduling means the light tenants' p99 wait stays at or below the
	// saturator's.
	h2 := newSVHarness(workers)
	lightNames := []string{"light-0", "light-1", "light-2"}
	h2.setupTenant(ctx, "noisy")
	for _, n := range lightNames {
		h2.setupTenant(ctx, n)
	}
	var lightViews []jobs.View
	var lvMu sync.Mutex
	var wg2 sync.WaitGroup
	wg2.Add(1)
	var noisyViews []jobs.View
	go func() {
		defer wg2.Done()
		noisyViews = h2.driveTenant(ctx, "noisy", 48, 8)
	}()
	for _, n := range lightNames {
		wg2.Add(1)
		go func(n string) {
			defer wg2.Done()
			vs := h2.driveTenant(ctx, n, 8, 1)
			lvMu.Lock()
			lightViews = append(lightViews, vs...)
			lvMu.Unlock()
		}(n)
	}
	wg2.Wait()
	var lightWaits, noisyWaits []float64
	for _, v := range lightViews {
		lightWaits = append(lightWaits, svWaitMs(v))
	}
	for _, v := range noisyViews {
		noisyWaits = append(noisyWaits, svWaitMs(v))
	}
	res.LightP99Ms = svPercentile(lightWaits, 0.99)
	res.NoisyP99Ms = svPercentile(noisyWaits, 0.99)
	h2.close()

	fmt.Printf("noisy neighbour: light tenants p99 wait %.1fms vs saturator p99 wait %.1fms\n",
		res.LightP99Ms, res.NoisyP99Ms)
	if res.NoisyP99Ms > 0 && res.LightP99Ms > 2*res.NoisyP99Ms {
		panic(fmt.Sprintf("SV: light tenant p99 wait %.1fms exceeds 2x the saturator's %.1fms — fair share violated",
			res.LightP99Ms, res.NoisyP99Ms))
	}

	if jsonOutSV != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonOutSV, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %s\n", jsonOutSV)
	}
}
