package cloudless

import (
	"testing"

	"cloudless/internal/cloud"
)

// TestProviderNilWhenNotRuntime covers the comma-ok path in Stack.Provider:
// a stack whose bound cloud interface is not a provider.Runtime must return
// nil instead of panicking. Open always wraps in a Runtime, so the
// non-runtime binding is constructed directly, the way a test seam would.
func TestProviderNilWhenNotRuntime(t *testing.T) {
	s := &Stack{cloudAPI: cloud.NewSim(cloud.DefaultOptions())}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Provider() panicked: %v", r)
		}
	}()
	if rt := s.Provider(); rt != nil {
		t.Fatalf("Provider() = %v, want nil for a bare simulator", rt)
	}
	// publishRunFinish is the facade's own consumer of the nil contract.
	s.publishRunFinish("run-x", &ApplyResult{Errors: map[string]error{}})
}

// TestProviderReturnsRuntime pins the happy path alongside the nil one.
func TestProviderReturnsRuntime(t *testing.T) {
	s, err := Open(Options{
		Sources: map[string]string{"main.ccl": `
resource "aws_vpc" "main" {
  name       = "t"
  cidr_block = "10.0.0.0/16"
}
`},
		Cloud: cloud.NewSim(cloud.DefaultOptions()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Provider() == nil {
		t.Fatal("Provider() = nil for an Open()ed stack")
	}
}
