package cloudless_test

import (
	"context"
	"os"
	"testing"

	"cloudless/internal/apply"
	"cloudless/internal/plan"
	"cloudless/internal/state"
	"cloudless/internal/workload"
)

// TestScaleSmoke is the CI guard for the scale-out planning core: on a
// ~2k-instance random DAG, a one-resource edit must replan with fewer than
// 10% of a full replan's instance evaluations (it is 1 vs 2001 today, so the
// bound leaves a wide margin before failing), byte-identical output, and the
// batched apply must spend at most a fifth of the unbatched walker's
// one-call-per-resource budget. Gated behind CLOUDLESS_SCALE_SMOKE so the
// ordinary test run stays fast; CI sets it in a dedicated job.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("CLOUDLESS_SCALE_SMOKE") == "" {
		t.Skip("set CLOUDLESS_SCALE_SMOKE=1 to run the 2k-instance scale smoke")
	}
	ctx := context.Background()
	files := workload.RandomDAG(1333, 7)
	ex := expandFiles(t, files)
	sim := newSim()

	p, diags := plan.Compute(ctx, ex, state.New(), plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	created := len(p.Changes)
	res := apply.Apply(ctx, sim, p, apply.Options{
		Principal: "cloudless", Concurrency: 128, BatchOps: true,
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if calls := sim.Metrics().Calls; calls*5 > int64(created) {
		t.Errorf("batched apply admitted %d calls for %d resources: batching below 5x", calls, created)
	}
	st := res.State

	cache := plan.NewReplanCache()
	if _, diags := plan.Compute(ctx, ex, st, plan.Options{Cache: cache}); diags.HasErrors() {
		t.Fatal(diags.Error())
	}

	files["rand.ccl"] = replaceOnce(files["rand.ccl"],
		`name    = "r-vm-1"`, `name    = "r-vm-1-edited"`)
	ex2 := expandFiles(t, files)

	full, diags := plan.Compute(ctx, ex2, st, plan.Options{})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	incr, diags := plan.Compute(ctx, ex2, st, plan.Options{Cache: cache})
	if diags.HasErrors() {
		t.Fatal(diags.Error())
	}
	if encodeFacadePlan(incr) != encodeFacadePlan(full) {
		t.Fatal("incremental replan diverged from full replan")
	}
	if incr.EvaluatedInstances*10 >= full.EvaluatedInstances {
		t.Errorf("incremental replan evaluated %d of %d instances (>= 10%%)",
			incr.EvaluatedInstances, full.EvaluatedInstances)
	}
}
